"""Structured JSON logging for the serving stack.

One line per event, one JSON object per line — the format every log
shipper (Loki, CloudWatch, `jq`) ingests without a parsing config.
Nothing here is enabled by default: the service logs through ordinary
:mod:`logging` loggers under the ``repro`` namespace at DEBUG/INFO, so a
library user who never calls :func:`configure_json_logging` sees
nothing, and ``repro serve --log-json`` turns the firehose on without
touching any other handler in the process.

Request ids tie the pieces together: the server mints one per inbound
frame (:func:`new_request_id`), attaches it to the request's log events,
and hands it to the micro-batcher so a coalesced dispatch can log
exactly which request ids it fused — the only way to follow one
client's request through a batch that served sixty of them.
"""

from __future__ import annotations

import io
import itertools
import json
import logging
import os

__all__ = [
    "JsonLogFormatter",
    "configure_json_logging",
    "get_logger",
    "new_request_id",
]

#: Root of every logger the serving stack emits through.
ROOT_LOGGER_NAME = "repro"

#: ``logging.LogRecord`` attributes that are bookkeeping, not payload.
_RESERVED_RECORD_KEYS = frozenset(
    {
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    }
)


class JsonLogFormatter(logging.Formatter):
    """Render a ``LogRecord`` as one compact JSON object per line.

    The record's message becomes ``event``; anything passed through
    ``extra=`` (request ids, op names, byte counts...) is merged in at
    the top level, so ``logger.info("request", extra={"op": "QUERY"})``
    emits ``{"event": "request", "op": "QUERY", ...}``.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED_RECORD_KEYS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("service.server")`` → ``repro.service.server``; a name
    already rooted at ``repro`` is used as-is.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_json_logging(
    stream: io.TextIOBase | None = None,
    *,
    level: int = logging.INFO,
) -> logging.Handler:
    """Install a JSON handler on the ``repro`` logger tree.

    Idempotent: a previous handler installed by this function is
    replaced, not duplicated, so tests (and repeated CLI invocations in
    one process) can reconfigure freely.  Returns the installed handler
    so callers can detach it (``logger.removeHandler``) when done.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_json_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream) if stream is not None else logging.StreamHandler()
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    # The stack's events are operational, not application warnings —
    # don't also bubble them into the root logger's handlers.
    logger.propagate = False
    return handler


#: Monotone per-process sequence; combined with the PID so ids from two
#: daemons on one host never collide in a merged log stream.
_REQUEST_SEQ = itertools.count(1)
_PID_PREFIX = f"{os.getpid():x}"


def new_request_id() -> str:
    """Mint a process-unique request id (``<pid-hex>-<seq-hex>``)."""
    return f"{_PID_PREFIX}-{next(_REQUEST_SEQ):08x}"
