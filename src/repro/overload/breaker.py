"""Client-side circuit breaker with half-open probing.

Full-jitter backoff (``repro.service.client``) already keeps a fleet
of clients from stampeding a *restarting* node; the breaker handles
the complementary failure — a node that is up but *saturated*.  Retry
storms against a saturated node are self-sustaining: every rejected
request comes back, so offered load never falls below capacity and the
node never recovers.  The breaker cuts that loop at the source.

State machine::

    CLOSED ──(failure_threshold consecutive failures)──▶ OPEN
    OPEN   ──(cooldown elapsed)──▶ HALF_OPEN
    HALF_OPEN ──(probe succeeds)──▶ CLOSED
    HALF_OPEN ──(probe fails)─────▶ OPEN      (cooldown restarts)

While OPEN, :meth:`CircuitBreaker.allow` rejects locally with
:class:`~repro.errors.OverloadedError` whose retry-after hint is the
remaining cooldown — no packet is sent, which is the whole point.
HALF_OPEN admits a bounded number of probes; the first verdict decides
the next state.  ``OVERLOADED`` rejections and transport failures
count as failures; any other server answer (including application
errors like a counter underflow) proves the node is serving and counts
as success.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro.errors import ConfigurationError, OverloadedError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Breaker states; ``value`` is the ``repro_breaker_state`` gauge."""

    CLOSED = 0
    HALF_OPEN = 1
    OPEN = 2


class CircuitBreaker:
    """Trip after consecutive failures; recover via half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip CLOSED → OPEN.
    cooldown_s:
        Seconds OPEN rejects locally before allowing probes.
    half_open_probes:
        Concurrent probe budget in HALF_OPEN (1 is the classic
        behaviour; more lets a high-fan-out caller re-ramp faster).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ConfigurationError(
                f"cooldown_s must be > 0, got {cooldown_s}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.rejections = 0
        self.trips = 0

    # -- gate ------------------------------------------------------------
    def allow(self) -> None:
        """Gate one call: return to proceed, raise to reject locally.

        Raises :class:`~repro.errors.OverloadedError` whose
        ``retry_after_s`` is the remaining cooldown.  A caller that
        proceeds owes exactly one :meth:`record_success` or
        :meth:`record_failure` for this call.
        """
        if self.state is BreakerState.CLOSED:
            return
        if self.state is BreakerState.OPEN:
            remaining = self._opened_at + self.cooldown_s - self._clock()
            if remaining > 0:
                self.rejections += 1
                raise OverloadedError(
                    f"circuit breaker is open ({remaining:.3f}s of cooldown "
                    f"left)",
                    retry_after_s=remaining,
                )
            self.state = BreakerState.HALF_OPEN
            self._probes_inflight = 0
        # HALF_OPEN: admit up to the probe budget, reject the rest.
        if self._probes_inflight >= self.half_open_probes:
            self.rejections += 1
            raise OverloadedError(
                "circuit breaker is half-open and its probe is in flight",
                retry_after_s=self.cooldown_s / 2,
            )
        self._probes_inflight += 1

    # -- verdicts --------------------------------------------------------
    def record_success(self) -> None:
        """The call the breaker admitted came back healthy."""
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self._probes_inflight = 0

    def record_failure(self) -> None:
        """The admitted call failed (transport error or OVERLOADED)."""
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back to OPEN, cooldown restarts.
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0
        self.trips += 1

    # -- introspection ---------------------------------------------------
    @property
    def state_code(self) -> int:
        """Numeric state for the ``repro_breaker_state`` gauge."""
        if self.state is BreakerState.OPEN:
            # An expired cooldown is HALF_OPEN in spirit; report it so
            # dashboards see recovery begin without waiting for traffic.
            if self._clock() >= self._opened_at + self.cooldown_s:
                return BreakerState.HALF_OPEN.value
        return self.state.value

    def describe(self) -> dict:
        return {
            "state": self.state.name,
            "consecutive_failures": self._consecutive_failures,
            "rejections": self.rejections,
            "trips": self.trips,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
        }
