#!/usr/bin/env python3
"""Web-cache summary sharing with a churning cache (Fan et al.'s
Summary Cache — the application that introduced CBFs, cited as [3]).

Scenario: a cluster of web proxies exchanges compact summaries of their
cache contents.  Cached objects come and go constantly, so the summary
must support deletion — a plain Bloom filter would rot.  We simulate an
LRU cache under a Zipf request stream, keep an MPCBF summary in sync,
and measure how often a peer consulting the summary would be sent to a
proxy that no longer holds the object (false hits).

Run:  python examples/dynamic_cache_sharing.py
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro import MPCBF


class SummarisedLRUCache:
    """An LRU cache that keeps a counting-filter summary in sync."""

    def __init__(self, capacity: int, summary: MPCBF) -> None:
        self.capacity = capacity
        self.summary = summary
        self._store: OrderedDict[int, None] = OrderedDict()

    def access(self, obj: int) -> bool:
        """Touch an object; returns True on cache hit."""
        if obj in self._store:
            self._store.move_to_end(obj)
            return True
        if len(self._store) >= self.capacity:
            evicted, _ = self._store.popitem(last=False)
            self.summary.delete(evicted)  # keep the summary honest
        self._store[obj] = None
        self.summary.insert(obj)
        return False

    def holds(self, obj: int) -> bool:
        return obj in self._store


def main() -> None:
    rng = np.random.default_rng(3)
    cache_size = 4_000
    # A churning cache re-rolls the word-occupancy dice on every
    # eviction/insertion, so over a long run *some* word will eventually
    # exceed the Eq. 11 snapshot bound.  Production deployments pick the
    # `saturate` policy: the rare overflowing word degrades to a
    # membership-only overlay (never a false negative) and the event is
    # counted, instead of aborting the cache.
    summary = MPCBF(
        num_words=4096,
        word_bits=64,
        k=3,
        capacity=cache_size,
        seed=3,
        word_overflow="saturate",
    )
    cache = SummarisedLRUCache(cache_size, summary)

    # Zipf-ish request stream over a 40K-object universe.
    universe = 40_000
    ranks = np.arange(1, universe + 1, dtype=float)
    weights = ranks**-0.9
    weights /= weights.sum()
    requests = rng.choice(universe, size=60_000, p=weights)

    print(f"warming a {cache_size}-entry LRU cache with 60K Zipf requests...")
    hits = sum(cache.access(int(obj)) for obj in requests)
    print(f"  cache hit rate: {hits / len(requests):.1%}")

    # A remote peer consults the summary for 20K random objects.
    probes = rng.choice(universe, size=20_000, replace=False)
    summary_hits = summary.query_many(probes.astype(np.int64))
    actual = np.array([cache.holds(int(obj)) for obj in probes])

    false_hits = int((summary_hits & ~actual).sum())
    missed = int((~summary_hits & actual).sum())
    print(f"\npeer consulted the summary for {len(probes)} objects:")
    print(f"  objects actually cached : {int(actual.sum())}")
    print(f"  summary said cached     : {int(summary_hits.sum())}")
    print(f"  false hits (wasted peer fetches): {false_hits} "
          f"({false_hits / max(1, int((~actual).sum())):.3%} of misses)")
    print(f"  false negatives (must be 0)     : {missed}")
    print(
        f"  saturated-word events: {summary.overflow_events} inserts, "
        f"{summary.skipped_deletes} skipped deletes"
    )
    assert missed == 0, "deletion bookkeeping broke the no-false-negative rule"

    print(
        "\nthe summary tracked thousands of evictions exactly — the"
        "\ndeletable-summary use case CBFs were invented for, served by"
        "\nMPCBF at one memory access per lookup."
    )


if __name__ == "__main__":
    main()
