"""End-to-end resharding acceptance: the ISSUE's headline scenario.

Three shard groups take concurrent client traffic while a fourth
joins.  Mid-migration the stream's source node is killed the ungraceful
way (``server.abort()`` — the in-process ``kill -9``), restarted from
its WAL, and the plan resumed by a *fresh* coordinator from the epoch
log and persisted plan.  The bar afterwards:

- **zero acked-write loss** — every key whose insert was acknowledged
  answers ``maybe`` through the post-join topology;
- **oracle byte-identity** — every node's filter is byte-identical to
  a fresh filter fed only the keys that node owns under the new epoch
  (the counter-linearity argument, end to end).

Traffic deliberately avoids keys owned by the node being killed: a
connection that dies between apply and ack makes a write ambiguous
(maybe-applied but unacked), which would poison the byte-identity
oracle.  Writes to the *surviving* nodes can still race the fence and
the epoch bump — those rejections are clean protocol errors raised
before any WAL append, so retrying them is exactly-once by
construction, which is the property this test pins.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.cluster.cluster_client import ClusterClient
from repro.cluster.node import build_node_server, recover_node
from repro.cluster.router import NodeAddress, ShardGroup
from repro.errors import ClusterError, ReproError
from repro.filters.factory import FilterSpec, build_filter
from repro.rebalance.coordinator import Coordinator
from repro.rebalance.epochs import RingEpoch, hash_key
from repro.serialize import dump_filter
from repro.service.protocol import RemoteError

VNODES = 32


def build():
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=6000,
            seed=33,
            extra={"word_overflow": "saturate"},
        )
    )


async def start_node(tmp_path, name: str, port: int = 0):
    recovery = recover_node(build, wal_dir=tmp_path / f"wal-{name}")
    server = build_node_server(recovery, group=name, port=port)
    await server.start()
    return server


def as_group(name: str, server) -> ShardGroup:
    return ShardGroup(
        name=name,
        primary=NodeAddress("127.0.0.1", server.port),
        replicas=(),
    )


class TestReshardingAcceptance:
    def test_join_with_kill_resume_loses_no_acked_writes(self, tmp_path):
        asyncio.run(self._scenario(tmp_path))

    async def _scenario(self, tmp_path):
        servers = {
            name: await start_node(tmp_path, name)
            for name in ("g0", "g1", "g2")
        }
        groups = [as_group(name, srv) for name, srv in servers.items()]

        coord = Coordinator(
            tmp_path / "coord", catchup_lag=8, batch_records=24
        )
        await asyncio.to_thread(coord.bootstrap, groups, vnodes=VNODES)
        epoch1 = coord.epoch_log.latest()

        # Preload: acked history that the migration must move.
        preload = [b"pre-%05d" % i for i in range(1800)]
        with ClusterClient(groups, vnodes=VNODES) as client:
            for i in range(0, len(preload), 100):
                await asyncio.to_thread(
                    client.insert_many, preload[i : i + 100]
                )

        server3 = await start_node(tmp_path, "g3")
        plan = await asyncio.to_thread(
            coord.plan_join, as_group("g3", server3)
        )
        coord.close()
        kill_name = plan["sessions"][0]["src"]
        victim = servers[kill_name]

        # Concurrent traffic on keys the victim never owns (see module
        # docstring); acked records only what the cluster acknowledged.
        acked: list[bytes] = []
        stop = threading.Event()
        ring1 = epoch1.ring()

        def traffic() -> None:
            # One key per call: a multi-key batch can span shard groups,
            # and a retry after a partial (one group acked, another
            # fenced) would double-apply the acked part.  Single-key
            # calls are single-group, so clean rejections make the
            # retry loop exactly-once.
            with ClusterClient(
                groups, vnodes=VNODES, retries=14, backoff_s=0.05
            ) as tc:
                n = 0
                while not stop.is_set():
                    key = b"live-%06d" % n
                    n += 1
                    if ring1.owner_at(hash_key(key)) == kill_name:
                        continue
                    try:
                        tc.insert(key)
                        acked.append(key)
                    except (ReproError, RemoteError, OSError):
                        pass  # unacked: excluded from every assertion

        worker = threading.Thread(target=traffic, daemon=True)
        worker.start()

        # First coordinator attempt: killed mid-stream.
        killer = Coordinator(
            tmp_path / "coord",
            catchup_lag=8,
            batch_records=24,
            retries=2,
            backoff_s=0.01,
        )
        exec_task = asyncio.create_task(asyncio.to_thread(killer.execute))
        while not exec_task.done():
            if victim.rebalance.counters["records_streamed"] > 0:
                break
            await asyncio.sleep(0.001)
        await victim.abort()
        try:
            await exec_task
        except (ClusterError, RemoteError, ConnectionError, OSError):
            pass  # the kill landed where we aimed it
        finally:
            killer.close()

        # Restart the victim from its WAL on the same port.
        servers[kill_name] = await start_node(
            tmp_path, kill_name, port=victim.port
        )

        # A *fresh* coordinator resumes from the epoch log + plan file.
        resumer = Coordinator(
            tmp_path / "coord", catchup_lag=8, batch_records=24
        )
        try:
            plan = await asyncio.to_thread(resumer.execute)
        finally:
            resumer.close()
        assert plan["completed"]
        assert all(s["state"] == "OWNED" for s in plan["sessions"])
        epoch2 = RingEpoch.from_bytes(bytes.fromhex(plan["epoch_to_hex"]))
        assert epoch2.version == 2

        await asyncio.sleep(0.1)  # let post-join traffic land on g3 too
        stop.set()
        await asyncio.to_thread(worker.join, 30)
        assert not worker.is_alive()

        servers["g3"] = server3
        for name, srv in servers.items():
            assert srv.rebalance.epoch.version == 2, name

        # Zero acked-write loss through the post-join topology.
        all_groups = [as_group(n, s) for n, s in servers.items()]
        multiset = preload + acked
        with ClusterClient(all_groups, vnodes=VNODES) as client:
            for i in range(0, len(multiset), 200):
                chunk = multiset[i : i + 200]
                answers = await asyncio.to_thread(client.query_many, chunk)
                assert all(answers), f"lost acked writes near index {i}"

        # Byte-identity against per-node single-node oracles.
        ring2 = epoch2.ring()
        owned: dict[str, list[bytes]] = {name: [] for name in servers}
        for key in multiset:
            owned[ring2.owner_at(hash_key(key))].append(key)
        assert owned["g3"], "the newcomer must own part of the workload"
        for name, srv in servers.items():
            oracle = build()
            oracle.insert_many(owned[name])
            assert dump_filter(srv.filter) == dump_filter(oracle), name

        for srv in servers.values():
            await srv.stop()
