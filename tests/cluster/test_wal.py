"""Write-ahead log unit tests: framing, recovery, compaction, tailing."""

from __future__ import annotations

import pytest

from repro.cluster.wal import FsyncPolicy, WriteAheadLog
from repro.errors import ConfigurationError, WalCorruptionError
from repro.service.protocol import Opcode


def keys_of(i, n=3):
    return [b"key-%d-%d" % (i, j) for j in range(n)]


class TestAppendReplay:
    def test_sequences_are_contiguous_and_replayable(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        seqs = [wal.append(Opcode.INSERT, keys_of(i)) for i in range(10)]
        wal.append(Opcode.DELETE, [b"gone"])
        wal.close()
        assert seqs == list(range(1, 11))

        wal2 = WriteAheadLog(tmp_path)
        records = list(wal2.replay())
        assert wal2.last_seq == 11
        assert [r.seq for r in records] == list(range(1, 12))
        assert records[0].op == Opcode.INSERT
        assert records[0].keys == tuple(keys_of(0))
        assert records[-1].op == Opcode.DELETE
        assert records[-1].keys == (b"gone",)

    def test_replay_from_offset(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(20):
            wal.append(Opcode.INSERT, keys_of(i))
        assert [r.seq for r in wal.replay(start_seq=15)] == [15, 16, 17, 18, 19, 20]

    def test_duplicate_seq_is_skipped_and_gap_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(Opcode.INSERT, [b"a"], seq=1)
        assert wal.append(Opcode.INSERT, [b"a"], seq=1) == 1  # redelivery
        assert wal.last_seq == 1
        with pytest.raises(WalCorruptionError):
            wal.append(Opcode.INSERT, [b"c"], seq=5)

    def test_only_mutations_are_loggable(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ConfigurationError):
            wal.append(Opcode.QUERY, [b"a"])


class TestCrashRecovery:
    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=FsyncPolicy.NEVER)
        for i in range(5):
            wal.append(Opcode.INSERT, keys_of(i))
        wal.close()
        segment = wal.segments()[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the final record

        wal2 = WriteAheadLog(tmp_path)
        assert wal2.last_seq == 4
        assert [r.seq for r in wal2.replay()] == [1, 2, 3, 4]
        # The torn bytes are gone: appending continues from seq 5.
        assert wal2.append(Opcode.INSERT, [b"after"]) == 5
        assert [r.seq for r in wal2.replay()] == [1, 2, 3, 4, 5]

    def test_midlog_corruption_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64)
        for i in range(12):
            wal.append(Opcode.INSERT, keys_of(i))
        wal.close()
        first = wal.segments()[0]
        blob = bytearray(first.read_bytes())
        blob[12] ^= 0xFF  # flip a payload byte behind a valid CRC header
        first.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(tmp_path).replay())


class TestRotationAndCompaction:
    def test_segments_rotate_by_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128)
        for i in range(30):
            wal.append(Opcode.INSERT, keys_of(i))
        assert len(wal.segments()) > 1
        assert [r.seq for r in wal.replay()] == list(range(1, 31))

    def test_truncate_through_drops_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128)
        for i in range(30):
            wal.append(Opcode.INSERT, keys_of(i))
        before = len(wal.segments())
        removed = wal.truncate_through(wal.last_seq)
        assert removed > 0
        assert len(wal.segments()) < before
        # Every record after the covered prefix is still replayable.
        assert wal.first_seq <= wal.last_seq + 1
        tail = [r.seq for r in wal.replay(start_seq=wal.first_seq)]
        assert tail == list(range(wal.first_seq, wal.last_seq + 1))
        # Appends keep working after compaction.
        assert wal.append(Opcode.INSERT, [b"next"]) == 31

    def test_reset_to_discards_history(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for i in range(5):
            wal.append(Opcode.INSERT, keys_of(i))
        wal.reset_to(40)
        assert wal.last_seq == 40
        assert list(wal.replay()) == []
        assert wal.append(Opcode.INSERT, [b"x"]) == 41


class TestRead:
    def test_cursor_tails_across_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=128)
        for i in range(10):
            wal.append(Opcode.INSERT, keys_of(i))
        got, cursor = wal.read(1, max_records=4)
        assert [r.seq for r in got] == [1, 2, 3, 4]
        collected = [r.seq for r in got]
        while True:
            got, cursor = wal.read(collected[-1] + 1, cursor=cursor)
            if not got:
                break
            collected.extend(r.seq for r in got)
        assert collected == list(range(1, 11))
        # New appends become visible to the same cursor.
        wal.append(Opcode.INSERT, [b"live"])
        got, cursor = wal.read(11, cursor=cursor)
        assert [r.seq for r in got] == [11]

    def test_fsync_policy_counters(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a", fsync=FsyncPolicy.ALWAYS)
        for i in range(5):
            always.append(Opcode.INSERT, [b"k%d" % i])
        assert always.fsyncs_total == 5

        batch = WriteAheadLog(tmp_path / "b", fsync=FsyncPolicy.BATCH)
        for i in range(5):
            batch.append(Opcode.INSERT, [b"k%d" % i])
        assert batch.fsyncs_total == 0
        batch.sync_batch()
        assert batch.fsyncs_total == 1
        batch.sync_batch()  # nothing dirty: no extra fsync
        assert batch.fsyncs_total == 1

    def test_describe_shape(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(Opcode.INSERT, [b"a"])
        desc = wal.describe()
        assert desc["last_seq"] == 1
        assert desc["segments"] == 1
        assert desc["fsync_policy"] == "batch"
        assert desc["size_bytes"] == wal.size_bytes() > 0


class TestColumnarRecords:
    """BULK64 records round-trip as u64 columns, interleaved with legacy."""

    def test_columnar_round_trip_and_replay(self, tmp_path):
        import numpy as np

        column = np.array([1, 2**40, 2**64 - 1], dtype=np.uint64)
        wal = WriteAheadLog(tmp_path)
        wal.append(Opcode.INSERT, [b"legacy-a", b"legacy-b"])
        wal.append(Opcode.BULK64_INSERT, column)
        wal.append(Opcode.BULK64_DELETE, column[:2])
        wal.sync()

        reopened = WriteAheadLog(tmp_path)
        records = list(reopened.replay())
        assert [r.op for r in records] == [
            Opcode.INSERT,
            Opcode.BULK64_INSERT,
            Opcode.BULK64_DELETE,
        ]
        assert records[0].keys == (b"legacy-a", b"legacy-b")
        assert isinstance(records[1].keys, np.ndarray)
        assert np.array_equal(records[1].keys, column)
        assert np.array_equal(records[2].keys, column[:2])

    def test_mig64_records_keep_header_and_packed_keys(self, tmp_path):
        import numpy as np

        packed = [int(v).to_bytes(8, "little") for v in (7, 9, 11)]
        wal = WriteAheadLog(tmp_path)
        wal.append(Opcode.MIG_INSERT64, [b"header-blob", *packed])
        wal.sync()
        [record] = list(WriteAheadLog(tmp_path).replay())
        assert record.op == Opcode.MIG_INSERT64
        assert record.keys[0] == b"header-blob"
        assert np.array_equal(
            np.frombuffer(b"".join(record.keys[1:]), dtype="<u8"),
            np.array([7, 9, 11], dtype=np.uint64),
        )
