"""MPCBF — Multiple-Partitioned Counting Bloom Filter (§III.B–C).

The paper's contribution.  The membership counter vector is an array of
``l`` improved :class:`~repro.filters.hcbf_word.HCBFWord` words; a key
hashes to ``g`` words (one memory access each) and to ``k`` first-level
bit offsets split across them.  Queries read only the words' first
levels; updates traverse each word's popcount hierarchy.

Sizing: given the expected number of stored elements, ``n_max`` (the
per-word element bound) defaults to the paper's Poisson-inverse
heuristic (Eq. 11) and the first level is maximised to
``b1 = w − ⌈k/g⌉·n_max`` (§III.B.3).  A word that receives more than
``n_max`` elements raises :class:`repro.errors.WordOverflowError`; the
probability of that event is bounded by Eq. 6 / Eq. 10 and validated in
the test suite.

Bulk queries run fully vectorised against a packed ``uint64`` mirror of
all first-level vectors, which scalar updates keep in sync (only
first-level flips matter; hierarchy churn never moves level-1 bits).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, WordOverflowError
from repro.filters.base import CountingFilterBase
from repro.filters.hcbf_word import HCBFWord, improved_first_level_size
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import PartitionedHashFamily
from repro.memmodel.accounting import OpKind

__all__ = ["MPCBF"]


class MPCBF(CountingFilterBase):
    """MPCBF-g counting filter.

    Parameters
    ----------
    num_words:
        Number of HCBF words ``l``; total memory is ``l·w`` bits.
    word_bits:
        Word width ``w`` (64 for the paper's main experiments).
    k:
        Total number of first-level hash functions.
    g:
        Memory accesses per operation (words per key).
    capacity:
        Expected number of stored elements ``n``; used by the ``n_max``
        heuristic.  Required unless ``n_max`` is given explicitly.
    n_max:
        Per-word element bound; overrides the heuristic when given.
    word_overflow:
        ``"raise"`` (default) surfaces
        :class:`~repro.errors.WordOverflowError` when a word's hierarchy
        fills up.  ``"saturate"`` freezes the overflowing word's
        hierarchy and keeps a membership-only overlay for it instead:
        queries stay false-negative-free, deletes touching the word
        become recorded no-ops (``skipped_deletes``), and every
        saturated insertion bumps ``overflow_events``.  The Eq. 11
        heuristic keeps the *expected* number of overflowing words
        around one in ``l``, so saturation is rare but not impossible
        on long experiment grids.
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        k: int,
        *,
        g: int = 1,
        capacity: int | None = None,
        n_max: int | None = None,
        first_level_bits: int | None = None,
        seed: int = 0,
        word_overflow: str = "raise",
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_words < 1:
            raise ConfigurationError(f"num_words must be >= 1, got {num_words}")
        if first_level_bits is not None:
            # Basic HCBF (§III.B.1): a caller-fixed b1 instead of the
            # improved maximised layout; n_max follows from the
            # leftover hierarchy budget.
            if not 1 <= first_level_bits < word_bits:
                raise ConfigurationError(
                    f"first_level_bits must be in [1, {word_bits}), "
                    f"got {first_level_bits}"
                )
            n_max = (word_bits - first_level_bits) // max(1, -(-k // g))
            if n_max < 1:
                raise ConfigurationError(
                    f"first_level_bits={first_level_bits} leaves no "
                    f"hierarchy budget for even one element"
                )
        elif n_max is None:
            if capacity is None:
                raise ConfigurationError(
                    "provide either capacity (for the Eq. 11 heuristic) or n_max"
                )
            # Local import: analysis depends on filters' sizing helpers.
            from repro.analysis.heuristics import n_max_heuristic

            n_max = n_max_heuristic(capacity, num_words, g=g)
        if n_max < 1:
            raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
        self.name = f"MPCBF-{g}"
        self.num_words = num_words
        self.word_bits = word_bits
        self.k = k
        self.g = g
        self.n_max = n_max
        self.capacity = capacity
        self.hashes_per_word = -(-k // g)  # ceil(k/g), the paper's ⌈k/g⌉
        if first_level_bits is not None:
            self.first_level_bits = first_level_bits
        else:
            self.first_level_bits = improved_first_level_size(
                word_bits, self.hashes_per_word, n_max
            )
        if k > self.first_level_bits:
            raise ConfigurationError(
                f"k={k} exceeds first-level size b1={self.first_level_bits}"
            )
        self.family = PartitionedHashFamily(
            num_words, self.first_level_bits, k, g=g, seed=seed
        )
        self.words = [
            HCBFWord(word_bits, self.first_level_bits, index=i)
            for i in range(num_words)
        ]
        self._limbs = -(-self.first_level_bits // 64)
        self._mirror = np.zeros((num_words, self._limbs), dtype=np.uint64)
        # Flat view for the single-limb bulk fast path (shares memory).
        self._mirror1d = self._mirror[:, 0] if self._limbs == 1 else None
        self._budget_query = HashBitBudget.partitioned(
            num_words, self.first_level_bits, k, g
        )
        if word_overflow not in ("raise", "saturate"):
            raise ConfigurationError(
                f"word_overflow must be 'raise' or 'saturate', got {word_overflow!r}"
            )
        self.word_overflow = word_overflow
        #: Membership-only overlays for saturated words (index → bitmap).
        self._saturated: dict[int, int] = {}
        #: Hash insertions absorbed by saturated words.
        self.overflow_events = 0
        #: Deletes skipped because they touched a saturated word.
        self.skipped_deletes = 0

    @property
    def total_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    @property
    def stored_hash_bits(self) -> int:
        """Total hierarchy bits in use across all words."""
        return sum(word.hierarchy_bits_used for word in self.words)

    def _mirror_set(self, word_index: int, bit: int) -> None:
        self._mirror[word_index, bit >> 6] |= np.uint64(1 << (bit & 63))

    def _mirror_clear(self, word_index: int, bit: int) -> None:
        self._mirror[word_index, bit >> 6] &= np.uint64(
            ~(1 << (bit & 63)) & 0xFFFFFFFFFFFFFFFF
        )

    def _saturate_word(self, word_index: int) -> None:
        """Freeze a word's hierarchy; further inserts go to the overlay."""
        self._saturated.setdefault(word_index, 0)

    def _overlay_insert(self, word_index: int, offsets: list[int]) -> None:
        overlay = self._saturated[word_index]
        for pos in offsets:
            overlay |= 1 << pos
            self._mirror_set(word_index, pos)
            self.overflow_events += 1
        self._saturated[word_index] = overlay

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        # Two-phase inside _apply_insert: dry-run capacity check first,
        # so a failed insert leaves every word untouched.
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        extra_bits = self._apply_insert(word_indices, groups)
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.g),
            hash_bits=self._budget_query.total_bits + extra_bits,
            hash_calls=self._budget_query.hash_calls,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        # Validate all counters first so a bad delete leaves no trace.
        # Demand aggregates across *all* groups: with g > 1 the word
        # hashes can collide, landing two groups' offsets in one word.
        demand: dict[tuple[int, int], int] = {}
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated:
                continue
            for pos in offsets:
                demand[(word_index, pos)] = demand.get((word_index, pos), 0) + 1
        for (word_index, pos), need in demand.items():
            if self.words[word_index].count(pos) < need:
                from repro.errors import CounterUnderflowError

                raise CounterUnderflowError(pos)
        extra_bits = 0.0
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated:
                # A frozen word cannot safely decrement: skip, keep the
                # bits set (no false negatives), and record the skip.
                self.skipped_deletes += len(offsets)
                continue
            word = self.words[word_index]
            for pos in offsets:
                remaining, bits = word.delete_bit(pos)
                extra_bits += bits
                if remaining == 0:
                    self._mirror_clear(word_index, pos)
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.g),
            hash_bits=self._budget_query.total_bits + extra_bits,
            hash_calls=self._budget_query.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        accesses = 0
        result = True
        for word_index, offsets in zip(word_indices, groups):
            accesses += 1
            word = self.words[word_index]
            overlay = self._saturated.get(word_index, 0)
            if any(
                not (word.query_bit(pos) or (overlay >> pos) & 1)
                for pos in offsets
            ):
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget_query.total_bits / self.g * accesses,
            hash_calls=self._budget_query.hash_calls,
        )
        return result

    def count_encoded(self, encoded_key: int) -> int:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        best = None
        for word_index, offsets in zip(word_indices, groups):
            word = self.words[word_index]
            overlay = self._saturated.get(word_index, 0)
            for pos in offsets:
                value = word.count(pos)
                if value == 0 and (overlay >> pos) & 1:
                    value = 1  # overlay knows membership, not multiplicity
                best = value if best is None else min(best, value)
        return int(best or 0)

    # -- bulk -----------------------------------------------------------
    def _grouped_rows(self, encoded: np.ndarray):
        """One vectorised hash pass for a whole batch of updates.

        Yields ``(word_indices_row, grouped_offsets_row)`` per key —
        the hierarchy mutations stay scalar (they are inherently
        sequential per word), but the k+g−1 mixes per key run in NumPy,
        which dominates the pure-Python cost at batch sizes ≥ ~1000.
        """
        word_idx, offsets = self.family.locate_array(encoded)
        k_per_word = self.family.k_per_word
        for row in range(len(encoded)):
            groups = []
            start = 0
            for count in k_per_word:
                groups.append(
                    [int(o) for o in offsets[row, start : start + count]]
                )
                start += count
            yield [int(w) for w in word_idx[row]], groups

    def _apply_insert(self, word_indices, groups) -> float:
        """Scalar insert body shared by insert_encoded and insert_many."""
        extra_bits = 0.0
        demand: dict[int, int] = {}
        for word_index, offsets in zip(word_indices, groups):
            demand[word_index] = demand.get(word_index, 0) + len(offsets)
        for word_index, need in demand.items():
            if word_index in self._saturated:
                continue
            if self.words[word_index].bits_free < need:
                if self.word_overflow == "raise":
                    raise WordOverflowError(
                        word_index,
                        self.words[word_index].hierarchy_capacity_bits,
                    )
                self._saturate_word(word_index)
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated:
                self._overlay_insert(word_index, offsets)
                continue
            word = self.words[word_index]
            for pos in offsets:
                depth, bits = word.insert_bit(pos)
                extra_bits += bits
                if depth == 1:
                    self._mirror_set(word_index, pos)
        return extra_bits

    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        total_extra = 0.0
        for word_indices, groups in self._grouped_rows(encoded):
            total_extra += self._apply_insert(word_indices, groups)
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.g * len(encoded)),
            hash_bits=self._budget_query.total_bits * len(encoded) + total_extra,
            hash_calls=self._budget_query.hash_calls * len(encoded),
        )

    def delete_many(self, keys: object) -> None:
        for encoded in self._encode_bulk(keys):
            self.delete_encoded(int(encoded))

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        word_idx, offsets = self.family.locate_array(encoded)
        word_cols = self.family.offset_word_columns()
        words_per_offset = word_idx[:, word_cols]
        shift = (offsets & 63).astype(np.uint64)
        if self._limbs == 1:
            # b1 <= 64: the common case; one flat gather per offset.
            limbs = self._mirror1d[words_per_offset]
        else:
            limbs = self._mirror[words_per_offset, (offsets >> 6)]
        tested = ((limbs >> shift) & np.uint64(1)).astype(bool)
        member = tested.all(axis=1)
        first_fail = np.where(member, self.k - 1, np.argmin(tested, axis=1))
        accesses = word_cols[first_fail] + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget_query.total_bits / self.g * total_accesses,
            hash_calls=self._budget_query.hash_calls * len(encoded),
        )
        return member

    def merge(self, other: "MPCBF") -> None:
        """Add another MPCBF's counters into this one (multiset union).

        Requires identical geometry and seed.  Per word, every
        first-level counter of ``other`` is re-inserted into this
        filter's hierarchy ``count`` times; saturated words of either
        side merge into this side's membership overlay.  Overflow
        follows this filter's ``word_overflow`` policy.
        """
        if (
            not isinstance(other, MPCBF)
            or other.num_words != self.num_words
            or other.word_bits != self.word_bits
            or other.k != self.k
            or other.g != self.g
            or other.first_level_bits != self.first_level_bits
            or other.family.seed != self.family.seed
        ):
            raise ConfigurationError(
                "merge requires an identically configured MPCBF"
            )
        for index, word in enumerate(other.words):
            mine = self.words[index]
            for pos in range(self.first_level_bits):
                count = word.count(pos)
                for _ in range(count):
                    if index in self._saturated:
                        self._overlay_insert(index, [pos])
                        continue
                    if mine.bits_free < 1:
                        if self.word_overflow == "raise":
                            raise WordOverflowError(
                                index, mine.hierarchy_capacity_bits
                            )
                        self._saturate_word(index)
                        self._overlay_insert(index, [pos])
                        continue
                    depth, _ = mine.insert_bit(pos)
                    if depth == 1:
                        self._mirror_set(index, pos)
        # Membership-only overlays of the other side fold into ours.
        for index, overlay in other._saturated.items():
            self._saturate_word(index)
            positions = [
                pos
                for pos in range(self.first_level_bits)
                if (overlay >> pos) & 1
            ]
            if positions:
                self._overlay_insert(index, positions)

    # -- validation -------------------------------------------------------
    def check_invariants(self) -> None:
        """Check every word's invariants plus mirror consistency."""
        for i, word in enumerate(self.words):
            word.check_invariants()
            value = word.first_level_value() | self._saturated.get(i, 0)
            for limb in range(self._limbs):
                expect = (value >> (64 * limb)) & 0xFFFFFFFFFFFFFFFF
                assert int(self._mirror[i, limb]) == expect, (
                    f"mirror desync at word {i} limb {limb}"
                )
