"""Tests for access statistics accumulation and averaging."""

from __future__ import annotations

import pytest

from repro.memmodel.accounting import AccessStats, OpKind, OpStats


class TestOpStats:
    def test_empty_means_are_zero(self):
        stats = OpStats()
        assert stats.mean_accesses == 0.0
        assert stats.mean_bits == 0.0
        assert stats.mean_hash_calls == 0.0

    def test_record_and_means(self):
        stats = OpStats()
        stats.record(word_accesses=3.0, hash_bits=46.0, hash_calls=3)
        stats.record(word_accesses=1.0, hash_bits=26.0, hash_calls=3)
        assert stats.operations == 2
        assert stats.mean_accesses == 2.0
        assert stats.mean_bits == 36.0
        assert stats.mean_hash_calls == 3.0

    def test_bulk_record(self):
        stats = OpStats()
        stats.record(count=100, word_accesses=150.0, hash_bits=2600.0, hash_calls=300)
        assert stats.operations == 100
        assert stats.mean_accesses == 1.5

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            OpStats().record(count=-1, word_accesses=0, hash_bits=0, hash_calls=0)

    def test_merge(self):
        a = OpStats()
        a.record(word_accesses=2.0, hash_bits=10.0, hash_calls=2)
        b = OpStats()
        b.record(word_accesses=4.0, hash_bits=20.0, hash_calls=4)
        a.merge(b)
        assert a.operations == 2
        assert a.mean_accesses == 3.0


class TestAccessStats:
    def test_kind_routing(self):
        stats = AccessStats()
        stats.record(OpKind.QUERY, word_accesses=1.0, hash_bits=5.0, hash_calls=1)
        stats.record(OpKind.INSERT, word_accesses=2.0, hash_bits=6.0, hash_calls=2)
        stats.record(OpKind.DELETE, word_accesses=3.0, hash_bits=7.0, hash_calls=3)
        assert stats.query.operations == 1
        assert stats.insert.operations == 1
        assert stats.delete.operations == 1

    def test_update_combines_insert_and_delete(self):
        stats = AccessStats()
        stats.record(OpKind.INSERT, word_accesses=1.0, hash_bits=10.0, hash_calls=1)
        stats.record(OpKind.DELETE, word_accesses=3.0, hash_bits=30.0, hash_calls=3)
        upd = stats.update
        assert upd.operations == 2
        assert upd.mean_accesses == 2.0
        assert upd.mean_bits == 20.0

    def test_update_is_a_snapshot(self):
        stats = AccessStats()
        stats.record(OpKind.INSERT, word_accesses=1.0, hash_bits=1.0, hash_calls=1)
        snapshot = stats.update
        stats.record(OpKind.INSERT, word_accesses=1.0, hash_bits=1.0, hash_calls=1)
        assert snapshot.operations == 1  # unchanged

    def test_reset(self):
        stats = AccessStats()
        stats.record(OpKind.QUERY, word_accesses=1.0, hash_bits=1.0, hash_calls=1)
        stats.reset()
        assert stats.query.operations == 0

    def test_merge(self):
        a, b = AccessStats(), AccessStats()
        a.record(OpKind.QUERY, word_accesses=1.0, hash_bits=1.0, hash_calls=1)
        b.record(OpKind.QUERY, word_accesses=3.0, hash_bits=3.0, hash_calls=3)
        a.merge(b)
        assert a.query.operations == 2
        assert a.query.mean_accesses == 2.0

    def test_summary_keys(self):
        stats = AccessStats()
        summary = stats.summary()
        assert set(summary) == {"query", "insert", "delete", "update"}
        assert summary["query"]["operations"] == 0.0

    def test_for_kind(self):
        stats = AccessStats()
        assert stats.for_kind(OpKind.DELETE) is stats.delete
