"""AdmissionController: inflight bound, degraded hysteresis, pricing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, OverloadedError
from repro.overload.admission import (
    DEFAULT_COSTS,
    AdmissionController,
    TokenBucket,
)
from repro.service.metrics import ServiceMetrics


class TestConstruction:
    def test_rejects_zero_inflight(self, clock):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0, clock=clock)

    @pytest.mark.parametrize(
        "low,high", [(0.0, 0.8), (0.9, 0.8), (0.5, 1.5)]
    )
    def test_rejects_bad_watermarks(self, clock, low, high):
        with pytest.raises(ConfigurationError):
            AdmissionController(
                max_inflight=10, low_water=low, high_water=high, clock=clock
            )

    def test_mutations_cost_four_queries(self):
        assert DEFAULT_COSTS["insert"] == 4 * DEFAULT_COSTS["query"]
        assert DEFAULT_COSTS["delete"] == 4 * DEFAULT_COSTS["query"]


class TestInflightBound:
    def test_queue_full_sheds_with_hint(self, clock):
        ctl = AdmissionController(max_inflight=2, clock=clock)
        ctl.admit("query", 1)
        ctl.admit("query", 1)
        with pytest.raises(OverloadedError) as exc_info:
            ctl.admit("query", 1)
        assert exc_info.value.retry_after_s == 0.05
        assert ctl.shed == {"queue_full": 1}
        assert ctl.inflight == 2  # the shed request was never admitted

    def test_release_reopens_the_door(self, clock):
        ctl = AdmissionController(max_inflight=1, clock=clock)
        ctl.admit("query", 1)
        ctl.release()
        ctl.admit("query", 1)  # must not raise
        assert ctl.admitted_total == 2

    def test_release_never_goes_negative(self, clock):
        ctl = AdmissionController(max_inflight=1, clock=clock)
        ctl.release()
        assert ctl.inflight == 0


class TestDegradedMode:
    def make(self, clock):
        # high water at 8/10 inflight, low water at 5/10.
        return AdmissionController(
            max_inflight=10, high_water=0.8, low_water=0.5, clock=clock
        )

    def test_hysteresis_enter_high_exit_low(self, clock):
        ctl = self.make(clock)
        for _ in range(8):
            ctl.admit("query", 1)
        # At high water: mutations shed, queries still admitted.
        with pytest.raises(OverloadedError) as exc_info:
            ctl.admit("insert", 1)
        assert exc_info.value.retry_after_s == 0.1
        assert ctl.degraded
        assert ctl.shed == {"degraded_write": 1}
        ctl.admit("query", 1)
        assert ctl.inflight == 9

        # Drain to 6 — above low water, so degraded mode is sticky.
        for _ in range(3):
            ctl.release()
        with pytest.raises(OverloadedError):
            ctl.admit("delete", 1)
        assert ctl.degraded

        # One more release crosses low water: full service resumes.
        ctl.release()
        assert not ctl.degraded
        ctl.admit("insert", 1)
        assert ctl.shed == {"degraded_write": 2}

    def test_degraded_reads_use_no_bucket_tokens_for_writes(self, clock):
        # A shed mutation must not debit the bucket: the degraded check
        # fires before pricing, so the rejection is effect-free.
        bucket = TokenBucket(100.0, burst=100.0, clock=clock)
        ctl = AdmissionController(
            max_inflight=10,
            bucket=bucket,
            high_water=0.8,
            low_water=0.5,
            clock=clock,
        )
        for _ in range(8):
            ctl.admit("query", 1)
        before = bucket.tokens
        with pytest.raises(OverloadedError):
            ctl.admit("insert", 5)
        assert bucket.tokens == before


class TestRateLimiting:
    def test_insert_priced_at_four_per_key(self, clock):
        bucket = TokenBucket(100.0, burst=8.0, clock=clock)
        ctl = AdmissionController(max_inflight=100, bucket=bucket, clock=clock)
        ctl.admit("insert", 2)  # 2 keys x 4.0 = the whole burst
        assert bucket.tokens == 0.0
        with pytest.raises(OverloadedError) as exc_info:
            ctl.admit("query", 1)
        # The hint is the bucket's own wait for cost 1 at 100/s.
        assert exc_info.value.retry_after_s == pytest.approx(0.01)
        assert ctl.shed == {"rate_limited": 1}
        assert ctl.inflight == 1  # only the insert was admitted

    def test_zero_key_requests_cost_one(self, clock):
        bucket = TokenBucket(100.0, burst=1.0, clock=clock)
        ctl = AdmissionController(max_inflight=100, bucket=bucket, clock=clock)
        ctl.admit("query", 0)
        assert bucket.tokens == 0.0

    def test_hint_floor(self, clock):
        # Even a microscopic shortfall hints at least 1ms, so clients
        # never busy-spin on a zero backoff.
        bucket = TokenBucket(1_000_000.0, burst=1.0, clock=clock)
        ctl = AdmissionController(max_inflight=100, bucket=bucket, clock=clock)
        ctl.admit("query", 1)
        with pytest.raises(OverloadedError) as exc_info:
            ctl.admit("query", 1)
        assert exc_info.value.retry_after_s >= 0.001

    def test_no_bucket_means_no_rate_limit(self, clock):
        ctl = AdmissionController(max_inflight=100, clock=clock)
        for _ in range(50):
            ctl.admit("insert", 1000)
        assert ctl.shed == {}


class TestAccounting:
    def test_sheds_mirror_into_service_metrics(self, clock):
        metrics = ServiceMetrics()
        ctl = AdmissionController(max_inflight=1, metrics=metrics, clock=clock)
        ctl.admit("query", 1)
        with pytest.raises(OverloadedError):
            ctl.admit("query", 1)
        assert metrics.shed["queue_full"] == 1

    def test_describe_reports_bucket_and_sheds(self, clock):
        bucket = TokenBucket(10.0, burst=4.0, clock=clock)
        ctl = AdmissionController(max_inflight=2, bucket=bucket, clock=clock)
        ctl.admit("insert", 1)
        with pytest.raises(OverloadedError):
            ctl.admit("insert", 1)
        report = ctl.describe()
        assert report["max_inflight"] == 2
        assert report["inflight"] == 1
        assert report["admitted_total"] == 1
        assert report["shed"] == {"rate_limited": 1}
        assert report["bucket"] == {"rate": 10.0, "burst": 4.0, "tokens": 0.0}

    def test_describe_without_bucket(self, clock):
        ctl = AdmissionController(max_inflight=2, clock=clock)
        assert "bucket" not in ctl.describe()
