"""Hypothesis differential suite: columnar kernels vs the scalar oracle.

Every example drives the same randomized operation interleaving through
a columnar-kernel MPCBF and its scalar twin, comparing after *every*
operation: membership, counters, the packed mirror, saturation
overlays, overflow/skip counters, stored hierarchy bits, the raised
error (type and args), and the recorded ``AccessStats``.  Integer stat
fields must match exactly; ``hash_bits`` approximately (the two
backends sum identical log2 terms in different orders and through
``math.log2`` vs a ``np.log2`` table, so the totals agree to ulps).

The op mix deliberately includes deletes of absent keys (underflow
mid-batch), repeated keys in one batch (deep counters, demand
aggregation), tiny words under load (saturation and raising overflow),
and cross-kernel merges.  Well over 200 examples run across the suite.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.filters.mpcbf import MPCBF
from repro.memmodel.accounting import OpKind
from repro.serialize import dump_filter


def _keys(ids) -> np.ndarray:
    # Spread small ids across the hash space so geometry stays generic.
    return (
        np.asarray(ids, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        + np.uint64(1)
    )


def _assert_stats_equal(col: MPCBF, sca: MPCBF) -> None:
    for kind in OpKind:
        s1 = col.stats.for_kind(kind)
        s2 = sca.stats.for_kind(kind)
        assert s1.operations == s2.operations, kind
        assert s1.word_accesses == s2.word_accesses, kind
        assert s1.hash_calls == s2.hash_calls, kind
        assert math.isclose(
            s1.hash_bits, s2.hash_bits, rel_tol=1e-9, abs_tol=1e-6
        ), (kind, s1.hash_bits, s2.hash_bits)


def _assert_state_equal(col: MPCBF, sca: MPCBF) -> None:
    assert np.array_equal(col._mirror, sca._mirror)
    assert col._saturated == sca._saturated
    assert col.overflow_events == sca.overflow_events
    assert col.skipped_deletes == sca.skipped_deletes
    assert col.stored_hash_bits == sca.stored_hash_bits
    assert col.dump_level_state() == sca.dump_level_state()
    _assert_stats_equal(col, sca)


def _apply_both(col: MPCBF, sca: MPCBF, fn) -> None:
    """Run ``fn`` against both backends; errors must match exactly."""
    errors = []
    for filt in (col, sca):
        try:
            fn(filt)
            errors.append(None)
        except ReproError as exc:
            errors.append(exc)
    e1, e2 = errors
    assert type(e1) is type(e2), (e1, e2)
    if e1 is not None:
        assert e1.args == e2.args
    _assert_state_equal(col, sca)


def _run_interleaving(col: MPCBF, sca: MPCBF, ops) -> None:
    probes = _keys(range(40))
    for verb, ids in ops:
        batch = _keys(ids)
        if verb == "insert":
            if len(ids) == 1:
                _apply_both(col, sca, lambda f: f.insert_encoded(int(batch[0])))
            else:
                _apply_both(col, sca, lambda f: f.insert_many(batch))
        else:
            if len(ids) == 1:
                _apply_both(col, sca, lambda f: f.delete_encoded(int(batch[0])))
            else:
                _apply_both(col, sca, lambda f: f.delete_many(batch))
        assert np.array_equal(col.query_many(probes), sca.query_many(probes))
        assert np.array_equal(col.count_many(probes), sca.count_many(probes))
        _assert_stats_equal(col, sca)
    col.check_invariants()
    sca.check_invariants()
    # Byte-identical serialisation across backends (snapshot contract).
    assert dump_filter(col) == dump_filter(sca)


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "delete"]),
        st.lists(st.integers(0, 39), min_size=1, max_size=24),
    ),
    min_size=1,
    max_size=8,
)

_GEOMETRY = st.tuples(
    st.sampled_from([4, 8]),      # num_words
    st.integers(2, 4),            # k
    st.integers(1, 2),            # g
    st.integers(3, 6),            # n_max
    st.integers(0, 5),            # seed
)


class TestRandomInterleavings:
    @settings(max_examples=100, deadline=None)
    @given(_GEOMETRY, _OPS)
    def test_saturate_policy(self, geometry, ops):
        num_words, k, g, n_max, seed = geometry
        make = lambda kernel: MPCBF(
            num_words, 64, k, g=g, n_max=n_max, seed=seed,
            word_overflow="saturate", kernel=kernel,
        )
        _run_interleaving(make("columnar"), make("scalar"), ops)

    @settings(max_examples=60, deadline=None)
    @given(_GEOMETRY, _OPS)
    def test_raise_policy(self, geometry, ops):
        num_words, k, g, n_max, seed = geometry
        make = lambda kernel: MPCBF(
            num_words, 64, k, g=g, n_max=n_max, seed=seed,
            word_overflow="raise", kernel=kernel,
        )
        _run_interleaving(make("columnar"), make("scalar"), ops)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 5), _OPS)
    def test_multi_limb_first_level(self, seed, ops):
        # b1 > 64 exercises the multi-limb mirror/overlay paths.
        make = lambda kernel: MPCBF(
            4, 256, 4, g=2, n_max=10, seed=seed,
            word_overflow="saturate", kernel=kernel,
        )
        col, sca = make("columnar"), make("scalar")
        assert col.first_level_bits > 64
        _run_interleaving(col, sca, ops)


class TestMergeDifferential:
    @settings(max_examples=50, deadline=None)
    @given(
        st.sampled_from(["saturate", "raise"]),
        st.integers(0, 5),
        st.lists(st.integers(0, 39), min_size=0, max_size=40),
        st.lists(st.integers(0, 39), min_size=0, max_size=40),
    )
    def test_merge_matches_scalar(self, policy, seed, ids_a, ids_b):
        def build(kernel, ids):
            filt = MPCBF(
                8, 64, 3, g=1, n_max=5, seed=seed,
                word_overflow="saturate", kernel=kernel,
            )
            filt.insert_many(_keys(ids)) if ids else None
            filt.word_overflow = policy  # merge under the tested policy
            return filt

        col_a, col_b = build("columnar", ids_a), build("columnar", ids_b)
        sca_a, sca_b = build("scalar", ids_a), build("scalar", ids_b)
        _assert_state_equal(col_a, sca_a)
        _apply_both(col_a, sca_a, lambda f: f.merge(col_b if f is col_a else sca_b))
        probes = _keys(range(40))
        assert np.array_equal(col_a.query_many(probes), sca_a.query_many(probes))
        assert np.array_equal(col_a.count_many(probes), sca_a.count_many(probes))
        if policy == "saturate":
            col_a.check_invariants()
            sca_a.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 5),
        st.lists(st.integers(0, 39), min_size=1, max_size=30),
        st.lists(st.integers(0, 39), min_size=1, max_size=30),
    )
    def test_cross_kernel_merge(self, seed, ids_a, ids_b):
        # A columnar filter merging a *scalar* other (and vice versa)
        # must land on the same state as same-kernel merges.
        def build(kernel, ids):
            filt = MPCBF(
                8, 64, 3, g=1, n_max=5, seed=seed,
                word_overflow="saturate", kernel=kernel,
            )
            filt.insert_many(_keys(ids))
            return filt

        col = build("columnar", ids_a)
        col.merge(build("scalar", ids_b))
        sca = build("scalar", ids_a)
        sca.merge(build("columnar", ids_b))
        assert np.array_equal(col._mirror, sca._mirror)
        assert col._saturated == sca._saturated
        assert col.dump_level_state() == sca.dump_level_state()
        assert col.overflow_events == sca.overflow_events


class TestConversions:
    @settings(max_examples=30, deadline=None)
    @given(_GEOMETRY, st.lists(st.integers(0, 39), min_size=0, max_size=50))
    def test_round_trip_preserves_everything(self, geometry, ids):
        num_words, k, g, n_max, seed = geometry
        col = MPCBF(
            num_words, 64, k, g=g, n_max=n_max, seed=seed,
            word_overflow="saturate",
        )
        if ids:
            col.insert_many(_keys(ids))
        sca = col.to_scalar()
        assert sca.columns is None
        _assert_state_equal(col, sca)
        back = MPCBF.from_scalar(sca)
        assert back.columns is not None
        _assert_state_equal(back, sca)
        back.check_invariants()
        assert dump_filter(col) == dump_filter(sca) == dump_filter(back)


@pytest.mark.parametrize("kernel", ["columnar", "scalar"])
def test_kernel_constructor_validation(kernel):
    filt = MPCBF(4, 64, 3, n_max=4, kernel=kernel)
    assert filt.kernel == kernel
    with pytest.raises(Exception):
        MPCBF(4, 64, 3, n_max=4, kernel="simd")
