"""Table II — update overhead, k=3/4.

Regenerates the rows of the paper's table2 via
:func:`repro.bench.experiments.table2` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_table2(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.table2, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
