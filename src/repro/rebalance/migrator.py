"""Node-side migration engine: stream, fence, commit, excise.

One :class:`RebalanceState` lives inside every cluster node's server
and holds the node's installed :class:`~repro.rebalance.epochs.
RingEpoch`, its in-flight migration sessions, and the *gate* the
request path consults before every client operation.  All mutating
entry points run on the server's batcher worker thread (the server
dispatches them through ``batcher.run``), which is what makes a fence
a true barrier: the fence sequence is snapshotted on the same thread
that applies mutations, so no write can land "between" the fence and
its sequence.

Why streams carry WAL records, not filter bytes
-----------------------------------------------
Counting filters are key-oblivious: the counters give no way to
enumerate "the keys in this arc".  But CBF/MPCBF state is *linear* in
the applied key multiset — applying the same inserts and deletes in
any interleaving yields byte-identical counters, as long as no
per-key apply fails (saturation, under/overflow policies).  So a
range migration replays the source's WAL history *filtered to the
moving arcs* onto the destination, and excises the same multiset from
the source afterwards, leaving each node byte-identical to a
single-node oracle that only ever saw its own keys.  Workloads that
trip counter errors break the linearity argument (a skipped key on
one node but not the oracle); the engine applies per-key and skips
errors deterministically, and the acceptance tests pin byte-equality
for workloads below the error regime — the caveat is documented, not
hidden.

Migration applies are WAL records too (``MIG_INSERT``/``MIG_DELETE``):
``keys[0]`` is a header naming the originating plan and source
sequence, ``keys[1:]`` the real keys.  One record is one CRC unit, so
the destination's dedup cursor and the apply it covers are atomic
under crash-recovery, and replicas receive migrated keys through the
ordinary replication stream.  Source-side excision logs the same
record shape under ``<plan>:x`` headers, making it resumable: a
re-driven commit first scans for its own excision markers and skips
what already happened.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    ClusterError,
    ConfigurationError,
    MovedError,
    ReproError,
    WrongEpochError,
)
from repro.observability.logging import get_logger
from repro.observability.spans import spanned
from repro.rebalance.epochs import KeyRangeSet, RingEpoch, hash_key
from repro.service.protocol import Opcode, decode_ring_epoch_set, encode_ring_epoch_set

__all__ = [
    "RebalanceState",
    "encode_mig_header",
    "decode_mig_header",
    "mig_record_keys",
]

logger = get_logger("rebalance.migrator")

_SEQ = struct.Struct("<Q")
#: Mutation opcodes the gate screens (queries are screened separately).
_MUTATIONS = (Opcode.INSERT, Opcode.DELETE)
_MIG_OPS = (
    Opcode.MIG_INSERT,
    Opcode.MIG_DELETE,
    Opcode.MIG_INSERT64,
    Opcode.MIG_DELETE64,
)
#: Packed flavours: ``keys[1:]`` are 8-byte LE packings of u64 keys.
_MIG64_OPS = (Opcode.MIG_INSERT64, Opcode.MIG_DELETE64)


def encode_mig_header(src_seq: int, plan: str) -> bytes:
    """``keys[0]`` of a migration record: source sequence + plan id."""
    return _SEQ.pack(src_seq) + plan.encode("utf-8")


def decode_mig_header(blob: bytes) -> tuple[int, str]:
    """Inverse of :func:`encode_mig_header`."""
    if len(blob) < _SEQ.size:
        raise ConfigurationError("truncated migration record header")
    return _SEQ.unpack_from(blob)[0], blob[_SEQ.size :].decode("utf-8")


def mig_record_keys(record) -> "list[bytes] | np.ndarray":
    """The real keys of any WAL record (drops a MIG record's header).

    Columnar records (``BULK64_*``) return their u64 column as-is and
    the packed ``MIG_*64`` flavours decode back to one, so callers
    filter and re-stream pre-encoded keys without ever re-hashing.
    """
    keys = record.keys
    if isinstance(keys, np.ndarray):
        return keys
    keys = list(keys)
    if record.op in _MIG64_OPS:
        return np.frombuffer(b"".join(keys[1:]), dtype="<u8")
    return keys[1:] if record.op in _MIG_OPS else keys


def _record_insert_like(op: Opcode) -> bool:
    return op in (
        Opcode.INSERT,
        Opcode.MIG_INSERT,
        Opcode.BULK64_INSERT,
        Opcode.MIG_INSERT64,
    )


def _safe_name(plan: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", plan)


@dataclass
class _OutgoingSession:
    """Source side of one plan: ranges leaving this node."""

    plan: str
    ranges: KeyRangeSet
    fenced: bool = False
    fence_seq: int | None = None
    records_streamed: int = 0
    keys_streamed: int = 0
    _cursor: object = field(default=None, repr=False)
    _cursor_next: int = 0

    def describe(self) -> dict:
        return {
            "plan": self.plan,
            "role": "source",
            "ranges": self.ranges.describe(),
            "fenced": self.fenced,
            "fence_seq": self.fence_seq,
            "records_streamed": self.records_streamed,
            "keys_streamed": self.keys_streamed,
        }


@dataclass
class _IncomingSession:
    """Destination side of one plan: ranges arriving at this node."""

    plan: str
    cursor: int = 0
    records_applied: int = 0
    keys_applied: int = 0
    keys_skipped: int = 0

    def describe(self) -> dict:
        return {
            "plan": self.plan,
            "role": "destination",
            "cursor": self.cursor,
            "records_applied": self.records_applied,
            "keys_applied": self.keys_applied,
            "keys_skipped": self.keys_skipped,
        }


class RebalanceState:
    """Everything one node knows about live topology change.

    Parameters
    ----------
    filt:
        The hosted filter (mutated by applies and excision).
    wal:
        The node's :class:`~repro.cluster.wal.WriteAheadLog`; epoch and
        fence files persist alongside it.
    group:
        This node's shard-group name, when known at startup.  A node
        started without one learns it from the first epoch install —
        until then (or until an epoch is installed) the gate is inert,
        which is exactly the pre-cluster single-node behaviour.
    """

    def __init__(self, filt, *, wal=None, group: str | None = None) -> None:
        self.filter = filt
        self.wal = wal
        self.group = group
        self.epoch: RingEpoch | None = None
        #: Span sink (the server installs its ServiceMetrics).
        self.metrics = None
        self.counters = {
            "epoch_installs": 0,
            "records_streamed": 0,
            "keys_streamed": 0,
            "records_applied": 0,
            "keys_applied": 0,
            "keys_skipped": 0,
            "keys_excised": 0,
            "fences": 0,
            "commits": 0,
            "moved_rejections": 0,
            "wrong_epoch_rejections": 0,
        }
        self._outgoing: dict[str, _OutgoingSession] = {}
        self._incoming: dict[str, _IncomingSession] = {}
        if wal is not None:
            self._load_epoch()
            self._load_fences()

    # -- durable node-local state ----------------------------------------
    @property
    def _state_dir(self) -> Path:
        return Path(self.wal.directory)

    @property
    def _epoch_path(self) -> Path:
        return self._state_dir / "ring-epoch.bin"

    def _fence_path(self, plan: str) -> Path:
        return self._state_dir / f"fence-{_safe_name(plan)}.json"

    def _load_epoch(self) -> None:
        if not self._epoch_path.exists():
            return
        group, blob = decode_ring_epoch_set(self._epoch_path.read_bytes())
        self.epoch = RingEpoch.from_bytes(blob, source=str(self._epoch_path))
        self.group = group or self.group

    def _load_fences(self) -> None:
        """Re-arm fences that were durable at crash time.

        A fenced source that restarts *must not* accept writes into its
        fenced ranges: the coordinator may already have passed the
        epoch commit point, and a write accepted now would never reach
        the new owner — the acked-write-loss scenario the fence exists
        to prevent.
        """
        import json

        for path in sorted(self._state_dir.glob("fence-*.json")):
            doc = json.loads(path.read_text("utf-8"))
            self._outgoing[doc["plan"]] = _OutgoingSession(
                plan=doc["plan"],
                ranges=KeyRangeSet.from_json(doc["ranges"]),
                fenced=True,
                fence_seq=int(doc["fence_seq"]),
            )

    def _persist_epoch(self, group: str, blob: bytes) -> None:
        from repro.service.snapshot import _write_bytes_atomic

        _write_bytes_atomic(encode_ring_epoch_set(group, blob), self._epoch_path)

    # -- the gate --------------------------------------------------------
    def gate(self, op: Opcode, keys) -> None:
        """Screen one client request (on the batcher worker thread).

        Raises :class:`MovedError` for keys this node no longer owns
        under its installed epoch, and :class:`WrongEpochError` for
        mutations into a range that is fenced mid-migration.  Inert
        until both an epoch and a group identity are installed.
        """
        if self.epoch is None or self.group is None:
            return
        ring = self.epoch.ring()
        if op not in _MUTATIONS:
            for key in keys:
                if ring.owner_at(hash_key(key)) != self.group:
                    self.counters["moved_rejections"] += 1
                    raise MovedError(
                        f"key moved off group {self.group!r} "
                        f"(ring epoch v{self.epoch.version})"
                    )
            return
        fenced = [s for s in self._outgoing.values() if s.fenced]
        for key in keys:
            position = hash_key(key)
            if ring.owner_at(position) != self.group:
                self.counters["moved_rejections"] += 1
                raise MovedError(
                    f"key moved off group {self.group!r} "
                    f"(ring epoch v{self.epoch.version})"
                )
            for session in fenced:
                if session.ranges.contains(position):
                    self.counters["wrong_epoch_rejections"] += 1
                    raise WrongEpochError(
                        f"key range is fenced by migration {session.plan!r}; "
                        f"retry after the epoch bump"
                    )

    # -- epoch installs --------------------------------------------------
    def install_epoch(self, group: str, blob: bytes) -> dict:
        """Adopt an epoch (idempotent; stale versions are ignored)."""
        epoch = RingEpoch.from_bytes(blob)
        if self.epoch is not None and epoch.version < self.epoch.version:
            return self.describe()  # stale delivery from a slow coordinator
        self._persist_epoch(group, blob)
        self.epoch = epoch
        self.group = group
        self.counters["epoch_installs"] += 1
        logger.info(
            "ring_epoch_installed",
            extra={"version": epoch.version, "group": group},
        )
        return self.describe()

    def epoch_blob(self) -> bytes:
        if self.epoch is None:
            return b""
        return self.epoch.to_bytes()

    # -- source side -----------------------------------------------------
    def begin_source(self, plan: str, ranges: KeyRangeSet, start_seq: int) -> dict:
        """(Re-)open the source side of a plan.

        Requires the WAL to retain every record from ``start_seq`` on:
        migration is WAL replay, so a log compacted past the requested
        start cannot reproduce the arc's key multiset.  Re-beginning
        clears any previous fence for the plan — safe strictly before
        the epoch commit, because writes admitted now are still ahead
        of the fence the coordinator will take next.
        """
        if self.wal is None:
            raise ClusterError("this node has no WAL; it cannot migrate data")
        needed = max(1, start_seq)
        if self.wal.first_seq > needed:
            raise ClusterError(
                f"source WAL starts at seq {self.wal.first_seq} but the "
                f"migration needs history from seq {needed}; snapshot "
                f"compaction has discarded it (disable truncation on "
                f"nodes that must act as migration sources)"
            )
        self._fence_path(plan).unlink(missing_ok=True)
        self._outgoing[plan] = _OutgoingSession(plan=plan, ranges=ranges)
        return {"last_seq": self.wal.last_seq, "first_seq": self.wal.first_seq}

    @spanned("migration_stream")
    def read_records(
        self, plan: str, start_seq: int, max_records: int = 256
    ) -> tuple[int, int, list]:
        """Scan the WAL tail for records touching the plan's ranges.

        Returns ``(scanned_through, last_seq, records)`` where
        ``scanned_through`` advances over *examined* records (matching
        or not) so the coordinator's watermark always makes progress,
        and each record is ``(seq, op, in-range keys)`` — op
        ``INSERT``/``DELETE`` with byte keys for legacy history,
        ``BULK64_INSERT``/``BULK64_DELETE`` with a u64 column for
        columnar history (streamed pre-encoded, never re-hashed).
        """
        session = self._session_out(plan)
        if start_seq == session._cursor_next and session._cursor is not None:
            cursor = session._cursor
        else:
            cursor = None
        raw, cursor = self.wal.read(
            start_seq, cursor=cursor, max_records=max_records
        )
        session._cursor = cursor
        records: list = []
        scanned_through = start_seq - 1
        for record in raw:
            scanned_through = record.seq
            all_keys = mig_record_keys(record)
            keys = [
                key
                for key in all_keys
                if session.ranges.contains(hash_key(key))
            ]
            if not keys:
                continue
            insert_like = _record_insert_like(record.op)
            if isinstance(all_keys, np.ndarray):
                keys = np.asarray(keys, dtype=np.uint64)
                op = (
                    Opcode.BULK64_INSERT
                    if insert_like
                    else Opcode.BULK64_DELETE
                )
            else:
                op = Opcode.INSERT if insert_like else Opcode.DELETE
            records.append((record.seq, op, keys))
            session.records_streamed += 1
            session.keys_streamed += len(keys)
            self.counters["records_streamed"] += 1
            self.counters["keys_streamed"] += len(keys)
        session._cursor_next = scanned_through + 1
        return scanned_through, self.wal.last_seq, records

    def fence(self, plan: str) -> dict:
        """Stop admitting writes into the plan's ranges, durably.

        The fence sequence is the WAL head observed on the worker
        thread *after* the fence flag is set, so every record at or
        below it predates the fence and every later client write into
        the ranges is rejected.  The fence file survives a crash —
        a restarted source stays fenced until commit or re-begin.
        """
        import json

        session = self._session_out(plan)
        session.fenced = True
        session.fence_seq = self.wal.last_seq
        from repro.service.snapshot import _write_bytes_atomic

        _write_bytes_atomic(
            json.dumps(
                {
                    "plan": plan,
                    "ranges": session.ranges.describe(),
                    "fence_seq": session.fence_seq,
                },
                sort_keys=True,
            ).encode("utf-8"),
            self._fence_path(plan),
        )
        self.counters["fences"] += 1
        logger.info(
            "migration_fenced",
            extra={"plan": plan, "fence_seq": session.fence_seq},
        )
        return {"fence_seq": session.fence_seq}

    def commit_source(
        self,
        plan: str,
        group: str,
        epoch_blob: bytes,
        *,
        ranges: KeyRangeSet,
        excise_through: int,
    ) -> dict:
        """Finish a plan on its source: excise the moved multiset, adopt
        the committed epoch, drop the fence.

        Idempotent and sessionless on purpose — after a crash the
        coordinator re-delivers the commit with everything the node
        needs (ranges, excise bound, epoch), and the excision scan
        skips work its own ``<plan>:x`` markers prove already happened.
        """
        epoch = RingEpoch.from_bytes(epoch_blob)
        if self.epoch is not None and self.epoch.version >= epoch.version:
            # Commit already fully applied (install is the last step).
            self._fence_path(plan).unlink(missing_ok=True)
            self._outgoing.pop(plan, None)
            return self.describe()
        excised = self._excise(plan, ranges, excise_through)
        self.wal.sync()
        self.install_epoch(group, epoch_blob)
        self._fence_path(plan).unlink(missing_ok=True)
        self._outgoing.pop(plan, None)
        self.counters["commits"] += 1
        logger.info(
            "migration_committed",
            extra={
                "plan": plan,
                "role": "source",
                "keys_excised": excised,
                "epoch": epoch.version,
            },
        )
        return self.describe()

    def _excise(self, plan: str, ranges: KeyRangeSet, through: int) -> int:
        """Remove the streamed multiset's contribution from the filter.

        Replays history up to ``through``, applying the per-key inverse
        of every in-range application and logging each inversion as a
        ``<plan>:x`` migration record — so crash-recovery replay and a
        re-driven commit both converge on the same counters.
        """
        marker = plan + ":x"
        done_through = 0
        for record in self.wal.replay():
            if record.op in _MIG_OPS:
                src_seq, record_plan = decode_mig_header(record.keys[0])
                if record_plan == marker:
                    done_through = max(done_through, src_seq)
        excised = 0
        for record in self.wal.replay():
            if record.seq > through:
                break
            if record.seq <= done_through:
                continue
            all_keys = mig_record_keys(record)
            keys = [
                key
                for key in all_keys
                if ranges.contains(hash_key(key))
            ]
            if not keys:
                continue
            insert_like = _record_insert_like(record.op)
            header = encode_mig_header(record.seq, marker)
            if isinstance(all_keys, np.ndarray):
                arr = np.ascontiguousarray(keys, dtype="<u8")
                inverse_op = (
                    Opcode.MIG_DELETE64 if insert_like else Opcode.MIG_INSERT64
                )
                blob = arr.tobytes()
                self.wal.append(
                    inverse_op,
                    [header, *(blob[i : i + 8] for i in range(0, len(blob), 8))],
                )
                columns = [arr[i : i + 1] for i in range(arr.size)]
            else:
                inverse_op = (
                    Opcode.MIG_DELETE if insert_like else Opcode.MIG_INSERT
                )
                self.wal.append(inverse_op, [header, *keys])
                columns = [[key] for key in keys]
            for column in columns:
                try:
                    if insert_like:
                        self.filter.delete_many(column)
                    else:
                        self.filter.insert_many(column)
                except ReproError:
                    # Deterministic on replay; see module docstring.
                    pass
            excised += len(keys)
            self.counters["keys_excised"] += len(keys)
        return excised

    # -- destination side ------------------------------------------------
    def begin_destination(self, plan: str, group: str, epoch_blob: bytes) -> dict:
        """(Re-)open the destination side of a plan.

        Installs the pre-change epoch under this node's group name —
        for a joining node that epoch contains no arc it owns, so the
        gate rejects every client operation until the commit makes it
        an owner.  The dedup cursor recovers from the node's own WAL:
        the highest source sequence among this plan's migration
        records is exactly what has durably applied.
        """
        if self.wal is None:
            raise ClusterError("this node has no WAL; it cannot migrate data")
        if epoch_blob:
            self.install_epoch(group, epoch_blob)
        cursor = 0
        for record in self.wal.replay():
            if record.op not in _MIG_OPS:
                continue
            src_seq, record_plan = decode_mig_header(record.keys[0])
            if record_plan == plan:
                cursor = max(cursor, src_seq)
        self._incoming[plan] = _IncomingSession(plan=plan, cursor=cursor)
        return {"cursor": cursor}

    def apply_records(self, plan: str, records: list) -> dict:
        """Apply one streamed batch; durable before the ack.

        Each source record becomes one local migration record (header +
        keys, a single CRC unit) and applies per key — a key the filter
        rejects (e.g. saturation policy) is skipped, identically on
        every replay.  Columnar records (``BULK64_*`` ops, u64 columns)
        are logged as the packed ``MIG_*64`` flavours and applied as
        one-element columns, so the destination never re-encodes a
        pre-encoded key.  Records at or below the cursor are duplicates
        from a coordinator retry and are acknowledged without effect.
        """
        session = self._incoming.get(plan)
        if session is None:
            raise ClusterError(
                f"no migration session for plan {plan!r}; send MIGRATE_BEGIN"
            )
        applied = skipped = 0
        for src_seq, op, keys in records:
            if src_seq <= session.cursor:
                continue
            insert_like = _record_insert_like(op)
            header = encode_mig_header(src_seq, plan)
            if isinstance(keys, np.ndarray):
                arr = np.ascontiguousarray(keys, dtype="<u8")
                wal_op = (
                    Opcode.MIG_INSERT64
                    if insert_like
                    else Opcode.MIG_DELETE64
                )
                blob = arr.tobytes()
                self.wal.append(
                    wal_op,
                    [header, *(blob[i : i + 8] for i in range(0, len(blob), 8))],
                )
                columns = [arr[i : i + 1] for i in range(arr.size)]
            else:
                wal_op = (
                    Opcode.MIG_INSERT if insert_like else Opcode.MIG_DELETE
                )
                self.wal.append(wal_op, [header, *keys])
                columns = [[key] for key in keys]
            for column in columns:
                try:
                    if insert_like:
                        self.filter.insert_many(column)
                    else:
                        self.filter.delete_many(column)
                    applied += 1
                except ReproError:
                    skipped += 1
            session.cursor = src_seq
            session.records_applied += 1
            self.counters["records_applied"] += 1
        # Force durability regardless of fsync policy: the coordinator
        # advances its scan watermark on this ack and will never
        # re-send these records.
        self.wal.sync()
        session.keys_applied += applied
        session.keys_skipped += skipped
        self.counters["keys_applied"] += applied
        self.counters["keys_skipped"] += skipped
        return {"cursor": session.cursor, "applied": applied, "skipped": skipped}

    def commit_destination(self, plan: str, group: str, epoch_blob: bytes) -> dict:
        """Finish a plan on its destination: adopt the committed epoch."""
        self.install_epoch(group, epoch_blob)
        self._incoming.pop(plan, None)
        self.counters["commits"] += 1
        logger.info(
            "migration_committed",
            extra={"plan": plan, "role": "destination"},
        )
        return self.describe()

    # -- introspection ---------------------------------------------------
    def _session_out(self, plan: str) -> _OutgoingSession:
        session = self._outgoing.get(plan)
        if session is None:
            raise ClusterError(
                f"no migration session for plan {plan!r}; send MIGRATE_BEGIN"
            )
        return session

    def holds_wal(self) -> bool:
        """True while WAL history must survive snapshot compaction."""
        return bool(self._outgoing)

    def describe(self) -> dict:
        return {
            "group": self.group,
            "epoch_version": None if self.epoch is None else self.epoch.version,
            "outgoing": [s.describe() for s in self._outgoing.values()],
            "incoming": [s.describe() for s in self._incoming.values()],
            "counters": dict(self.counters),
        }
