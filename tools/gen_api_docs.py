#!/usr/bin/env python3
"""Generate docs/api.md from the package's docstrings.

A dependency-free API reference: walks ``repro``'s public surface
(everything in each module's ``__all__``), pulls signatures via
``inspect``, and emits one Markdown section per module.  Run after any
public-API change::

    python tools/gen_api_docs.py

The output is committed (docs/api.md) so the reference is readable
without executing anything.  CI runs ``--check``, which regenerates in
memory, diffs against the committed file, and exits non-zero on drift —
so the reference cannot silently fall behind the code.  ``--check``
also enforces docs *coverage*: every public module under ``src/repro/``
must be listed in :data:`MODULES` (= have a docs/api.md section) and
carry a module docstring, so a new subsystem cannot land undocumented.
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import inspect
import sys
from pathlib import Path

MODULES = [
    "repro",
    "repro.errors",
    "repro.hashing",
    "repro.hashing.mixers",
    "repro.hashing.encoders",
    "repro.hashing.families",
    "repro.hashing.tabulation",
    "repro.hashing.bit_budget",
    "repro.memmodel",
    "repro.memmodel.accounting",
    "repro.memmodel.memory",
    "repro.memmodel.packed",
    "repro.memmodel.banked",
    "repro.memmodel.pipeline",
    "repro.filters",
    "repro.filters.base",
    "repro.filters.bloom",
    "repro.filters.one_access",
    "repro.filters.cbf",
    "repro.filters.pcbf",
    "repro.filters.hcbf_word",
    "repro.filters.mpcbf",
    "repro.filters.dlcbf",
    "repro.filters.vicbf",
    "repro.filters.spectral",
    "repro.filters.factory",
    "repro.kernels",
    "repro.kernels.columnar",
    "repro.kernels.grouped",
    "repro.kernels.shmem",
    "repro.analysis",
    "repro.analysis.fpr",
    "repro.analysis.overflow",
    "repro.analysis.optimal",
    "repro.analysis.heuristics",
    "repro.analysis.bandwidth",
    "repro.analysis.tradeoffs",
    "repro.analysis.saturation",
    "repro.workloads",
    "repro.workloads.synthetic",
    "repro.workloads.traces",
    "repro.workloads.patents",
    "repro.workloads.runner",
    "repro.workloads.churn",
    "repro.workloads.adversarial",
    "repro.mapreduce",
    "repro.mapreduce.engine",
    "repro.mapreduce.cache",
    "repro.mapreduce.cost",
    "repro.mapreduce.join",
    "repro.parallel",
    "repro.parallel.sharded",
    "repro.apps",
    "repro.apps.lpm",
    "repro.apps.flow_measurement",
    "repro.apps.classifier",
    "repro.serialize",
    "repro.service",
    "repro.service.protocol",
    "repro.service.batching",
    "repro.service.server",
    "repro.service.client",
    "repro.service.metrics",
    "repro.service.snapshot",
    "repro.service.storage",
    "repro.service.transport",
    "repro.overload",
    "repro.overload.deadline",
    "repro.overload.admission",
    "repro.overload.breaker",
    "repro.cluster",
    "repro.cluster.wal",
    "repro.cluster.replication",
    "repro.cluster.node",
    "repro.cluster.router",
    "repro.cluster.cluster_client",
    "repro.chaos",
    "repro.chaos.clock",
    "repro.chaos.network",
    "repro.chaos.storage",
    "repro.chaos.schedule",
    "repro.chaos.runner",
    "repro.rebalance",
    "repro.rebalance.epochs",
    "repro.rebalance.migrator",
    "repro.rebalance.coordinator",
    "repro.observability",
    "repro.observability.prometheus",
    "repro.observability.httpd",
    "repro.observability.logging",
    "repro.observability.spans",
    "repro.bench",
    "repro.bench.experiments",
    "repro.bench.ablations",
    "repro.bench.reporting",
    "repro.bench.export",
    "repro.bench.scale",
    "repro.cli",
]


def discover_public_modules() -> list[str]:
    """Every importable public module under ``src/repro/``.

    A module is public unless any dotted-path component starts with an
    underscore (``repro.bench.__main__`` is an entry point, not API).
    """
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    names = []
    for path in sorted(src.rglob("*.py")):
        parts = list(path.relative_to(src.parent).with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if any(part.startswith("_") for part in parts):
            continue
        names.append(".".join(parts))
    return names


def coverage_errors() -> list[str]:
    """The docs-coverage gate: every public module is documented.

    Two ways a module fails: it is not listed in :data:`MODULES` (so
    docs/api.md has no section for it — new subsystems must opt in
    here), or it has no module docstring (so its section would say
    nothing).
    """
    errors = []
    listed = set(MODULES)
    for name in discover_public_modules():
        module = importlib.import_module(name)
        if name not in listed:
            errors.append(
                f"{name}: not in tools/gen_api_docs.py MODULES — "
                f"docs/api.md has no section for it"
            )
        if not (module.__doc__ or "").strip():
            errors.append(f"{name}: missing module docstring")
    return errors


def _first_paragraph(doc: str | None) -> str:
    if not doc:
        return "(undocumented)"
    return inspect.cleandoc(doc).split("\n\n")[0].replace("\n", " ")


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(cls) -> list[str]:
    lines = [f"#### class `{cls.__name__}`", "", _first_paragraph(cls.__doc__), ""]
    methods = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            methods.append(f"- `.{name}` (property) — {_first_paragraph(member.__doc__)}")
        elif inspect.isfunction(member):
            methods.append(
                f"- `.{name}{_signature(member)}` — {_first_paragraph(member.__doc__)}"
            )
        elif isinstance(member, staticmethod):
            fn = member.__func__
            methods.append(
                f"- `.{name}{_signature(fn)}` (static) — {_first_paragraph(fn.__doc__)}"
            )
    if methods:
        lines += methods + [""]
    return lines


def generate() -> str:
    out = [
        "# API reference",
        "",
        "Generated by `tools/gen_api_docs.py` — do not edit by hand.",
        "",
    ]
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        out.append(f"## `{module_name}`")
        out.append("")
        out.append(_first_paragraph(module.__doc__))
        out.append("")
        public = list(getattr(module, "__all__", []))
        for name in public:
            obj = getattr(module, name, None)
            if obj is None:
                continue
            # Skip re-exports documented at their home module.
            home = getattr(obj, "__module__", module_name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if home != module_name:
                    continue
            if inspect.isclass(obj):
                out += _describe_class(obj)
            elif inspect.isfunction(obj):
                out.append(
                    f"#### `{name}{_signature(obj)}`"
                )
                out.append("")
                out.append(_first_paragraph(obj.__doc__))
                out.append("")
            else:
                out.append(f"- `{name}` — {type(obj).__name__}")
        out.append("")
    return "\n".join(out)


def check(target: Path) -> int:
    """Exit 0 iff the reference is complete and matches a fresh build."""
    gaps = coverage_errors()
    if gaps:
        for gap in gaps:
            print(f"docs coverage: {gap}", file=sys.stderr)
        return 1
    fresh = generate()
    committed = target.read_text() if target.exists() else ""
    if committed == fresh:
        print(f"{target} is up to date")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        fresh.splitlines(keepends=True),
        fromfile=str(target),
        tofile="generated",
    )
    sys.stdout.writelines(diff)
    print(
        f"\n{target} is stale — run `python tools/gen_api_docs.py` "
        "and commit the result",
        file=sys.stderr,
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="diff against the committed docs/api.md; exit 1 on drift",
    )
    args = parser.parse_args(argv)
    target = Path(__file__).resolve().parent.parent / "docs" / "api.md"
    if args.check:
        return check(target)
    target.parent.mkdir(exist_ok=True)
    target.write_text(generate())
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
