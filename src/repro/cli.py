"""Command-line interface: build, query, plan, and benchmark filters.

Usage (also installed as the ``repro`` console script)::

    repro build --variant MPCBF-1 --memory-kb 64 --k 3 \
                --keys keys.txt --out filter.mpcbf
    repro query --filter filter.mpcbf --keys probes.txt
    repro plan --n 100000 --target-fpr 1e-4
    repro bench fig7 table4
    repro workload synthetic --members 10000 --out keys.txt
    repro serve --variant MPCBF-1 --memory-kb 64 --shards 4 --port 7757 \
                --metrics-port 9464 --log-json
    repro client query --port 7757 alice bob
    repro client stats --port 7757 --watch
    repro metrics-dump --port 9464
    repro cluster serve --wal-dir wal/a0 --port 7801 \
                --replica 127.0.0.1:7802 --ack-mode quorum
    repro cluster serve --wal-dir wal/a1 --port 7802 --read-only
    repro cluster route --group a=127.0.0.1:7801,127.0.0.1:7802 --port 7700
    repro cluster status --group a=127.0.0.1:7801,127.0.0.1:7802
    repro cluster init --state-dir ring --group a=127.0.0.1:7801
    repro cluster join --state-dir ring --group b=127.0.0.1:7803
    repro cluster drain --state-dir ring --group b
    repro cluster rebalance-status --state-dir ring
    repro chaos run --seed 42 --steps 120 --nodes 3
    repro chaos run --sweep 200 --steps 60 --artifacts-dir chaos-artifacts

Key files are plain text, one key per line (encoded as UTF-8 bytes).
Filters serialise through :mod:`repro.serialize`, so a built filter can
be shipped to another process or machine — e.g. as a DistributedCache
payload.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

from repro.analysis.tradeoffs import cbf_bits_for_fpr, cheapest_design
from repro.bench.scale import current_scale
from repro.errors import ReproError
from repro.filters.factory import FilterSpec, build_filter
from repro.serialize import dump_filter, load_filter

__all__ = ["main", "build_parser"]


def _read_keys(path: str) -> list[bytes]:
    """Read one key per line, streaming (key files can be huge)."""
    keys: list[bytes] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            stripped = line.rstrip("\r\n")
            if stripped:
                keys.append(stripped.encode("utf-8"))
    return keys


def _cmd_build(args: argparse.Namespace) -> int:
    keys = _read_keys(args.keys)
    spec = FilterSpec(
        variant=args.variant,
        memory_bits=args.memory_kb * 8192,
        k=args.k,
        word_bits=args.word_bits,
        capacity=args.capacity or len(keys),
        seed=args.seed,
        extra=(
            {"word_overflow": args.word_overflow}
            if args.variant.startswith("MPCBF")
            else {}
        ),
    )
    filt = build_filter(spec)
    filt.insert_many(keys)
    blob = dump_filter(filt)
    Path(args.out).write_bytes(blob)
    print(
        f"built {filt.name}: {len(keys)} keys, {filt.total_bits // 8192} KiB "
        f"logical, {len(blob)} bytes serialised -> {args.out}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    filt = load_filter(Path(args.filter).read_bytes())
    keys = _read_keys(args.keys)
    answers = filt.query_many(keys)
    positives = int(answers.sum())
    if args.verbose:
        for key, ans in zip(keys, answers):
            print(f"{key.decode('utf-8', 'replace')}\t{'maybe' if ans else 'no'}")
    print(
        f"{filt.name}: {positives}/{len(keys)} keys possibly present "
        f"({filt.stats.query.mean_accesses:.2f} accesses/query)"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    design = cheapest_design(
        args.n,
        args.target_fpr,
        word_bits=args.word_bits,
        max_accesses=args.max_accesses,
    )
    print(
        f"cheapest MPCBF-{design.g}: {design.bits_per_element:.0f} bits/elem "
        f"({design.memory_bits // 8192} KiB), k={design.k}, "
        f"b1={design.first_level_bits}, n_max={design.n_max}, "
        f"fpr={design.fpr:.2e}, P(overflow)={design.overflow_probability:.2e}"
    )
    try:
        cbf_bpe, cbf_k = cbf_bits_for_fpr(args.n, args.target_fpr)
        print(
            f"standard CBF needs {cbf_bpe:.0f} bits/elem at k={cbf_k} "
            f"({cbf_k} memory accesses/query vs {design.g})"
        )
    except ReproError as exc:
        print(f"standard CBF: {exc}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(args.experiments)


def _cmd_workload(args: argparse.Namespace) -> int:
    rng_seed = args.seed
    if args.kind == "synthetic":
        from repro.workloads.synthetic import random_strings

        rng = np.random.default_rng(rng_seed)
        keys = random_strings(args.members, length=args.length, rng=rng)
        Path(args.out).write_text(
            "\n".join(k.decode("ascii") for k in keys) + "\n"
        )
        print(f"wrote {len(keys)} synthetic keys -> {args.out}")
        return 0
    if args.kind == "trace":
        from repro.workloads.traces import make_trace_workload

        trace = make_trace_workload(
            n_unique=args.members,
            n_observations=args.members * 19,
            n_inserted=max(1, int(args.members * 0.68)),
            seed=rng_seed,
        )
        flows = trace.flows[trace.stream]
        lines = [f"{src}.{dst}" for src, dst in flows[: args.members * 19]]
        Path(args.out).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} trace observations -> {args.out}")
        return 0
    raise ReproError(f"unknown workload kind {args.kind!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.parallel.sharded import ShardedFilterBank
    from repro.service.server import serve
    from repro.service.snapshot import load_snapshot

    if args.log_json:
        import logging

        from repro.observability.logging import configure_json_logging

        configure_json_logging(
            level=logging.DEBUG if args.log_level == "debug" else logging.INFO
        )
    if args.restore:
        try:
            filt = load_snapshot(args.restore)
        except OSError as exc:
            raise ReproError(f"cannot restore from {args.restore}: {exc}")
        print(f"restored {filt.name} from {args.restore}")
    else:
        memory_bits = args.memory_kb * 8192
        # MPCBF sizing needs a capacity for the Eq. 11 n_max heuristic;
        # ~12 bits/element is the paper's operating range.
        capacity = args.capacity or max(1, memory_bits // 12)
        spec = FilterSpec(
            variant=args.variant,
            memory_bits=memory_bits,
            k=args.k,
            word_bits=args.word_bits,
            capacity=capacity,
            seed=args.seed,
            extra=(
                # A long-lived daemon keeps serving through word
                # saturation instead of dying (see build_suite).
                {"word_overflow": "saturate"}
                if args.variant.startswith("MPCBF")
                else {}
            ),
        )
        if args.shards > 1:
            filt = ShardedFilterBank(spec, args.shards)
        else:
            filt = build_filter(spec)
    if args.keys:
        preload = _read_keys(args.keys)
        filt.insert_many(preload)
        print(f"preloaded {len(preload)} keys into {filt.name}")
    asyncio.run(
        serve(
            filt,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            fuse_mutations=args.fuse_mutations,
            snapshot_path=args.snapshot,
            snapshot_interval_s=args.snapshot_interval,
            metrics_port=args.metrics_port,
            max_inflight=args.max_inflight,
            admission_rate=args.admission_rate,
            admission_burst=args.admission_burst,
            deadline_default_s=args.deadline_default,
        )
    )
    return 0


def _configure_serve_logging(args: argparse.Namespace) -> None:
    if args.log_json:
        import logging

        from repro.observability.logging import configure_json_logging

        configure_json_logging(
            level=logging.DEBUG if args.log_level == "debug" else logging.INFO
        )


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster.node import serve_node
    from repro.parallel.sharded import ShardedFilterBank

    _configure_serve_logging(args)
    memory_bits = args.memory_kb * 8192
    capacity = args.capacity or max(1, memory_bits // 12)
    spec = FilterSpec(
        variant=args.variant,
        memory_bits=memory_bits,
        k=args.k,
        word_bits=args.word_bits,
        capacity=capacity,
        seed=args.seed,
        extra=(
            {"word_overflow": "saturate"}
            if args.variant.startswith("MPCBF")
            else {}
        ),
    )

    def build():
        if args.shards > 1:
            return ShardedFilterBank(spec, args.shards)
        return build_filter(spec)

    replicas = []
    for spec_str in args.replica:
        host, _, port = spec_str.rpartition(":")
        if not host:
            raise ReproError(f"--replica {spec_str!r} is not HOST:PORT")
        replicas.append((host, int(port)))
    asyncio.run(
        serve_node(
            build,
            wal_dir=args.wal_dir,
            snapshot_path=args.snapshot,
            fsync=args.fsync,
            host=args.host,
            port=args.port,
            replicas=replicas,
            ack_mode=args.ack_mode,
            read_only=args.read_only,
            group=args.group,
            snapshot_interval_s=args.snapshot_interval,
            metrics_port=args.metrics_port,
            max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            quorum_timeout_s=args.quorum_timeout,
            max_inflight=args.max_inflight,
            admission_rate=args.admission_rate,
            admission_burst=args.admission_burst,
            deadline_default_s=args.deadline_default,
        )
    )
    return 0


def _cmd_cluster_route(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster.router import (
        HashRing,
        HealthChecker,
        RouterBackend,
        parse_group,
    )
    from repro.service.server import serve

    _configure_serve_logging(args)
    groups = [parse_group(spec) for spec in args.group]
    ring = HashRing(groups, vnodes=args.vnodes)
    health = HealthChecker(
        [node for group in groups for node in group.nodes],
        interval_s=args.health_interval,
    )
    health.start()
    backend = RouterBackend(ring, health=health, timeout_s=args.timeout)
    try:
        asyncio.run(
            serve(
                backend,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                max_delay_us=args.max_delay_us,
                metrics_port=args.metrics_port,
            )
        )
    finally:
        health.stop()
        backend.close()
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.cluster.cluster_client import ClusterClient

    with ClusterClient(
        args.group,
        vnodes=args.vnodes,
        timeout_s=args.timeout,
        check_health=True,
    ) as client:
        import json as _json

        print(_json.dumps(client.status(), indent=2, sort_keys=True))
    return 0


def _cmd_cluster_init(args: argparse.Namespace) -> int:
    from repro.cluster.router import parse_group
    from repro.rebalance import Coordinator

    with Coordinator(args.state_dir, timeout_s=args.timeout) as coord:
        epoch = coord.bootstrap(
            [parse_group(spec) for spec in args.group], vnodes=args.vnodes
        )
    print(
        f"bootstrapped ring epoch v{epoch.version}: "
        f"groups {', '.join(epoch.group_names())}, {epoch.vnodes} vnodes each"
    )
    return 0


def _cmd_cluster_join(args: argparse.Namespace) -> int:
    from repro.cluster.router import parse_group
    from repro.rebalance import Coordinator

    with Coordinator(
        args.state_dir,
        timeout_s=args.timeout,
        catchup_lag=args.catchup_lag,
    ) as coord:
        plan = coord.plan_join(parse_group(args.group))
        plan = coord.execute(plan)
    print(
        f"join complete: ring epoch v{plan['epoch_from']} -> "
        f"v{plan['epoch_to']}, {len(plan['sessions'])} migration "
        f"session(s) OWNED"
    )
    return 0


def _cmd_cluster_drain(args: argparse.Namespace) -> int:
    from repro.rebalance import Coordinator

    with Coordinator(
        args.state_dir,
        timeout_s=args.timeout,
        catchup_lag=args.catchup_lag,
    ) as coord:
        plan = coord.plan_drain(args.group)
        plan = coord.execute(plan)
    print(
        f"drain complete: ring epoch v{plan['epoch_from']} -> "
        f"v{plan['epoch_to']}, {len(plan['sessions'])} migration "
        f"session(s) OWNED"
    )
    return 0


def _cmd_cluster_rebalance_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.rebalance import Coordinator

    with Coordinator(args.state_dir) as coord:
        print(_json.dumps(coord.status(), indent=2, sort_keys=True))
    return 0


def _render_stats_watch(stats: dict) -> str:
    """Compact one-screen view of the STATS document for --watch."""
    lines = [
        f"uptime {stats.get('uptime_s', 0.0):8.1f}s   "
        f"connections {stats.get('connections', {}).get('active', 0)} active / "
        f"{stats.get('connections', {}).get('opened', 0)} opened   "
        f"bytes in/out {stats.get('bytes_in', 0)}/{stats.get('bytes_out', 0)}"
    ]
    ops = stats.get("ops", {})
    if ops:
        lines.append(
            "ops  " + "  ".join(f"{op}={n}" for op, n in sorted(ops.items()))
        )
    errors = stats.get("errors", {})
    if errors:
        lines.append(
            "errs " + "  ".join(f"{c}={n}" for c, n in sorted(errors.items()))
        )
    coal = stats.get("coalescing", {})
    if coal:
        lines.append(
            f"coalescing  dispatches={coal.get('dispatches', 0)}  "
            f"mean_requests={coal.get('mean_batch_requests', 0.0):.2f}  "
            f"mean_keys={coal.get('mean_batch_keys', 0.0):.1f}"
        )
    for op, hist in sorted(stats.get("latency_us", {}).items()):
        lines.append(
            f"lat[{op}]  p50={hist['p50']:.0f}us  p95={hist['p95']:.0f}us  "
            f"p99={hist['p99']:.0f}us  max={hist['max']:.0f}us  "
            f"n={hist['count']:.0f}"
        )
    for name, hist in sorted(stats.get("spans_us", {}).items()):
        lines.append(
            f"span[{name}]  p50={hist['p50']:.0f}us  p99={hist['p99']:.0f}us  "
            f"n={hist['count']:.0f}"
        )
    filt = stats.get("filter")
    if filt:
        access = filt.get("access_stats", {}).get("query", {})
        lines.append(
            f"filter {filt.get('name')}  bits={filt.get('total_bits')}  "
            f"queries={access.get('operations', 0):.0f}  "
            f"accesses/query={access.get('mean_accesses', 0.0):.2f}"
        )
    return "\n".join(lines)


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    import json as _json
    import time

    from repro.chaos.runner import run_seed

    seeds = (
        range(args.start_seed, args.start_seed + args.sweep)
        if args.sweep
        else [args.seed]
    )
    started = time.monotonic()
    failures = 0
    for seed in seeds:
        report = run_seed(
            seed,
            steps=args.steps,
            nodes=args.nodes,
            shrink=not args.no_shrink,
        )
        if args.json:
            print(_json.dumps(report, sort_keys=True))
        elif report["ok"]:
            print(
                f"seed {seed}: ok  "
                f"(events={report['events']} seq={report['final_seq']} "
                f"digest={report['schedule_digest'][:12]})"
            )
        else:
            print(f"seed {seed}: FAIL  {report['violations']}")
        if not report["ok"]:
            failures += 1
            if args.artifacts_dir and "minimal_schedule" in report:
                art_dir = Path(args.artifacts_dir)
                art_dir.mkdir(parents=True, exist_ok=True)
                out = art_dir / f"chaos-minimal-{seed}.json"
                out.write_text(report["minimal_schedule"] + "\n")
                print(f"seed {seed}: minimal failing schedule -> {out}")
    if args.sweep:
        elapsed = time.monotonic() - started
        print(
            f"sweep: {len(seeds) - failures}/{len(seeds)} seeds ok "
            f"in {elapsed:.1f}s"
        )
    return 1 if failures else 0


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    """Fetch and print a /metrics exposition from a running daemon."""
    from urllib.error import URLError
    from urllib.request import urlopen

    url = f"http://{args.host}:{args.port}/metrics"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            sys.stdout.write(response.read().decode("utf-8"))
    except (URLError, OSError) as exc:
        raise ReproError(f"cannot scrape {url}: {exc}")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import FilterClient

    keys: list[bytes] = [key.encode("utf-8") for key in args.key]
    if args.keys:
        keys.extend(_read_keys(args.keys))
    if args.action in ("insert", "query", "delete") and not keys:
        raise ReproError(f"{args.action} needs keys (positional or --keys FILE)")
    with FilterClient(args.host, args.port, timeout_s=args.timeout) as client:
        if args.action == "ping":
            client.ping()
            print("pong")
        elif args.action == "insert":
            client.insert_many(keys)
            print(f"inserted {len(keys)} keys")
        elif args.action == "delete":
            client.delete_many(keys)
            print(f"deleted {len(keys)} keys")
        elif args.action == "query":
            answers = client.query_many(keys)
            for key, ans in zip(keys, answers):
                print(
                    f"{key.decode('utf-8', 'replace')}\t"
                    f"{'maybe' if ans else 'no'}"
                )
            print(f"{sum(answers)}/{len(keys)} keys possibly present")
        elif args.action == "stats":
            if args.watch:
                import time as _time

                # Alternate screen, restored in the finally: Ctrl-C
                # must hand the terminal back (scrollback intact) and
                # exit 0 — interrupting a watch is the normal way out.
                sys.stdout.write("\x1b[?1049h")
                sys.stdout.flush()
                try:
                    while True:
                        stats = client.stats()
                        print(f"\x1b[2J\x1b[H{_render_stats_watch(stats)}", flush=True)
                        _time.sleep(args.interval)
                except KeyboardInterrupt:
                    pass
                finally:
                    sys.stdout.write("\x1b[?1049l")
                    sys.stdout.flush()
            else:
                print(_json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "snapshot":
            report = client.snapshot()
            print(f"snapshot: {report['bytes']} bytes -> {report['path']}")
    return 0


def _add_overload_flags(parser: argparse.ArgumentParser) -> None:
    """Admission-control knobs shared by ``serve`` and ``cluster serve``."""
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="bound on concurrently admitted keyed requests; excess "
        "requests are shed with OVERLOADED + a retry-after hint",
    )
    parser.add_argument(
        "--admission-rate", type=float, default=None,
        help="token-bucket refill rate (cost units/second; mutations "
        "cost more than queries — see repro.overload.DEFAULT_COSTS)",
    )
    parser.add_argument(
        "--admission-burst", type=float, default=None,
        help="token-bucket burst capacity (defaults to one second of "
        "--admission-rate)",
    )
    parser.add_argument(
        "--deadline-default", type=float, default=None,
        help="default per-request deadline in seconds for clients that "
        "do not send a DEADLINE frame",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPCBF (IPDPS 2013) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build and serialise a filter")
    p_build.add_argument("--variant", default="MPCBF-1")
    p_build.add_argument("--memory-kb", type=int, default=64)
    p_build.add_argument("--k", type=int, default=3)
    p_build.add_argument("--word-bits", type=int, default=64)
    p_build.add_argument("--capacity", type=int, default=None)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument(
        "--word-overflow", choices=["raise", "saturate"], default="saturate"
    )
    p_build.add_argument("--keys", required=True, help="text file, 1 key/line")
    p_build.add_argument("--out", required=True)
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="query keys against a filter")
    p_query.add_argument("--filter", required=True)
    p_query.add_argument("--keys", required=True)
    p_query.add_argument("--verbose", action="store_true")
    p_query.set_defaults(func=_cmd_query)

    p_plan = sub.add_parser("plan", help="capacity-plan an MPCBF")
    p_plan.add_argument("--n", type=int, required=True)
    p_plan.add_argument("--target-fpr", type=float, required=True)
    p_plan.add_argument("--word-bits", type=int, default=64)
    p_plan.add_argument("--max-accesses", type=int, default=3)
    p_plan.set_defaults(func=_cmd_plan)

    p_bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    p_bench.add_argument("experiments", nargs="*", help="e.g. fig7 table4")
    p_bench.set_defaults(func=_cmd_bench)

    p_work = sub.add_parser("workload", help="generate workload files")
    p_work.add_argument("kind", choices=["synthetic", "trace"])
    p_work.add_argument("--members", type=int, default=10_000)
    p_work.add_argument("--length", type=int, default=5)
    p_work.add_argument("--seed", type=int, default=0)
    p_work.add_argument("--out", required=True)
    p_work.set_defaults(func=_cmd_workload)

    p_serve = sub.add_parser("serve", help="run the filter-serving daemon")
    p_serve.add_argument("--variant", default="MPCBF-1")
    p_serve.add_argument("--memory-kb", type=int, default=64)
    p_serve.add_argument("--k", type=int, default=3)
    p_serve.add_argument("--word-bits", type=int, default=64)
    p_serve.add_argument("--capacity", type=int, default=None)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="host a ShardedFilterBank of this many shards",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7757, help="0 picks an ephemeral port"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=512,
        help="max keys coalesced into one bulk dispatch",
    )
    p_serve.add_argument(
        "--max-delay-us", type=float, default=200.0,
        help="max added latency while coalescing (0 disables)",
    )
    p_serve.add_argument(
        "--fuse-mutations", action="store_true",
        help="fuse INSERT/DELETE batches across requests "
        "(whole-batch error frames on failure)",
    )
    p_serve.add_argument(
        "--snapshot", default=None, help="snapshot file path (enables SNAPSHOT op)"
    )
    p_serve.add_argument(
        "--snapshot-interval", type=float, default=None,
        help="periodic snapshot interval in seconds",
    )
    p_serve.add_argument(
        "--restore", metavar="PATH", default=None,
        help="restore the filter from a snapshot file instead of building",
    )
    p_serve.add_argument(
        "--keys", default=None, help="preload keys from a file before serving"
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus /metrics + /healthz on this port (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs (one object per line) to stderr",
    )
    p_serve.add_argument(
        "--log-level", choices=["info", "debug"], default="info",
        help="JSON log verbosity (debug includes per-request events)",
    )
    _add_overload_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser("client", help="talk to a running daemon")
    p_client.add_argument(
        "action",
        choices=["ping", "insert", "query", "delete", "stats", "snapshot"],
    )
    # argparse consumes positionals in one contiguous block: keys must
    # directly follow the action (`repro client query a b --port 7757`).
    p_client.add_argument("key", nargs="*", help="keys for insert/query/delete")
    p_client.add_argument("--keys", default=None, help="read keys from a file")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7757)
    p_client.add_argument("--timeout", type=float, default=10.0)
    p_client.add_argument(
        "--watch", action="store_true",
        help="with 'stats': refresh a compact live view until Ctrl-C",
    )
    p_client.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch, seconds",
    )
    p_client.set_defaults(func=_cmd_client)

    p_cluster = sub.add_parser(
        "cluster", help="WAL-durable nodes, replication, and routing"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_cnode = cluster_sub.add_parser(
        "serve", help="run one durable cluster node (primary or replica)"
    )
    p_cnode.add_argument("--variant", default="MPCBF-1")
    p_cnode.add_argument("--memory-kb", type=int, default=64)
    p_cnode.add_argument("--k", type=int, default=3)
    p_cnode.add_argument("--word-bits", type=int, default=64)
    p_cnode.add_argument("--capacity", type=int, default=None)
    p_cnode.add_argument("--seed", type=int, default=0)
    p_cnode.add_argument("--shards", type=int, default=1)
    p_cnode.add_argument("--host", default="127.0.0.1")
    p_cnode.add_argument("--port", type=int, default=7801)
    p_cnode.add_argument(
        "--wal-dir", required=True, help="write-ahead log directory"
    )
    p_cnode.add_argument(
        "--fsync", choices=["always", "batch", "interval", "never"],
        default="batch", help="WAL fsync policy",
    )
    p_cnode.add_argument(
        "--snapshot", default=None,
        help="snapshot path; dumps compact the WAL behind them",
    )
    p_cnode.add_argument("--snapshot-interval", type=float, default=None)
    p_cnode.add_argument(
        "--replica", action="append", default=[], metavar="HOST:PORT",
        help="stream the WAL to this replica (repeatable; makes this node "
        "a primary)",
    )
    p_cnode.add_argument(
        "--ack-mode", choices=["async", "quorum"], default="async",
        help="when to acknowledge mutations (quorum = majority of "
        "primary+replicas holds the record)",
    )
    p_cnode.add_argument(
        "--quorum-timeout", type=float, default=5.0,
        help="seconds a quorum-mode ack may wait",
    )
    p_cnode.add_argument(
        "--read-only", action="store_true",
        help="replica role: reject client writes, accept replicated ones",
    )
    p_cnode.add_argument(
        "--group", default=None,
        help="shard-group name this node belongs to; enables epoch "
        "fencing during repro cluster join/drain migrations",
    )
    p_cnode.add_argument("--max-batch", type=int, default=512)
    p_cnode.add_argument("--max-delay-us", type=float, default=200.0)
    p_cnode.add_argument("--metrics-port", type=int, default=None)
    p_cnode.add_argument("--log-json", action="store_true")
    p_cnode.add_argument(
        "--log-level", choices=["info", "debug"], default="info"
    )
    _add_overload_flags(p_cnode)
    p_cnode.set_defaults(func=_cmd_cluster_serve)

    p_croute = cluster_sub.add_parser(
        "route", help="run the consistent-hash router daemon"
    )
    p_croute.add_argument(
        "--group", action="append", required=True,
        metavar="NAME=HOST:PORT[,HOST:PORT...]",
        help="shard group: primary first, then replicas (repeatable); "
        "append /HEALTHPORT to a node for /healthz checks",
    )
    p_croute.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per group on the hash ring",
    )
    p_croute.add_argument("--host", default="127.0.0.1")
    p_croute.add_argument("--port", type=int, default=7700)
    p_croute.add_argument("--max-batch", type=int, default=512)
    p_croute.add_argument("--max-delay-us", type=float, default=200.0)
    p_croute.add_argument("--timeout", type=float, default=5.0)
    p_croute.add_argument(
        "--health-interval", type=float, default=1.0,
        help="seconds between /healthz polls",
    )
    p_croute.add_argument("--metrics-port", type=int, default=None)
    p_croute.add_argument("--log-json", action="store_true")
    p_croute.add_argument(
        "--log-level", choices=["info", "debug"], default="info"
    )
    p_croute.set_defaults(func=_cmd_cluster_route)

    p_cstatus = cluster_sub.add_parser(
        "status", help="print cluster topology, health, and replication lag"
    )
    p_cstatus.add_argument(
        "--group", action="append", required=True,
        metavar="NAME=HOST:PORT[,HOST:PORT...]",
    )
    p_cstatus.add_argument("--vnodes", type=int, default=64)
    p_cstatus.add_argument("--timeout", type=float, default=5.0)
    p_cstatus.set_defaults(func=_cmd_cluster_status)

    p_cinit = cluster_sub.add_parser(
        "init", help="record ring epoch v1 and push it to every node"
    )
    p_cinit.add_argument(
        "--state-dir", required=True,
        help="coordinator state directory (epoch log + migration plans)",
    )
    p_cinit.add_argument(
        "--group", action="append", required=True,
        metavar="NAME=HOST:PORT[,HOST:PORT...]",
        help="shard group in the initial ring (repeatable)",
    )
    p_cinit.add_argument("--vnodes", type=int, default=64)
    p_cinit.add_argument("--timeout", type=float, default=10.0)
    p_cinit.set_defaults(func=_cmd_cluster_init)

    p_cjoin = cluster_sub.add_parser(
        "join",
        help="add a shard group with a live, crash-resumable migration",
    )
    p_cjoin.add_argument("--state-dir", required=True)
    p_cjoin.add_argument(
        "--group", required=True,
        metavar="NAME=HOST:PORT[,HOST:PORT...]",
        help="the joining shard group",
    )
    p_cjoin.add_argument(
        "--catchup-lag", type=int, default=64,
        help="fence the source once the stream is within this many "
        "WAL records of its tail",
    )
    p_cjoin.add_argument("--timeout", type=float, default=10.0)
    p_cjoin.set_defaults(func=_cmd_cluster_join)

    p_cdrain = cluster_sub.add_parser(
        "drain",
        help="migrate a group's ranges to the survivors, then drop it",
    )
    p_cdrain.add_argument("--state-dir", required=True)
    p_cdrain.add_argument(
        "--group", required=True, metavar="NAME",
        help="name of the group to remove from the ring",
    )
    p_cdrain.add_argument("--catchup-lag", type=int, default=64)
    p_cdrain.add_argument("--timeout", type=float, default=10.0)
    p_cdrain.set_defaults(func=_cmd_cluster_drain)

    p_crstat = cluster_sub.add_parser(
        "rebalance-status",
        help="print the coordinator's epoch log and per-vnode "
        "migration states",
    )
    p_crstat.add_argument("--state-dir", required=True)
    p_crstat.set_defaults(func=_cmd_cluster_rebalance_status)

    p_chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection simulation"
    )
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)

    p_chrun = chaos_sub.add_parser(
        "run",
        help="run one seeded chaos schedule (or a sweep) in simulated time",
    )
    p_chrun.add_argument("--seed", type=int, default=0)
    p_chrun.add_argument("--steps", type=int, default=120)
    p_chrun.add_argument("--nodes", type=int, default=3)
    p_chrun.add_argument(
        "--sweep",
        type=int,
        default=0,
        metavar="N",
        help="run N consecutive seeds starting at --start-seed",
    )
    p_chrun.add_argument("--start-seed", type=int, default=0)
    p_chrun.add_argument(
        "--json", action="store_true", help="print full JSON reports"
    )
    p_chrun.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip ddmin schedule minimisation on failure",
    )
    p_chrun.add_argument(
        "--artifacts-dir",
        default=None,
        help="write minimal failing schedules here (one JSON per seed)",
    )
    p_chrun.set_defaults(func=_cmd_chaos_run)

    p_metrics = sub.add_parser(
        "metrics-dump",
        help="print the Prometheus exposition of a daemon's /metrics endpoint",
    )
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, required=True)
    p_metrics.add_argument("--timeout", type=float, default=5.0)
    p_metrics.set_defaults(func=_cmd_metrics_dump)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout's reader hung up (`... | head`, `... | grep -q`): die
        # quietly like any pipeline-friendly tool.  Point stdout at
        # /dev/null so the interpreter's exit flush cannot re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (FileNotFoundError, ConnectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
