"""Analytic access-bandwidth formulas (§III, Tables I–II).

Worst-case hash-bit consumption per operation:

* CBF: ``k·log2(m)`` bits, ``k`` accesses (query and update alike).
* PCBF-g: ``g·log2(l) + k·log2(w/c)`` bits, ``g`` accesses.
* MPCBF-g query: ``g·log2(l) + k·log2(b1)`` bits, ``g`` accesses.
* MPCBF-g update: queries' bits plus the hierarchy traversal
  ``k·(log2(b2) + … + log2(b_d))``; level sizes are estimated from the
  expected occupancy (level 2 holds ≈ ``⌈k/g⌉·n_avg`` slots, deeper
  levels decay geometrically with the fill ratio of the level above).
"""

from __future__ import annotations

import math

from repro.analysis.heuristics import improved_b1, n_max_heuristic
from repro.errors import ConfigurationError
from repro.hashing.bit_budget import HashBitBudget, bits_for_range

__all__ = ["query_budget", "update_budget", "estimated_level_sizes"]

_VARIANTS = ("CBF", "PCBF", "MPCBF")


def _mpcbf_b1(
    memory_bits: int, word_bits: int, k: int, g: int, n: int | None
) -> int:
    l = memory_bits // word_bits
    if n is None:
        raise ConfigurationError("MPCBF budgets need n (for the n_max heuristic)")
    n_max = n_max_heuristic(n, l, g=g)
    return improved_b1(word_bits, k, n_max, g=g)


def query_budget(
    variant: str,
    memory_bits: int,
    k: int,
    *,
    word_bits: int = 64,
    g: int = 1,
    counter_bits: int = 4,
    n: int | None = None,
) -> HashBitBudget:
    """Per-query budget for one of ``CBF``/``PCBF``/``MPCBF``."""
    if variant not in _VARIANTS:
        raise ConfigurationError(f"unknown variant {variant!r}; use {_VARIANTS}")
    if variant == "CBF":
        return HashBitBudget.flat(memory_bits // counter_bits, k)
    l = memory_bits // word_bits
    if variant == "PCBF":
        return HashBitBudget.partitioned(l, word_bits // counter_bits, k, g)
    b1 = _mpcbf_b1(memory_bits, word_bits, k, g, n)
    return HashBitBudget.partitioned(l, b1, k, g)


def estimated_level_sizes(
    memory_bits: int,
    word_bits: int,
    k: int,
    *,
    g: int = 1,
    n: int | None = None,
    max_depth: int = 6,
) -> list[float]:
    """Expected HCBF level sizes ``[b1, b2, …]`` at average occupancy.

    Level 2's slot count equals the number of set first-level bits;
    level ``j+1``'s equals the number of set bits at level ``j``.  With
    ``t = ⌈k/g⌉·n_avg`` hash insertions per word spread uniformly, the
    expected set-bit counts follow the classic occupancy recurrence.
    """
    l = memory_bits // word_bits
    if n is None:
        raise ConfigurationError("need n to estimate occupancy")
    b1 = float(_mpcbf_b1(memory_bits, word_bits, k, g, n))
    t = -(-k // g) * (g * n / l)  # hash insertions per word
    sizes = [b1]
    remaining = t
    current_bits = b1
    for _ in range(max_depth - 1):
        if remaining <= 0 or current_bits <= 0:
            break
        # Expected set bits after throwing `remaining` balls at
        # `current_bits` slots; the excess spills to the next level.
        set_bits = current_bits * -math.expm1(-remaining / current_bits)
        next_slots = set_bits
        if next_slots < 0.5:
            break
        sizes.append(next_slots)
        remaining -= set_bits
        current_bits = next_slots
    return sizes


def update_budget(
    variant: str,
    memory_bits: int,
    k: int,
    *,
    word_bits: int = 64,
    g: int = 1,
    counter_bits: int = 4,
    n: int | None = None,
) -> HashBitBudget:
    """Per-update (insert/delete) budget; MPCBF pays traversal bits."""
    base = query_budget(
        variant,
        memory_bits,
        k,
        word_bits=word_bits,
        g=g,
        counter_bits=counter_bits,
        n=n,
    )
    if variant != "MPCBF":
        return base
    sizes = estimated_level_sizes(memory_bits, word_bits, k, g=g, n=n)
    extra = sum(bits_for_range(max(2, int(round(s)))) for s in sizes[1:])
    return base.scaled_update(k * extra)
