"""Full-jitter backoff: bounds, growth, and that connect() uses it."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import client as client_mod
from repro.service.client import (
    BACKOFF_CAP_S,
    AsyncFilterClient,
    FilterClient,
    _jittered_delay,
)


class TestJitteredDelay:
    def test_delays_stay_within_the_exponential_envelope(self):
        base = 0.05
        for attempt in range(12):
            cap = min(BACKOFF_CAP_S, base * (2 ** (attempt + 1)))
            for _ in range(50):
                delay = _jittered_delay(base, attempt)
                assert 0.0 <= delay <= cap

    def test_envelope_grows_then_caps(self):
        base = 0.05
        caps = [
            min(BACKOFF_CAP_S, base * (2 ** (attempt + 1)))
            for attempt in range(10)
        ]
        assert caps == sorted(caps)
        assert caps[-1] == BACKOFF_CAP_S

    def test_jitter_actually_varies(self):
        # Full jitter means the whole [0, cap) range is in play; 100
        # draws from uniform(0, 1.6) collapsing to one value would mean
        # the jitter is gone.
        draws = {round(_jittered_delay(0.05, 4), 6) for _ in range(100)}
        assert len(draws) > 10


class TestConnectUsesJitter:
    def test_sync_connect_sleeps_jittered_delays(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        monkeypatch.setattr(
            client_mod.random, "uniform", lambda low, high: high
        )
        client = FilterClient("127.0.0.1", 1, retries=4, backoff_s=0.05)
        with pytest.raises(ConnectionError):
            client.connect()
        assert sleeps == [0.1, 0.2, 0.4, 0.8]

    def test_async_connect_sleeps_jittered_delays(self, monkeypatch):
        sleeps: list[float] = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        monkeypatch.setattr(client_mod.asyncio, "sleep", fake_sleep)
        monkeypatch.setattr(
            client_mod.random, "uniform", lambda low, high: high
        )

        async def main():
            client = AsyncFilterClient(
                "127.0.0.1", 1, retries=4, backoff_s=0.05
            )
            with pytest.raises(ConnectionError):
                await client.connect()

        asyncio.run(main())
        assert sleeps == [0.1, 0.2, 0.4, 0.8]
