"""Tests for the sharded filter bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.filters.factory import FilterSpec
from repro.parallel import ShardedFilterBank


def make_bank(variant="MPCBF-1", shards=4, workers=1, **kw) -> ShardedFilterBank:
    spec = FilterSpec(
        variant=variant,
        memory_bits=kw.pop("memory_bits", 1 << 17),
        k=3,
        capacity=kw.pop("capacity", 4000),
        seed=kw.pop("seed", 1),
        extra=kw.pop("extra", {"word_overflow": "saturate"})
        if variant.startswith("MPCBF")
        else {},
    )
    return ShardedFilterBank(spec, shards, max_workers=workers)


class TestShardedBasics:
    def test_insert_query_delete(self):
        bank = make_bank()
        bank.insert("alpha")
        assert "alpha" in bank
        assert bank.count("alpha") == 1
        bank.delete("alpha")
        assert "alpha" not in bank

    def test_name_and_bits(self):
        bank = make_bank(shards=3)
        assert bank.name == "MPCBF-1x3"
        assert bank.total_bits == 3 * bank.shards[0].total_bits

    def test_bulk_no_false_negatives(self, small_keys):
        bank = make_bank()
        bank.insert_many(small_keys)
        assert bank.query_many(small_keys).all()

    def test_bulk_delete(self, small_keys):
        bank = make_bank()
        bank.insert_many(small_keys)
        bank.delete_many(small_keys)
        assert not bank.query_many(small_keys).any()

    def test_scalar_bulk_agreement(self, small_keys, negative_keys):
        bank = make_bank()
        bank.insert_many(small_keys)
        bulk = bank.query_many(negative_keys[:500])
        # The fixture keys are pre-encoded uint64, so compare against
        # the encoded scalar route (bank.query would re-encode the int).
        scalar = np.array(
            [
                bank.shards[
                    int(bank._route_array(np.array([k], dtype=np.uint64))[0])
                ].query_encoded(int(k))
                for k in negative_keys[:500]
            ]
        )
        np.testing.assert_array_equal(bulk, scalar)

    def test_results_in_input_order(self, small_keys):
        bank = make_bank()
        bank.insert_many(small_keys[:100])
        mixed = list(small_keys[:50]) + [f"absent-{i}" for i in range(50)]
        result = bank.query_many(mixed)
        assert result[:50].all()
        assert not result[50:].any()

    def test_empty_bulk(self):
        bank = make_bank()
        bank.insert_many(np.zeros(0, dtype=np.uint64))
        assert bank.query_many(np.zeros(0, dtype=np.uint64)).shape == (0,)


class TestRouting:
    def test_routing_deterministic(self, small_keys):
        a, b = make_bank(seed=5), make_bank(seed=5)
        for key in small_keys[:20]:
            assert a.shard_of(key) == b.shard_of(key)

    def test_each_key_lives_in_exactly_one_shard(self, small_keys):
        bank = make_bank()
        bank.insert_many(small_keys)
        for key in small_keys[:30]:
            owner = bank.shard_of(key)
            encoded = bank.encoder.encode(key)
            hits = [
                i
                for i, shard in enumerate(bank.shards)
                if shard.query_encoded(encoded)
            ]
            assert owner in hits  # owner always has it; others only by FP

    def test_balanced_loads(self):
        bank = make_bank(shards=8)
        keys = np.arange(40_000, dtype=np.uint64)
        loads = bank.shard_loads(keys)
        assert loads.sum() == 40_000
        assert loads.min() > 0.8 * loads.mean()

    def test_distinct_shard_seeds(self):
        bank = make_bank(shards=4)
        seeds = {shard.family.seed for shard in bank.shards}
        assert len(seeds) == 4


class TestThreadedExecution:
    def test_threaded_matches_sequential(self, small_keys, negative_keys):
        seq = make_bank(workers=1, seed=9)
        par = make_bank(workers=4, seed=9)
        seq.insert_many(small_keys)
        par.insert_many(small_keys)
        np.testing.assert_array_equal(
            seq.query_many(negative_keys), par.query_many(negative_keys)
        )
        np.testing.assert_array_equal(
            seq.query_many(small_keys), par.query_many(small_keys)
        )

    def test_threaded_delete(self, small_keys):
        bank = make_bank(workers=4)
        bank.insert_many(small_keys)
        bank.delete_many(small_keys)
        assert not bank.query_many(small_keys).any()


class TestStatsAndErrors:
    def test_aggregated_stats(self, small_keys):
        bank = make_bank()
        bank.insert_many(small_keys)
        bank.query_many(small_keys)
        assert bank.stats.insert.operations == len(small_keys)
        assert bank.stats.query.operations == len(small_keys)
        assert bank.stats.query.mean_accesses == pytest.approx(1.0)
        bank.reset_stats()
        assert bank.stats.query.operations == 0

    def test_plain_bloom_cannot_delete(self):
        bank = make_bank(variant="BF", extra={})
        bank.insert("x")
        with pytest.raises(UnsupportedOperationError):
            bank.delete("x")
        with pytest.raises(UnsupportedOperationError):
            bank.delete_many(["x"])
        with pytest.raises(UnsupportedOperationError):
            bank.count("x")

    def test_invalid_construction(self):
        spec = FilterSpec(variant="CBF", memory_bits=1 << 12, k=3)
        with pytest.raises(ConfigurationError):
            ShardedFilterBank(spec, 0)
        with pytest.raises(ConfigurationError):
            ShardedFilterBank(spec, 2, max_workers=0)

    def test_cbf_bank_counts(self):
        bank = make_bank(variant="CBF", extra={})
        for _ in range(3):
            bank.insert("dup")
        assert bank.count("dup") == 3
