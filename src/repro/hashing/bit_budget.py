"""Hash-bit budget accounting ("access bandwidth" in the paper).

The paper measures the processing overhead of each filter variant as the
number of memory accesses plus the *access bandwidth*: the number of
hash bits an operation must consume to address the structure.  For
example (§III.A), PCBF-1 needs ``log2(l) + k·log2(w/4)`` bits per
operation versus ``k·log2(m)`` for the standard CBF.

:class:`HashBitBudget` captures one operation's bit cost, broken into
word-select bits and in-word offset bits, and knows how to render the
per-variant formulas from §III.  The empirical access counters live in
:mod:`repro.memmodel.accounting`; this module is the analytic side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["bits_for_range", "HashBitBudget"]


def bits_for_range(size: int) -> float:
    """Hash bits needed to address a range of ``size`` values.

    The paper uses ``log2`` of the range directly (fractional bits are
    kept, matching the tables' non-integer bandwidth values).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    return math.log2(size) if size > 1 else 0.0


@dataclass(frozen=True)
class HashBitBudget:
    """Hash-bit cost of one filter operation.

    Attributes
    ----------
    word_select_bits:
        Bits consumed selecting word(s) — ``g·log2(l)`` for the
        partitioned variants, 0 for flat ones.
    offset_bits:
        Bits consumed locating counters/bits inside the addressed
        region.
    memory_accesses:
        Worst-case number of distinct memory words touched.
    hash_calls:
        Modelled number of hash-function computations.  Calibrated to
        the paper's discussion of Fig. 8: the first word-select hash
        shares a computation with the first index hash, giving
        ``k + g − 1`` for partitioned variants and ``k`` for flat ones.
    """

    word_select_bits: float
    offset_bits: float
    memory_accesses: float
    hash_calls: int

    @property
    def total_bits(self) -> float:
        """Total access bandwidth in hash bits."""
        return self.word_select_bits + self.offset_bits

    @staticmethod
    def flat(m: int, k: int) -> "HashBitBudget":
        """Budget for a flat (non-partitioned) BF/CBF over ``m`` slots.

        The standard CBF consumes ``k·log2(m)`` bits and ``k`` accesses
        per operation (Fig. 1 caption: k=3, m=16 → 12 bits).
        """
        return HashBitBudget(
            word_select_bits=0.0,
            offset_bits=k * bits_for_range(m),
            memory_accesses=float(k),
            hash_calls=k,
        )

    @staticmethod
    def partitioned(
        num_words: int, offset_range: int, k: int, g: int = 1
    ) -> "HashBitBudget":
        """Budget for a partitioned variant (BF-g / PCBF-g / MPCBF-g).

        ``g·log2(l)`` word-select bits plus ``k·log2(offset_range)``
        offset bits, ``g`` memory accesses.  For MPCBF the offset range
        is the first-level size ``b1``; for PCBF it is the counters per
        word ``w/4``.
        """
        return HashBitBudget(
            word_select_bits=g * bits_for_range(num_words),
            offset_bits=k * bits_for_range(offset_range),
            memory_accesses=float(g),
            hash_calls=k + g - 1,
        )

    def scaled_update(self, extra_offset_bits: float) -> "HashBitBudget":
        """Budget for an update that consumes extra traversal bits.

        MPCBF insert/delete traverses the hierarchy, consuming
        ``log2(b1) + … + log2(b_d)`` bits in the worst case (§III.B.2);
        callers add the extra levels' bits here.
        """
        return HashBitBudget(
            word_select_bits=self.word_select_bits,
            offset_bits=self.offset_bits + extra_offset_bits,
            memory_accesses=self.memory_accesses,
            hash_calls=self.hash_calls,
        )
