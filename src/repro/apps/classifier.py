"""Tuple-space packet classification accelerated by counting filters.

The second router function the paper's introduction names (with ref
[9], "a memory-efficient hashing by multi-predicate Bloom filters for
packet classification").  Classic tuple-space search keeps one exact
hash table per *tuple* — a (src-prefix-length, dst-prefix-length)
combination — and probes every tuple per packet.  The Bloom-filter
acceleration puts a small on-chip filter in front of each tuple so the
expensive exact-table probes happen only for tuples whose filter says
"maybe".

Counting filters make the structure *dynamic*: rule deletions (ACL
updates) decrement instead of rotting, the same argument as LPM route
withdrawals.  Rule priorities resolve multi-tuple matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.filters.base import CountingFilterBase, FilterBase
from repro.hashing.encoders import encode_int
from repro.memmodel.accounting import AccessStats

__all__ = ["Rule", "ClassifyResult", "TupleSpaceClassifier"]


@dataclass(frozen=True)
class Rule:
    """One classification rule: source/destination prefixes → action.

    ``src_len``/``dst_len`` are prefix lengths; ``src``/``dst`` hold the
    prefix bits (right-aligned, like :mod:`repro.apps.lpm`).  Lower
    ``priority`` wins among simultaneous matches.
    """

    src: int
    src_len: int
    dst: int
    dst_len: int
    action: object
    priority: int = 0

    def tuple_key(self) -> tuple[int, int]:
        return (self.src_len, self.dst_len)

    def match_key(self) -> int:
        """Pack the two prefixes into one 64-bit exact-match key."""
        return (self.src << 32) | self.dst

    def matches(self, src_addr: int, dst_addr: int) -> bool:
        return (
            src_addr >> (32 - self.src_len) == self.src
            if self.src_len
            else True
        ) and (
            dst_addr >> (32 - self.dst_len) == self.dst
            if self.dst_len
            else True
        )


@dataclass(frozen=True)
class ClassifyResult:
    """Outcome of classifying one packet."""

    action: object | None
    rule: Rule | None
    tuples_probed: int
    exact_probes: int
    false_probes: int

    @property
    def matched(self) -> bool:
        return self.rule is not None


class TupleSpaceClassifier:
    """Tuple-space search with per-tuple counting filters.

    Parameters
    ----------
    filter_factory:
        ``(tuple_key) -> FilterBase`` building the on-chip filter that
        fronts one tuple's exact table.
    """

    def __init__(
        self,
        filter_factory: Callable[[tuple[int, int]], FilterBase],
    ) -> None:
        self._filter_factory = filter_factory
        self.filters: dict[tuple[int, int], FilterBase] = {}
        self._tables: dict[tuple[int, int], dict[int, list[Rule]]] = {}
        self.exact_probes = 0
        self.false_probes = 0

    def _check(self, rule: Rule) -> None:
        for prefix, length in ((rule.src, rule.src_len), (rule.dst, rule.dst_len)):
            if not 0 <= length <= 32:
                raise ConfigurationError(f"prefix length {length} out of [0, 32]")
            if length and prefix >> length:
                raise ConfigurationError(
                    f"prefix {prefix:#x} has bits beyond its length {length}"
                )

    # -- rule maintenance -------------------------------------------------
    def add_rule(self, rule: Rule) -> None:
        """Install a rule into its tuple."""
        self._check(rule)
        key = rule.tuple_key()
        if key not in self._tables:
            self._tables[key] = {}
            self.filters[key] = self._filter_factory(key)
        bucket = self._tables[key].setdefault(rule.match_key(), [])
        if any(r == rule for r in bucket):
            raise ConfigurationError(f"duplicate rule {rule}")
        bucket.append(rule)
        self.filters[key].insert_encoded(encode_int(rule.match_key()))

    def remove_rule(self, rule: Rule) -> None:
        """Remove a rule (requires counting filters to stay clean)."""
        key = rule.tuple_key()
        bucket = self._tables.get(key, {}).get(rule.match_key())
        if not bucket or rule not in bucket:
            raise KeyError(f"rule not installed: {rule}")
        bucket.remove(rule)
        if not bucket:
            del self._tables[key][rule.match_key()]
        filt = self.filters[key]
        if isinstance(filt, CountingFilterBase):
            filt.delete_encoded(encode_int(rule.match_key()))

    @property
    def num_rules(self) -> int:
        return sum(
            len(bucket)
            for table in self._tables.values()
            for bucket in table.values()
        )

    @property
    def num_tuples(self) -> int:
        return len(self._tables)

    # -- classification -----------------------------------------------------
    def classify(self, src_addr: int, dst_addr: int) -> ClassifyResult:
        """Best-priority matching rule for one packet."""
        if src_addr >> 32 or dst_addr >> 32:
            raise ConfigurationError("addresses must be 32-bit")
        best: Rule | None = None
        exact_probes = 0
        false_probes = 0
        for (src_len, dst_len), filt in self.filters.items():
            src_prefix = src_addr >> (32 - src_len) if src_len else 0
            dst_prefix = dst_addr >> (32 - dst_len) if dst_len else 0
            match_key = (src_prefix << 32) | dst_prefix
            if not filt.query_encoded(encode_int(match_key)):
                continue
            exact_probes += 1
            self.exact_probes += 1
            bucket = self._tables[(src_len, dst_len)].get(match_key)
            if not bucket:
                false_probes += 1
                self.false_probes += 1
                continue
            for rule in bucket:
                if best is None or rule.priority < best.priority:
                    best = rule
        return ClassifyResult(
            action=best.action if best else None,
            rule=best,
            tuples_probed=len(self.filters),
            exact_probes=exact_probes,
            false_probes=false_probes,
        )

    def onchip_stats(self) -> AccessStats:
        """Aggregated on-chip filter statistics."""
        combined = AccessStats()
        for filt in self.filters.values():
            combined.merge(filt.stats)
        return combined
