"""Fig. 7 — empirical FPR on synthetic data, k=3 and k=4.

Regenerates the rows of the paper's fig07 via
:func:`repro.bench.experiments.fig07` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig07(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig07, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
