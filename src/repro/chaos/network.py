"""In-memory simulated network behind the Transport seam.

A :class:`SimNetwork` hosts named *endpoints* ("n0", "client", ...).
Each endpoint is a :class:`~repro.service.transport.Transport`, so the
unmodified server/replication/client code dials and accepts exactly as
it would over TCP — but every connection is a pair of in-process
directed pipes feeding real ``asyncio.StreamReader`` objects, with
injectable per-link message delay, drops, duplication, reordering,
one- and two-way partitions, and connection resets.

Fidelity choices (deliberately TCP-shaped):

- A pipe delivers chunks **in order**: each delivery is scheduled no
  earlier than the previous one (the ``reorder`` fault knob bypasses
  this floor explicitly, for tests of the fault machinery itself).
- A partition **stalls** delivery rather than dropping it: chunks
  queue and flow again on heal, like a retransmitting TCP stream.
  Dialling a partitioned endpoint refuses the connection.
- ``transport.abort()`` is an RST: queued data is discarded and both
  sides' readers raise :class:`ConnectionResetError`.
- ``writer.close()`` is a FIN: queued data still delivers, then the
  peer reads EOF.

Everything is scheduled on the (virtual-time) event loop with
deterministic delays, so a run is a pure function of the seed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.service.transport import Transport

__all__ = ["SimNetwork", "SimEndpoint", "SimServer"]

#: Epsilon between consecutive deliveries on one pipe — keeps timer
#: ordering strict so heapq tie-breaking can never reorder a stream.
_ORDER_EPS = 1e-9


@dataclass
class _LinkFaults:
    """Probabilistic fault knobs for one directed link."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0  # extra uniform delay window (seconds)
    rng: object = None


class _Pipe:
    """One direction of a connection: writer side → reader side."""

    def __init__(self, net: "SimNetwork", src: str, dst: str) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.reader = asyncio.StreamReader()
        #: Reset (RST): queued deliveries are discarded.
        self.closed = False
        #: Half-closed (FIN sent): no further writes accepted, but
        #: everything already scheduled — including the EOF — delivers.
        self.write_closed = False
        self._next_time = 0.0
        self._stalled: list[object] = []  # chunks parked by a partition

    # -- scheduling -------------------------------------------------------
    def _schedule(self, item, extra_delay: float = 0.0) -> None:
        """Queue ``item`` (bytes, EOF, or exception) for ordered delivery."""
        loop = self.net._running_loop()
        now = loop.time()
        deliver_at = max(
            now + self.net.delay(self.src, self.dst) + extra_delay,
            self._next_time,
        )
        self._next_time = deliver_at + _ORDER_EPS
        loop.call_at(deliver_at, self._deliver, item)

    def send(self, data: bytes) -> None:
        if self.closed or self.write_closed:
            return  # writes into a closed connection vanish, like TCP
        faults = self.net._faults.get((self.src, self.dst))
        if faults is not None and faults.rng is not None:
            if faults.drop and faults.rng.random() < faults.drop:
                return
            if faults.reorder and faults.rng.random() < 0.5:
                # Bypass the ordering floor: schedule at an absolute
                # time that may undercut queued chunks.
                loop = self.net._running_loop()
                when = (
                    loop.time()
                    + self.net.delay(self.src, self.dst)
                    + faults.rng.uniform(0.0, faults.reorder)
                )
                loop.call_at(when, self._deliver, data)
                return
            if faults.duplicate and faults.rng.random() < faults.duplicate:
                self._schedule(data)
        self._schedule(data)

    def send_eof(self) -> None:
        if not self.closed and not self.write_closed:
            self._schedule(_EOF)
        self.write_closed = True

    def _deliver(self, item) -> None:
        if self.closed:
            return
        if self.net.is_blocked(self.src, self.dst):
            self._stalled.append(item)
            return
        if item is _EOF:
            self.reader.feed_eof()
        elif isinstance(item, Exception):
            try:
                self.reader.set_exception(item)
            except Exception:
                pass
        else:
            self.reader.feed_data(item)

    def release(self) -> None:
        """Re-schedule everything a partition parked (heal path)."""
        if not self._stalled:
            return
        stalled, self._stalled = self._stalled, []
        for item in stalled:
            self._schedule(item)

    def reset(self) -> None:
        """RST this direction: drop queued data, poison the reader."""
        if self.closed:
            return
        self.closed = True  # queued _deliver calls become no-ops
        self._stalled.clear()
        loop = self.net._running_loop()
        if not self.reader.at_eof():
            loop.call_soon(self._poison)

    def _poison(self) -> None:
        try:
            self.reader.set_exception(ConnectionResetError("simulated reset"))
        except Exception:
            pass


_EOF = object()  # sentinel delivered in-order to mark clean close


class _SimTransportHandle:
    """Stand-in for the writer's ``.transport`` (supports ``abort``)."""

    def __init__(self, conn: "_SimConnection") -> None:
        self._conn = conn

    def abort(self) -> None:
        self._conn.reset()

    def is_closing(self) -> bool:
        return self._conn.closed


class SimStreamWriter:
    """Duck-typed ``asyncio.StreamWriter`` over one simulated pipe."""

    def __init__(self, conn: "_SimConnection", pipe: _Pipe, peer: str) -> None:
        self._conn = conn
        self._pipe = pipe
        self._peer = peer
        self.transport = _SimTransportHandle(conn)

    def write(self, data: bytes) -> None:
        self._pipe.send(bytes(data))

    def writelines(self, chunks) -> None:
        for chunk in chunks:
            self.write(chunk)

    async def drain(self) -> None:
        if self._pipe.closed:
            raise ConnectionResetError("simulated connection reset")
        # Yield once so a same-tick reader can be scheduled, mirroring
        # the real drain's cooperative behaviour.
        await asyncio.sleep(0)

    def close(self) -> None:
        self._conn.close_from(self._pipe)

    def is_closing(self) -> bool:
        return self._pipe.closed or self._pipe.write_closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        if name == "peername":
            return (self._peer, 0)
        return default


class _SimConnection:
    """A full-duplex connection: two pipes + two writers."""

    def __init__(self, net: "SimNetwork", dialer: str, target: str) -> None:
        self.net = net
        self.dialer = dialer
        self.target = target
        self.closed = False
        self.to_server = _Pipe(net, dialer, target)
        self.to_client = _Pipe(net, target, dialer)
        self.client_writer = SimStreamWriter(self, self.to_server, target)
        self.server_writer = SimStreamWriter(self, self.to_client, dialer)

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.dialer, self.target)

    def close_from(self, pipe: _Pipe) -> None:
        """FIN from one side: flush that direction, then EOF."""
        pipe.send_eof()
        self._maybe_forget()

    def reset(self) -> None:
        """RST both directions immediately."""
        if self.closed:
            return
        self.closed = True
        self.to_server.reset()
        self.to_client.reset()
        self.net._connections.discard(self)

    def _maybe_forget(self) -> None:
        if self.to_server.write_closed and self.to_client.write_closed:
            self.closed = True
            self.net._connections.discard(self)


class SimServer:
    """Handle returned by :meth:`SimEndpoint.start_server`."""

    def __init__(
        self, net: "SimNetwork", endpoint: str, host: str, port: int, handler
    ) -> None:
        self.net = net
        self.endpoint = endpoint
        self.host = host
        self.port = port
        self.handler = handler
        self.closed = False

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.net._servers.pop((self.host, self.port), None)

    async def wait_closed(self) -> None:
        return None


class SimEndpoint(Transport):
    """One named party on the network; plugs into the Transport seam."""

    def __init__(self, net: "SimNetwork", name: str) -> None:
        self.net = net
        self.name = name

    async def start_server(self, handler, host: str, port: int):
        if port == 0:
            port = self.net._next_ephemeral()
        key = (host, port)
        if key in self.net._servers:
            raise OSError(98, f"simulated address in use: {host}:{port}")
        server = SimServer(self.net, self.name, host, port, handler)
        self.net._servers[key] = server
        return server

    def server_port(self, server) -> int:
        return server.port

    async def open_connection(self, host: str, port: int):
        server = self.net._servers.get((host, port))
        if server is None or server.closed:
            raise ConnectionRefusedError(
                f"simulated connect refused: nothing listening on "
                f"{host}:{port}"
            )
        if self.net.is_blocked(self.name, server.endpoint) or (
            self.net.is_blocked(server.endpoint, self.name)
        ):
            raise ConnectionRefusedError(
                f"simulated partition: {self.name} cannot reach "
                f"{server.endpoint}"
            )
        conn = _SimConnection(self.net, self.name, server.endpoint)
        self.net._connections.add(conn)
        loop = self.net._running_loop()
        loop.create_task(
            server.handler(conn.to_server.reader, conn.server_writer)
        )
        return conn.to_client.reader, conn.client_writer

    def create_connection(self, host, port, *, timeout_s=None):
        raise OSError(
            "the simulated network is asyncio-only; the blocking "
            "FilterClient cannot dial a SimNetwork endpoint"
        )


class SimNetwork:
    """Registry of endpoints, servers, live connections, and faults.

    Construct one per simulation, hand each simulated party its own
    :meth:`endpoint`, then steer faults mid-run::

        net = SimNetwork(default_delay_s=0.001)
        server_transport = net.endpoint("n0")
        client_transport = net.endpoint("client")
        ...
        net.partition("n0", "n1")     # two-way stall
        net.heal("n0", "n1")          # queued chunks flow again
        net.reset_endpoint("n0")      # RST every live connection of n0
    """

    def __init__(self, *, default_delay_s: float = 0.001) -> None:
        self.default_delay_s = default_delay_s
        self._servers: Dict[Tuple[str, int], SimServer] = {}
        self._connections: Set[_SimConnection] = set()
        self._blocked: Set[Tuple[str, str]] = set()
        self._delays: Dict[Tuple[str, str], float] = {}
        self._faults: Dict[Tuple[str, str], _LinkFaults] = {}
        self._ephemeral = 49152
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- plumbing ---------------------------------------------------------
    def _running_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def _next_ephemeral(self) -> int:
        self._ephemeral += 1
        return self._ephemeral

    def endpoint(self, name: str) -> SimEndpoint:
        return SimEndpoint(self, name)

    # -- fault injection --------------------------------------------------
    def delay(self, src: str, dst: str) -> float:
        return self._delays.get((src, dst), self.default_delay_s)

    def set_delay(self, a: str, b: str, delay_s: float) -> None:
        """Symmetric per-link delay override."""
        self._delays[(a, b)] = delay_s
        self._delays[(b, a)] = delay_s

    def set_link_faults(
        self,
        src: str,
        dst: str,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        rng=None,
    ) -> None:
        """Probabilistic drop/duplicate/reorder on the ``src→dst`` link.

        ``reorder`` is a window in seconds: affected chunks bypass the
        in-order floor and land anywhere inside it.  Requires a seeded
        ``rng`` for determinism.
        """
        self._faults[(src, dst)] = _LinkFaults(
            drop=drop, duplicate=duplicate, reorder=reorder, rng=rng
        )

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    def block(self, src: str, dst: str) -> None:
        """One-way partition: ``src→dst`` chunks stall until healed."""
        self._blocked.add((src, dst))

    def partition(self, a: str, b: str) -> None:
        """Two-way partition between endpoints ``a`` and ``b``."""
        self.block(a, b)
        self.block(b, a)

    def heal(self, a: str, b: str) -> None:
        """Remove the partition (both directions); stalled chunks flow."""
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))
        self._release_stalled()

    def heal_all(self) -> None:
        self._blocked.clear()
        self._release_stalled()

    def _release_stalled(self) -> None:
        for conn in list(self._connections):
            for pipe in (conn.to_server, conn.to_client):
                if not self.is_blocked(pipe.src, pipe.dst):
                    pipe.release()

    def reset_endpoint(self, name: str) -> int:
        """RST every live connection touching endpoint ``name``."""
        count = 0
        for conn in list(self._connections):
            if name in conn.endpoints:
                conn.reset()
                count += 1
        return count

    def connections_of(self, name: str) -> int:
        """Live connection count for endpoint ``name`` (introspection)."""
        return sum(1 for c in self._connections if name in c.endpoints)
