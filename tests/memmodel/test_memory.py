"""Tests for the simulated word-addressable memory."""

from __future__ import annotations

import pytest

from repro.memmodel.memory import WordMemory


class TestWordMemory:
    def test_initial_state(self):
        mem = WordMemory(8, 64)
        assert len(mem) == 8
        assert mem.total_bits == 512
        assert mem.accesses == 0
        assert all(mem.peek(i) == 0 for i in range(8))

    def test_read_write_counting(self):
        mem = WordMemory(4, 32)
        mem.write(0, 0xDEAD)
        assert mem.read(0) == 0xDEAD
        assert mem.reads == 1
        assert mem.writes == 1
        assert mem.accesses == 2

    def test_write_masks_to_width(self):
        mem = WordMemory(2, 8)
        mem.write(1, 0x1FF)
        assert mem.peek(1) == 0xFF

    def test_peek_poke_do_not_count(self):
        mem = WordMemory(2, 16)
        mem.poke(0, 42)
        assert mem.peek(0) == 42
        assert mem.accesses == 0

    def test_reset_counters_keeps_contents(self):
        mem = WordMemory(2, 16)
        mem.write(0, 7)
        mem.reset_counters()
        assert mem.accesses == 0
        assert mem.peek(0) == 7

    def test_clear(self):
        mem = WordMemory(2, 16)
        mem.write(0, 7)
        mem.clear()
        assert mem.peek(0) == 0
        assert mem.accesses == 0

    def test_popcount(self):
        mem = WordMemory(3, 8)
        mem.poke(0, 0b1011)
        mem.poke(2, 0b1)
        assert mem.popcount() == 4

    def test_out_of_range_index(self):
        mem = WordMemory(2, 8)
        with pytest.raises(IndexError):
            mem.read(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WordMemory(0, 8)
        with pytest.raises(ValueError):
            WordMemory(2, 0)
