"""One-memory-access Bloom filter, BF-1 / BF-g (Qiao et al. [11]).

The bit vector is partitioned into ``l`` machine words of ``w`` bits.
A query hashes the key to ``g`` words (one word for BF-1) and to ``k``
bit offsets split over those words, so the whole membership check costs
``g`` word fetches instead of ``k``.  The penalty is a higher false
positive rate — the drawback MPCBF repairs with the HCBF hierarchy.

This implementation keeps the authoritative bits in a
:class:`repro.memmodel.WordMemory` (so scalar operations' access counts
are *observed*) and mirrors them into a packed ``uint64`` NumPy array
for the vectorised bulk query path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import FilterBase
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import PartitionedHashFamily
from repro.memmodel.accounting import OpKind
from repro.memmodel.memory import WordMemory

__all__ = ["OneAccessBloomFilter"]


class OneAccessBloomFilter(FilterBase):
    """BF-g: partitioned Bloom filter with ``g`` word accesses per op.

    Parameters
    ----------
    num_words:
        Number of ``word_bits``-wide words (``l``).
    word_bits:
        Word width ``w``; must be a multiple of 64 so the bulk mirror
        packs cleanly.
    k:
        Total number of bit-setting hash functions.
    g:
        Number of words each key touches (1 for BF-1).
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        k: int,
        *,
        g: int = 1,
        seed: int = 0,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if word_bits % 64 != 0:
            raise ConfigurationError(
                f"word_bits must be a multiple of 64, got {word_bits}"
            )
        self.name = f"BF-{g}"
        self.num_words = num_words
        self.word_bits = word_bits
        self.k = k
        self.g = g
        self.family = PartitionedHashFamily(
            num_words, word_bits, k, g=g, seed=seed
        )
        self.memory = WordMemory(num_words, word_bits)
        self._limbs = word_bits // 64
        self._mirror = np.zeros((num_words, self._limbs), dtype=np.uint64)
        self._budget = HashBitBudget.partitioned(num_words, word_bits, k, g)

    @property
    def total_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    def _mirror_set(self, word_index: int, bit: int) -> None:
        self._mirror[word_index, bit >> 6] |= np.uint64(1 << (bit & 63))

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        words = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        for word_index, offsets in zip(words, groups):
            value = self.memory.read(word_index)
            for bit in offsets:
                value |= 1 << bit
                self._mirror_set(word_index, bit)
            self.memory.write(word_index, value)
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(len(words)),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        words = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        accesses = 0
        result = True
        for word_index, offsets in zip(words, groups):
            accesses += 1
            value = self.memory.read(word_index)
            if any(not (value >> bit) & 1 for bit in offsets):
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget.word_select_bits / self.g * accesses
            + self._budget.offset_bits / self.g * accesses,
            hash_calls=self._budget.hash_calls,
        )
        return result

    # -- bulk -----------------------------------------------------------
    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        for key in encoded:
            self.insert_encoded(int(key))

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        word_idx, offsets = self.family.locate_array(encoded)
        word_cols = self.family.offset_word_columns()
        words_per_offset = word_idx[:, word_cols]
        shift = (offsets & 63).astype(np.uint64)
        if self._limbs == 1:
            limbs = self._mirror[words_per_offset, 0]
        else:
            limbs = self._mirror[words_per_offset, (offsets >> 6)]
        tested = ((limbs >> shift) & np.uint64(1)).astype(bool)
        member = tested.all(axis=1)
        # Words are probed in order; a query stops at the word containing
        # the first failed bit test.
        first_fail = np.where(member, self.k - 1, np.argmin(tested, axis=1))
        accesses = word_cols[first_fail] + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget.total_bits / self.g * total_accesses,
            hash_calls=self._budget.hash_calls * len(encoded),
        )
        return member
