"""Tests for the shared filter API plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.filters.base import (
    CountingFilterBase,
    FilterBase,
    OverflowPolicy,
    require_counting,
)
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter


class _MinimalFilter(FilterBase):
    """Scalar-only subclass to exercise the default bulk loops."""

    name = "minimal"

    def __init__(self):
        super().__init__()
        self._set: set[int] = set()

    @property
    def total_bits(self) -> int:
        return 0

    @property
    def num_hashes(self) -> int:
        return 1

    def insert_encoded(self, encoded_key: int) -> None:
        self._set.add(encoded_key)

    def query_encoded(self, encoded_key: int) -> bool:
        return encoded_key in self._set


class TestFilterBaseDefaults:
    def test_default_bulk_paths_use_scalar(self):
        f = _MinimalFilter()
        f.insert_many(["a", "b"])
        result = f.query_many(["a", "b", "c"])
        np.testing.assert_array_equal(result, [True, True, False])

    def test_contains(self):
        f = _MinimalFilter()
        f.insert("z")
        assert "z" in f
        assert "y" not in f

    def test_encode_bulk_uint64_passthrough(self):
        f = _MinimalFilter()
        arr = np.array([5], dtype=np.uint64)
        assert f._encode_bulk(arr) is arr

    def test_encode_bulk_rejects_scalars(self):
        f = _MinimalFilter()
        with pytest.raises(TypeError):
            f._encode_bulk(42)

    def test_repr(self):
        bf = BloomFilter(128, 2)
        assert "BF" in repr(bf)
        assert "bits=128" in repr(bf)

    def test_reset_stats(self):
        bf = BloomFilter(128, 2)
        bf.insert("a")
        bf.reset_stats()
        assert bf.stats.insert.operations == 0


class TestRequireCounting:
    def test_accepts_counting(self):
        cbf = CountingBloomFilter(64, 2)
        assert require_counting(cbf) is cbf

    def test_rejects_plain(self):
        with pytest.raises(UnsupportedOperationError):
            require_counting(BloomFilter(64, 2))


class TestOverflowPolicy:
    def test_values(self):
        assert OverflowPolicy("raise") is OverflowPolicy.RAISE
        assert OverflowPolicy("saturate") is OverflowPolicy.SATURATE

    def test_invalid(self):
        with pytest.raises(ValueError):
            OverflowPolicy("explode")


class TestCountingFilterBaseDefaults:
    def test_delete_many_uses_scalar(self):
        cbf = CountingBloomFilter(1024, 2)
        cbf.insert("a")
        cbf.insert("b")
        # Route through the base-class implementation explicitly.
        CountingFilterBase.delete_many(cbf, ["a", "b"])
        assert not cbf.query("a")
        assert not cbf.query("b")
