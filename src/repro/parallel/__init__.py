"""Parallel filter substrate.

The paper's introduction motivates MPCBF with line cards that "run
multiple CBFs in parallel" [4–10] — each pipeline stage or port owns a
filter shard and keys are routed by hash.  This package provides that
architecture in library form:

* :class:`~repro.parallel.sharded.ShardedFilterBank` — ``s``
  independent filters of any variant with hash routing, vectorised
  scatter/gather bulk operations, optional thread-parallel shard
  execution, and aggregated statistics.
"""

from repro.parallel.sharded import ShardedFilterBank

__all__ = ["ShardedFilterBank"]
