"""Shared-memory packing of columnar filter state for process pools.

The columnar arrays of :class:`~repro.kernels.columnar.ColumnarHCBF`
are plain fixed-dtype ndarrays, so — unlike the Python-object
``HCBFWord`` lists — they can live in one
:class:`multiprocessing.shared_memory.SharedMemory` block and be
mutated in place by worker processes with zero serialisation of filter
state.  :class:`SharedArrayPack` copies a named set of arrays into one
block and hands back views; a worker process re-attaches by
``(name, meta)`` (both picklable) and rebinds its own filter replica
onto the same physical memory.

Lifecycle: the creating side owns the block and must call
:meth:`close` + :meth:`unlink` (after dropping/rebinding any views —
NumPy keeps the exported buffer alive otherwise).  Attached sides are
opened untracked where the platform supports it so the resource
tracker does not unlink a segment it does not own.
"""

from __future__ import annotations

from math import prod
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayPack"]

_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayPack:
    """One shared-memory block holding a named set of ndarrays.

    ``meta`` maps each name to ``(dtype_str, shape, offset, nbytes)``
    and is what a worker needs (besides the block name) to rebuild the
    views; both travel through pickle to pool initialisers.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self.meta: dict[str, tuple[str, tuple, int, int]] = {}
        offset = 0
        for name, arr in arrays.items():
            contiguous = np.ascontiguousarray(arr)
            self.meta[name] = (
                str(contiguous.dtype),
                tuple(contiguous.shape),
                offset,
                contiguous.nbytes,
            )
            offset += _aligned(contiguous.nbytes)
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        self.name = self.shm.name
        views = self.arrays()
        for name, arr in arrays.items():
            views[name][...] = arr
        del views

    @classmethod
    def attach(cls, name: str, meta: dict) -> "SharedArrayPack":
        """Open an existing block by name (worker-process side)."""
        pack = cls.__new__(cls)
        try:
            # Python ≥ 3.13: opt out of resource tracking for attachers.
            pack.shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - older interpreters
            pack.shm = shared_memory.SharedMemory(name=name)
        pack.name = name
        pack.meta = dict(meta)
        return pack

    def arrays(self) -> dict[str, np.ndarray]:
        """Views over the block, keyed like the constructor's input."""
        out: dict[str, np.ndarray] = {}
        for name, (dtype, shape, offset, _nbytes) in self.meta.items():
            out[name] = np.frombuffer(
                self.shm.buf, dtype=dtype, count=prod(shape), offset=offset
            ).reshape(shape)
        return out

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        self.shm.unlink()
