"""Versioned binary wire protocol for the filter-serving daemon.

Framing (all integers little-endian)::

    frame   := u32 payload_len | payload
    payload := u8 version | u8 opcode | body

``payload_len`` counts the version/opcode bytes plus the body, so an
empty-bodied frame has ``payload_len == 2``.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected before the body is read, which
bounds the memory a malformed (or hostile) peer can pin.

Request bodies::

    PING / STATS / SNAPSHOT  (empty)
    INSERT / QUERY / DELETE  key bytes (the whole remaining body)
    BATCH                    u8 sub-op | u32 count | count x (u16 len | key)
    BULK64_*                 u32 count | count x u64 key  (columnar fastpath)
    HELLO                    u8 max_version | u32 feature bits
    DEADLINE                 u32 budget_us | u8 inner opcode | inner body

The ``BULK64_*`` frames carry keys the client already ran through the
library's vectorised FNV-1a encoders (:mod:`repro.hashing.encoders`) as
a packed little-endian ``uint64`` column.  The server decodes them with
a zero-copy ``np.frombuffer`` view and hands the array straight to the
columnar kernels — no per-key length prefixes, no Python loop, no
re-encoding.  Bulk64 frames are sent under protocol version 2 so that a
version-1-only server rejects them cleanly; ``HELLO`` lets a client
discover the capability up front (the server echoes its own version
ceiling and feature bits).

A ``DEADLINE`` frame wraps any other request and attaches the caller's
*remaining* time budget in microseconds (client deadline minus elapsed
— a relative quantity, so the two ends' clocks need not agree).  The
server answers with the inner request's normal response, or with a
``DEADLINE_EXCEEDED`` error if the budget ran out before the request
reached the filter (see :mod:`repro.overload`).

Replication bodies (primary → replica, see :mod:`repro.cluster`)::

    REPLICATE      u64 seq | u8 op | u32 count | count x (u16 len | key)
                   columnar ops: u64 seq | u8 op | u32 count | count x u64
    REPL_STATUS    (empty; replica answers JSON {last_seq, ...})
    REPL_SNAPSHOT  u64 seq | snapshot blob (full-state catch-up)

Columnar record ops (``BULK64_INSERT``/``BULK64_DELETE``) swap the
length-prefixed key list for a packed ``u64`` column; every other
record op keeps the legacy framing, so replicas replay mixed histories
record-by-record with no mode switch.

Rebalance bodies (coordinator → node, see :mod:`repro.rebalance`)::

    RING_EPOCH     (empty = get; answers RING_EPOCH | epoch blob)
                   set: u16 group_len | group | epoch blob
    MIGRATE_BEGIN / MIGRATE_READ / MIGRATE_FENCE  utf-8 JSON
    MIGRATE_APPLY  u16 plan_len | plan | records
    MIGRATE_COMMIT u32 meta_len | utf-8 JSON meta | epoch blob
    records       := u32 count | count x (u64 seq | u8 op |
                     u32 nkeys | nkeys x (u16 len | key))

Response bodies::

    OK      (empty)               insert/delete/ping acknowledgement
    BOOL    u8                    single-query result
    BITMAP  u32 count | bits      batch-query results, LSB-first packed
    COUNTS64 u32 count | count x u64   batch-count results, packed
    JSON    utf-8 JSON            stats / snapshot reports
    ACK     u64 seq               replica's highest applied WAL sequence
    ERROR   u16 code | utf-8 msg  see :class:`ErrorCode`

Every :mod:`repro.errors` failure mode maps to a stable
:class:`ErrorCode` so clients can re-raise the library exception the
server hit — the wire adds no new failure vocabulary of its own.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CapacityError,
    ClusterError,
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
    DeadlineExceededError,
    MovedError,
    OverloadedError,
    ReplicationError,
    ReproError,
    UnsupportedOperationError,
    WordOverflowError,
    WrongEpochError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_BULK64",
    "SUPPORTED_VERSIONS",
    "FEATURE_BULK64",
    "MAX_FRAME_BYTES",
    "MAX_KEY_BYTES",
    "MAX_BUDGET_US",
    "Opcode",
    "ErrorCode",
    "RECORD_OPS",
    "COLUMNAR_RECORD_OPS",
    "BULK64_OPS",
    "REBALANCE_OPS",
    "ProtocolError",
    "RemoteError",
    "Request",
    "encode_frame",
    "decode_payload",
    "parse_request",
    "encode_deadline_body",
    "decode_deadline_body",
    "format_retry_after",
    "parse_retry_after",
    "encode_batch_body",
    "encode_bulk64_body",
    "decode_bulk64_body",
    "encode_hello_body",
    "decode_hello_body",
    "bulk64_base_op",
    "encode_error_body",
    "decode_error_body",
    "encode_replicate_body",
    "decode_replicate_body",
    "encode_ack_body",
    "decode_ack_body",
    "encode_repl_snapshot_body",
    "decode_repl_snapshot_body",
    "encode_migrate_records",
    "decode_migrate_records",
    "encode_ring_epoch_set",
    "decode_ring_epoch_set",
    "encode_migrate_read_resp",
    "decode_migrate_read_resp",
    "encode_migrate_apply_body",
    "decode_migrate_apply_body",
    "encode_migrate_commit_body",
    "decode_migrate_commit_body",
    "pack_bools",
    "unpack_bools",
    "unpack_bools_array",
    "pack_counts64",
    "unpack_counts64",
    "error_code_for",
    "FrameDecoder",
    "read_frame",
]

PROTOCOL_VERSION = 1
#: Version that introduced the columnar bulk64 fastpath frames.
PROTOCOL_VERSION_BULK64 = 2
#: Every version this build of the server accepts on the wire.
SUPPORTED_VERSIONS = (PROTOCOL_VERSION, PROTOCOL_VERSION_BULK64)
#: HELLO feature bit: the peer speaks BULK64_* / COUNTS64 frames.
FEATURE_BULK64 = 0x1
#: Upper bound on one frame's payload; bounds per-connection buffering.
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: Keys are length-prefixed with a u16 inside BATCH bodies.
MAX_KEY_BYTES = 0xFFFF

_HEADER = struct.Struct("<I")
_PAYLOAD_PREFIX = struct.Struct("<BB")


class Opcode(enum.IntEnum):
    """Request and response frame types."""

    # requests
    PING = 0x01
    INSERT = 0x02
    QUERY = 0x03
    DELETE = 0x04
    BATCH = 0x05
    STATS = 0x06
    SNAPSHOT = 0x07
    DEADLINE = 0x08
    # columnar fastpath requests (protocol v2; packed u64 key columns)
    BULK64_INSERT = 0x09
    BULK64_DELETE = 0x0A
    BULK64_QUERY = 0x0B
    BULK64_COUNT = 0x0C
    HELLO = 0x0D
    # replication (primary → replica; see repro.cluster.replication)
    REPLICATE = 0x10
    REPL_STATUS = 0x11
    REPL_SNAPSHOT = 0x12
    # migration record ops (WAL/replication only, never client frames;
    # keys[0] is the migration header, see repro.rebalance.migrator)
    MIG_INSERT = 0x13
    MIG_DELETE = 0x14
    # migration applies of columnar-sourced keys: framing is identical
    # to MIG_* (keys[0] header, keys[1:] keys) but each key is the
    # 8-byte little-endian packing of an already-encoded u64, applied
    # without re-encoding (see repro.rebalance.migrator)
    MIG_INSERT64 = 0x15
    MIG_DELETE64 = 0x16
    # rebalance control (coordinator → node; see repro.rebalance)
    RING_EPOCH = 0x20
    MIGRATE_BEGIN = 0x21
    MIGRATE_READ = 0x22
    MIGRATE_APPLY = 0x23
    MIGRATE_FENCE = 0x24
    MIGRATE_COMMIT = 0x25
    # responses
    ERROR = 0x7F
    OK = 0x81
    BOOL = 0x82
    BITMAP = 0x83
    JSON = 0x84
    ACK = 0x85
    COUNTS64 = 0x86


#: Opcodes a BATCH frame may carry as its sub-operation.
BATCH_SUBOPS = (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE)

#: The columnar fastpath request frames (packed u64 key columns).
BULK64_OPS = (
    Opcode.BULK64_INSERT,
    Opcode.BULK64_DELETE,
    Opcode.BULK64_QUERY,
    Opcode.BULK64_COUNT,
)

#: Record ops whose key payload is a packed u64 column rather than a
#: length-prefixed byte-key list (WAL columnar record type; replication
#: ships them with the same framing).
COLUMNAR_RECORD_OPS = (Opcode.BULK64_INSERT, Opcode.BULK64_DELETE)

#: Mutation ops a WAL record (and hence a REPLICATE body) may carry.
#: The MIG_* flavours are migration applies: ``keys[0]`` is a header
#: blob naming the plan and source sequence, ``keys[1:]`` the real keys
#: (8-byte packed pre-encoded u64s for the ``*64`` flavours).  The
#: BULK64_* flavours are columnar records — their keys travel as a
#: packed u64 column.
RECORD_OPS = (
    Opcode.INSERT,
    Opcode.DELETE,
    Opcode.BULK64_INSERT,
    Opcode.BULK64_DELETE,
    Opcode.MIG_INSERT,
    Opcode.MIG_DELETE,
    Opcode.MIG_INSERT64,
    Opcode.MIG_DELETE64,
)

#: Maps each bulk64 request frame to the batching-layer op it fuses
#: with.  INSERT/QUERY/DELETE coalesce with their legacy equivalents;
#: BULK64_COUNT has no legacy twin and batches under its own op.
_BULK64_BASE = {
    Opcode.BULK64_INSERT: Opcode.INSERT,
    Opcode.BULK64_DELETE: Opcode.DELETE,
    Opcode.BULK64_QUERY: Opcode.QUERY,
    Opcode.BULK64_COUNT: Opcode.BULK64_COUNT,
}


def bulk64_base_op(opcode: Opcode) -> Opcode:
    """The batching-layer op a bulk64 request frame coalesces under."""
    return _BULK64_BASE[opcode]

#: Rebalance control opcodes the server routes to its rebalance state.
REBALANCE_OPS = (
    Opcode.RING_EPOCH,
    Opcode.MIGRATE_BEGIN,
    Opcode.MIGRATE_READ,
    Opcode.MIGRATE_APPLY,
    Opcode.MIGRATE_FENCE,
    Opcode.MIGRATE_COMMIT,
)


class ErrorCode(enum.IntEnum):
    """Stable numeric codes for error frames."""

    INTERNAL = 1
    PROTOCOL = 2
    CONFIGURATION = 3
    CAPACITY = 4
    COUNTER_OVERFLOW = 5
    COUNTER_UNDERFLOW = 6
    WORD_OVERFLOW = 7
    UNSUPPORTED = 8
    REPLICATION = 9
    CLUSTER = 10
    WRONG_EPOCH = 11
    MOVED = 12
    OVERLOADED = 13
    DEADLINE_EXCEEDED = 14


#: Most-derived-first so isinstance dispatch picks the tightest code.
_ERROR_CODES: tuple[tuple[type, ErrorCode], ...] = (
    (CounterOverflowError, ErrorCode.COUNTER_OVERFLOW),
    (CounterUnderflowError, ErrorCode.COUNTER_UNDERFLOW),
    (WordOverflowError, ErrorCode.WORD_OVERFLOW),
    (CapacityError, ErrorCode.CAPACITY),
    (ConfigurationError, ErrorCode.CONFIGURATION),
    (UnsupportedOperationError, ErrorCode.UNSUPPORTED),
    (OverloadedError, ErrorCode.OVERLOADED),
    (DeadlineExceededError, ErrorCode.DEADLINE_EXCEEDED),
    (MovedError, ErrorCode.MOVED),
    (WrongEpochError, ErrorCode.WRONG_EPOCH),
    (ReplicationError, ErrorCode.REPLICATION),
    (ClusterError, ErrorCode.CLUSTER),
    (ReproError, ErrorCode.INTERNAL),
)


class ProtocolError(ReproError):
    """A frame violated the wire format (bad version, opcode, length…)."""


class RemoteError(ReproError):
    """Client-side view of a server error frame.

    For ``OVERLOADED`` frames ``retry_after_s`` carries the server's
    parsed backoff hint (``None`` when the message has none); other
    codes always leave it ``None``.
    """

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(f"[{code.name}] {message}")
        self.code = code
        self.remote_message = message
        self.retry_after_s: float | None = None
        if code == ErrorCode.OVERLOADED:
            self.retry_after_s = parse_retry_after(message)[0]


def error_code_for(exc: BaseException) -> ErrorCode:
    """Map an exception to the error code its frame carries."""
    if isinstance(exc, ProtocolError):
        return ErrorCode.PROTOCOL
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return code
    return ErrorCode.INTERNAL


@dataclass
class Request:
    """A parsed request frame: an operation over one or more keys.

    Legacy frames carry ``keys`` as a list of raw byte strings; bulk64
    frames carry a read-only ``uint64`` ndarray view over the frame
    body (``columnar=True``) — the keys are already encoded and flow to
    the kernels without copying or re-hashing.
    """

    op: Opcode
    keys: "list[bytes] | np.ndarray"
    #: True when the request arrived as a single-key frame (response is
    #: OK/BOOL) rather than a BATCH frame (response is OK/BITMAP).
    single: bool
    #: True when keys is a pre-encoded u64 column (bulk64 fastpath).
    columnar: bool = False


# -- encoding -----------------------------------------------------------
def encode_frame(
    opcode: Opcode, body: bytes = b"", *, version: int = PROTOCOL_VERSION
) -> bytes:
    """Serialise one frame (header + version + opcode + body)."""
    payload_len = 2 + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return (
        _HEADER.pack(payload_len)
        + _PAYLOAD_PREFIX.pack(version, opcode)
        + body
    )


_KEY_LEN = struct.Struct("<H")
_OP_COUNT = struct.Struct("<BI")


def _encode_op_keys(op: Opcode, keys: list[bytes]) -> bytes:
    """Pack ``u8 op | u32 count | count x (u16 len | key)``.

    One preallocated buffer, filled with ``pack_into`` + slice assigns
    — no per-key ``bytes`` objects, no join of O(keys) fragments.
    """
    total = 5
    for key in keys:
        if len(key) > MAX_KEY_BYTES:
            raise ProtocolError(
                f"key of {len(key)} bytes exceeds the {MAX_KEY_BYTES}-byte limit"
            )
        total += 2 + len(key)
    out = bytearray(total)
    _OP_COUNT.pack_into(out, 0, op, len(keys))
    pos = 5
    pack_len = _KEY_LEN.pack_into
    for key in keys:
        key_len = len(key)
        pack_len(out, pos, key_len)
        pos += 2
        out[pos : pos + key_len] = key
        pos += key_len
    return bytes(out)


def _parse_op_keys(
    body: bytes,
    pos: int,
    allowed: tuple[Opcode, ...],
    kind: str,
    op_label: str | None = None,
) -> tuple[Opcode, list[bytes], int]:
    """Inverse of :func:`_encode_op_keys`; returns (op, keys, end)."""
    label = op_label if op_label is not None else f"{kind} op"
    if pos + 5 > len(body):
        raise ProtocolError(f"truncated {kind} header")
    raw_op, count = _OP_COUNT.unpack_from(body, pos)
    try:
        op = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown {label} 0x{raw_op:02x}") from exc
    if op not in allowed:
        raise ProtocolError(f"invalid {label} {op.name}")
    pos += 5
    keys: list[bytes] = []
    unpack_len = _KEY_LEN.unpack_from
    size = len(body)
    for _ in range(count):
        if pos + 2 > size:
            raise ProtocolError(f"truncated {kind} key length")
        (key_len,) = unpack_len(body, pos)
        pos += 2
        if pos + key_len > size:
            raise ProtocolError(f"truncated {kind} key")
        keys.append(body[pos : pos + key_len])
        pos += key_len
    return op, keys, pos


def _encode_op_keys64(op: Opcode, keys: np.ndarray) -> bytes:
    """Pack ``u8 op | u32 count | count x u64`` for a columnar record."""
    arr = np.ascontiguousarray(keys, dtype="<u8")
    return _OP_COUNT.pack(op, arr.size) + arr.tobytes()


def _parse_op_keys64(
    body: bytes, pos: int, op: Opcode, count: int, kind: str
) -> tuple[np.ndarray, int]:
    """Parse the u64 column of a columnar record (op/count pre-read).

    Returns a read-only zero-copy view over ``body`` — safe because the
    whole filter stack never mutates key arrays in place.
    """
    end = pos + count * 8
    if end > len(body):
        raise ProtocolError(f"truncated {kind} u64 column")
    keys = np.frombuffer(body, dtype="<u8", count=count, offset=pos)
    return keys, end


def _parse_record_tail(
    body: bytes, pos: int, kind: str
) -> "tuple[Opcode, list[bytes] | np.ndarray, int]":
    """Parse a record tail, dispatching on op: legacy vs columnar framing."""
    if pos + 5 > len(body):
        raise ProtocolError(f"truncated {kind} header")
    raw_op, count = _OP_COUNT.unpack_from(body, pos)
    try:
        op = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown {kind} op 0x{raw_op:02x}") from exc
    if op not in RECORD_OPS:
        raise ProtocolError(f"invalid {kind} op {op.name}")
    if op in COLUMNAR_RECORD_OPS:
        keys, pos = _parse_op_keys64(body, pos + 5, op, count, kind)
        return op, keys, pos
    return _parse_op_keys(body, pos, RECORD_OPS, kind)


# -- deadlines & overload hints -----------------------------------------
_DEADLINE_PREFIX = struct.Struct("<IB")
#: Largest budget a DEADLINE frame can carry (u32 microseconds ≈ 71.6
#: minutes); longer budgets are clamped rather than rejected — past
#: this horizon the wrapper is indistinguishable from "no deadline".
MAX_BUDGET_US = 0xFFFFFFFF

_RETRY_AFTER_PREFIX = "retry_after_ms="


def encode_deadline_body(budget_us: int, opcode: Opcode, body: bytes) -> bytes:
    """Build a DEADLINE body wrapping ``opcode``/``body`` with a budget.

    ``budget_us`` is the caller's *remaining* budget in microseconds
    (clamped to the u32 range).  Nesting DEADLINE inside DEADLINE is
    rejected: one wrapper per frame, re-wrap with the smaller budget
    instead.
    """
    if budget_us < 0:
        raise ProtocolError(f"deadline budget must be >= 0, got {budget_us}")
    if opcode == Opcode.DEADLINE:
        raise ProtocolError("DEADLINE frames cannot nest")
    return _DEADLINE_PREFIX.pack(min(budget_us, MAX_BUDGET_US), opcode) + body


def decode_deadline_body(body: bytes) -> tuple[int, Opcode, bytes]:
    """Inverse of :func:`encode_deadline_body` → (budget_us, op, body)."""
    if len(body) < _DEADLINE_PREFIX.size:
        raise ProtocolError("truncated deadline body")
    budget_us, raw_op = _DEADLINE_PREFIX.unpack_from(body)
    try:
        opcode = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown deadline inner op 0x{raw_op:02x}") from exc
    if opcode == Opcode.DEADLINE:
        raise ProtocolError("DEADLINE frames cannot nest")
    return budget_us, opcode, body[_DEADLINE_PREFIX.size :]


def format_retry_after(retry_after_s: float | None, message: str) -> str:
    """Prefix an error message with a machine-readable backoff hint.

    The hint rides inside the ERROR frame's message field —
    ``retry_after_ms=<n>; <message>`` — so the body format
    (``u16 code | utf-8 msg``) is unchanged and old clients simply see
    a slightly longer human-readable string.
    """
    if retry_after_s is None:
        return message
    ms = max(1, round(retry_after_s * 1000.0))
    return f"{_RETRY_AFTER_PREFIX}{ms}; {message}"


def parse_retry_after(message: str) -> tuple[float | None, str]:
    """Inverse of :func:`format_retry_after` → (retry_after_s, message).

    Returns ``(None, message)`` unchanged when no hint is present or it
    fails to parse — the hint is advisory, never a hard dependency.
    """
    if not message.startswith(_RETRY_AFTER_PREFIX):
        return None, message
    head, sep, rest = message.partition("; ")
    try:
        ms = int(head[len(_RETRY_AFTER_PREFIX) :])
    except ValueError:
        return None, message
    if ms < 0 or not sep:
        return None, message
    return ms / 1000.0, rest


def encode_batch_body(subop: Opcode, keys: list[bytes]) -> bytes:
    """Build a BATCH body: sub-op, count, then length-prefixed keys."""
    if subop not in BATCH_SUBOPS:
        raise ProtocolError(f"invalid batch sub-op {subop!r}")
    return _encode_op_keys(subop, keys)


_BULK64_PREFIX = struct.Struct("<I")
_HELLO_BODY = struct.Struct("<BI")


def encode_bulk64_body(keys) -> bytes:
    """Build a BULK64_* body: ``u32 count | count x u64`` packed keys.

    ``keys`` is anything :func:`np.asarray` turns into a ``uint64``
    column — typically the output of the library's vectorised encoders.
    On little-endian hosts the array's buffer is appended as-is.
    """
    arr = np.ascontiguousarray(keys, dtype="<u8")
    if arr.ndim != 1:
        raise ProtocolError(
            f"bulk64 keys must be a 1-d u64 column, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise ProtocolError("bulk64 frame carries no keys")
    body_len = 4 + arr.size * 8
    if body_len + 2 > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"bulk64 body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _BULK64_PREFIX.pack(arr.size) + arr.tobytes()


def decode_bulk64_body(body: bytes) -> np.ndarray:
    """Inverse of :func:`encode_bulk64_body` — a zero-copy u64 view.

    The returned array is a read-only ``np.frombuffer`` view over the
    frame body (no copy); validation is count/length agreement only, so
    decode cost is O(1) in the number of keys.
    """
    if len(body) < 4:
        raise ProtocolError("truncated bulk64 header")
    (count,) = _BULK64_PREFIX.unpack_from(body)
    if count == 0:
        raise ProtocolError("bulk64 frame carries no keys")
    if len(body) - 4 != count * 8:
        raise ProtocolError(
            f"bulk64 body holds {len(body) - 4} key bytes, "
            f"count {count} needs {count * 8}"
        )
    return np.frombuffer(body, dtype="<u8", count=count, offset=4)


def encode_hello_body(version: int, features: int) -> bytes:
    """Build a HELLO body: the sender's version ceiling + feature bits."""
    if not 0 <= version <= 0xFF:
        raise ProtocolError(f"hello version {version} out of u8 range")
    return _HELLO_BODY.pack(version, features & 0xFFFFFFFF)


def decode_hello_body(body: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_hello_body` → (version, features)."""
    if len(body) != _HELLO_BODY.size:
        raise ProtocolError(
            f"hello body must be {_HELLO_BODY.size} bytes, got {len(body)}"
        )
    version, features = _HELLO_BODY.unpack(body)
    return version, features


def encode_replicate_body(seq: int, subop: Opcode, keys) -> bytes:
    """Build a REPLICATE body: WAL sequence, then a BATCH-shaped tail.

    The key encoding after the ``u64 seq`` prefix is byte-identical to
    :func:`encode_batch_body`, so replicas reuse the same parser.  Any
    :data:`RECORD_OPS` member is accepted: replication ships migration
    applies (MIG_*) with the same framing as client mutations, and
    columnar records (BULK64_*) with their packed u64 column intact —
    the replica replays the exact pre-encoded keys, never re-hashing.
    """
    if seq < 0:
        raise ProtocolError(f"replication sequence must be >= 0, got {seq}")
    if subop not in RECORD_OPS:
        raise ProtocolError(f"invalid replicate op {subop!r}")
    if subop in COLUMNAR_RECORD_OPS:
        tail = _encode_op_keys64(subop, keys)
    else:
        tail = _encode_op_keys(subop, keys)
    return struct.pack("<Q", seq) + tail


def decode_replicate_body(
    body: bytes,
) -> "tuple[int, Opcode, list[bytes] | np.ndarray]":
    """Inverse of :func:`encode_replicate_body`."""
    if len(body) < 8:
        raise ProtocolError("truncated replicate body")
    (seq,) = struct.unpack_from("<Q", body)
    op, keys, pos = _parse_record_tail(body, 8, "replicate")
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after replicate keys"
        )
    return seq, op, keys


def encode_ack_body(seq: int) -> bytes:
    """Build an ACK body carrying the replica's highest applied seq."""
    return struct.pack("<Q", seq)


def decode_ack_body(body: bytes) -> int:
    """Inverse of :func:`encode_ack_body`."""
    if len(body) != 8:
        raise ProtocolError(f"ACK body must be 8 bytes, got {len(body)}")
    (seq,) = struct.unpack("<Q", body)
    return seq


def encode_repl_snapshot_body(seq: int, blob: bytes) -> bytes:
    """Build a REPL_SNAPSHOT body: the WAL seq the blob covers + state."""
    return struct.pack("<Q", seq) + blob


def decode_repl_snapshot_body(body: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_repl_snapshot_body`."""
    if len(body) < 8:
        raise ProtocolError("truncated replication snapshot body")
    (seq,) = struct.unpack_from("<Q", body)
    return seq, body[8:]


# -- rebalance bodies (see repro.rebalance) -----------------------------
def encode_migrate_records(
    records: "list[tuple[int, Opcode, list[bytes] | np.ndarray]]",
) -> bytes:
    """Pack migration records: count, then (seq, op, keys) triples.

    Columnar records (BULK64_*) pack their keys as a u64 column; every
    other op uses the legacy length-prefixed framing.
    """
    parts = [struct.pack("<I", len(records))]
    for seq, op, keys in records:
        if op not in RECORD_OPS:
            raise ProtocolError(f"invalid migrate record op {op!r}")
        parts.append(struct.pack("<Q", seq))
        if op in COLUMNAR_RECORD_OPS:
            parts.append(_encode_op_keys64(op, keys))
        else:
            parts.append(_encode_op_keys(op, keys))
    return b"".join(parts)


def decode_migrate_records(
    body: bytes, offset: int = 0
) -> "list[tuple[int, Opcode, list[bytes] | np.ndarray]]":
    """Inverse of :func:`encode_migrate_records`; consumes to the end."""
    if offset + 4 > len(body):
        raise ProtocolError("truncated migrate records header")
    (count,) = struct.unpack_from("<I", body, offset)
    pos = offset + 4
    records: "list[tuple[int, Opcode, list[bytes] | np.ndarray]]" = []
    for _ in range(count):
        if pos + 8 > len(body):
            raise ProtocolError("truncated migrate record sequence")
        (seq,) = struct.unpack_from("<Q", body, pos)
        op, keys, pos = _parse_record_tail(body, pos + 8, "migrate record")
        records.append((seq, op, keys))
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after migrate records"
        )
    return records


def encode_ring_epoch_set(group: str, blob: bytes) -> bytes:
    """Build a RING_EPOCH *set* body: the receiver's group name + epoch."""
    raw = group.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("group name too long for ring-epoch body")
    return struct.pack("<H", len(raw)) + raw + blob


def decode_ring_epoch_set(body: bytes) -> tuple[str, bytes]:
    """Inverse of :func:`encode_ring_epoch_set`."""
    if len(body) < 2:
        raise ProtocolError("truncated ring-epoch body")
    (group_len,) = struct.unpack_from("<H", body)
    if 2 + group_len > len(body):
        raise ProtocolError("truncated ring-epoch group name")
    group = body[2 : 2 + group_len].decode("utf-8")
    return group, body[2 + group_len :]


def encode_migrate_apply_body(
    plan: str, records: list[tuple[int, Opcode, list[bytes]]]
) -> bytes:
    """Build a MIGRATE_APPLY body: plan id + migration records."""
    raw = plan.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("plan id too long for migrate-apply body")
    return struct.pack("<H", len(raw)) + raw + encode_migrate_records(records)


def decode_migrate_apply_body(
    body: bytes,
) -> tuple[str, list[tuple[int, Opcode, list[bytes]]]]:
    """Inverse of :func:`encode_migrate_apply_body`."""
    if len(body) < 2:
        raise ProtocolError("truncated migrate-apply body")
    (plan_len,) = struct.unpack_from("<H", body)
    if 2 + plan_len > len(body):
        raise ProtocolError("truncated migrate-apply plan id")
    plan = body[2 : 2 + plan_len].decode("utf-8")
    return plan, decode_migrate_records(body, 2 + plan_len)


def encode_migrate_read_resp(
    scanned_through: int,
    last_seq: int,
    records: list[tuple[int, Opcode, list[bytes]]],
) -> bytes:
    """Build a MIGRATE_READ response: scan watermarks + matching records."""
    return (
        struct.pack("<QQ", scanned_through, last_seq)
        + encode_migrate_records(records)
    )


def decode_migrate_read_resp(
    body: bytes,
) -> tuple[int, int, list[tuple[int, Opcode, list[bytes]]]]:
    """Inverse of :func:`encode_migrate_read_resp`."""
    if len(body) < 16:
        raise ProtocolError("truncated migrate-read response")
    scanned_through, last_seq = struct.unpack_from("<QQ", body)
    return scanned_through, last_seq, decode_migrate_records(body, 16)


def encode_migrate_commit_body(meta: dict, blob: bytes) -> bytes:
    """Build a MIGRATE_COMMIT body: JSON metadata + the new epoch blob."""
    raw = json.dumps(meta, sort_keys=True).encode("utf-8")
    return struct.pack("<I", len(raw)) + raw + blob


def decode_migrate_commit_body(body: bytes) -> tuple[dict, bytes]:
    """Inverse of :func:`encode_migrate_commit_body`."""
    if len(body) < 4:
        raise ProtocolError("truncated migrate-commit body")
    (meta_len,) = struct.unpack_from("<I", body)
    if 4 + meta_len > len(body):
        raise ProtocolError("truncated migrate-commit metadata")
    try:
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed migrate-commit metadata") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("migrate-commit metadata must be a JSON object")
    return meta, body[4 + meta_len :]


def encode_error_body(code: ErrorCode, message: str) -> bytes:
    return struct.pack("<H", code) + message.encode("utf-8")


def decode_error_body(body: bytes) -> tuple[ErrorCode, str]:
    if len(body) < 2:
        raise ProtocolError("truncated error body")
    (raw,) = struct.unpack_from("<H", body)
    try:
        code = ErrorCode(raw)
    except ValueError:
        code = ErrorCode.INTERNAL
    return code, body[2:].decode("utf-8", "replace")


def pack_bools(values) -> bytes:
    """Pack an iterable of booleans into a BITMAP body (LSB-first).

    Arrays (and anything else iterable) go through ``np.packbits`` with
    ``bitorder="little"`` — one vectorised pass, no per-bit Python loop.
    """
    bits = np.asarray(values, dtype=bool).ravel()
    return struct.pack("<I", bits.size) + np.packbits(
        bits, bitorder="little"
    ).tobytes()


def _check_bitmap(body: bytes) -> int:
    if len(body) < 4:
        raise ProtocolError("truncated bitmap body")
    (count,) = struct.unpack_from("<I", body)
    need = 4 + (count + 7) // 8
    if len(body) < need:
        raise ProtocolError(
            f"bitmap body holds {len(body) - 4} bytes, needs {need - 4}"
        )
    return count


def unpack_bools(body: bytes) -> list[bool]:
    """Inverse of :func:`pack_bools`."""
    return unpack_bools_array(body).tolist()


def unpack_bools_array(body: bytes) -> np.ndarray:
    """Inverse of :func:`pack_bools` as a bool ndarray (vectorised)."""
    count = _check_bitmap(body)
    packed = np.frombuffer(body, dtype=np.uint8, offset=4)
    return np.unpackbits(packed, bitorder="little", count=count).astype(
        bool, copy=False
    )


def pack_counts64(values) -> bytes:
    """Pack per-key counts into a COUNTS64 body: u32 count | u64 column."""
    arr = np.ascontiguousarray(values, dtype="<u8")
    return struct.pack("<I", arr.size) + arr.tobytes()


def unpack_counts64(body: bytes) -> np.ndarray:
    """Inverse of :func:`pack_counts64` — a zero-copy u64 view."""
    if len(body) < 4:
        raise ProtocolError("truncated counts64 body")
    (count,) = struct.unpack_from("<I", body)
    if len(body) - 4 != count * 8:
        raise ProtocolError(
            f"counts64 body holds {len(body) - 4} bytes, "
            f"count {count} needs {count * 8}"
        )
    return np.frombuffer(body, dtype="<u8", count=count, offset=4)


# -- decoding -----------------------------------------------------------
def decode_payload(payload: bytes) -> tuple[Opcode, bytes]:
    """Split a frame payload into (opcode, body), validating the prefix."""
    if len(payload) < 2:
        raise ProtocolError(f"payload of {len(payload)} bytes is too short")
    version, raw_op = _PAYLOAD_PREFIX.unpack_from(payload)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version}")
    try:
        opcode = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown opcode 0x{raw_op:02x}") from exc
    return opcode, payload[2:]


def parse_request(opcode: Opcode, body: bytes) -> Request:
    """Parse a request frame body into a :class:`Request`.

    Control frames (PING/STATS/SNAPSHOT) are not key-carrying requests
    and are rejected here; the server dispatches them before batching.
    """
    if opcode in (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE):
        if len(body) == 0:
            raise ProtocolError(f"{opcode.name} frame carries an empty key")
        if len(body) > MAX_KEY_BYTES:
            raise ProtocolError(
                f"key of {len(body)} bytes exceeds the {MAX_KEY_BYTES}-byte limit"
            )
        return Request(op=opcode, keys=[body], single=True)
    if opcode == Opcode.BATCH:
        subop, keys, pos = _parse_op_keys(
            body, 0, BATCH_SUBOPS, "batch", op_label="batch sub-op"
        )
        if pos != len(body):
            raise ProtocolError(
                f"{len(body) - pos} trailing bytes after batch keys"
            )
        return Request(op=subop, keys=keys, single=False)
    if opcode in BULK64_OPS:
        return Request(
            op=bulk64_base_op(opcode),
            keys=decode_bulk64_body(body),
            single=False,
            columnar=True,
        )
    raise ProtocolError(f"opcode {opcode.name} is not a keyed request")


class FrameDecoder:
    """Incremental frame parser for byte streams.

    Feed raw socket bytes with :meth:`feed`; iterate complete payloads
    with :meth:`frames`.  Used by the sync client (``recv`` chunks don't
    align with frames) and by the fuzz tests.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self):
        """Yield (opcode, body) for each complete frame buffered."""
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (payload_len,) = _HEADER.unpack_from(self._buffer)
            if payload_len > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame of {payload_len} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame limit"
                )
            end = _HEADER.size + payload_len
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            yield decode_payload(payload)


async def read_frame(reader) -> tuple[Opcode, bytes] | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (payload_len,) = _HEADER.unpack(header)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    try:
        payload = await reader.readexactly(payload_len)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)
