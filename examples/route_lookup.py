#!/usr/bin/env python3
"""IP route lookup with Bloom-filter LPM under BGP churn (paper ref [4]).

Builds a longest-prefix-match table whose per-length on-chip filters
are MPCBFs, replays a lookup stream, then applies a burst of route
withdrawals and re-announcements (BGP churn).  A plain-Bloom-filter
table is run alongside to show why routers need *counting* filters:
withdrawals leave stale bits that waste off-chip probes forever.

Run:  python examples/route_lookup.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.lpm import BloomLPMTable
from repro.filters.bloom import BloomFilter
from repro.filters.mpcbf import MPCBF


def make_routes(rng: np.random.Generator, count: int) -> dict:
    routes = {}
    while len(routes) < count:
        length = int(rng.choice([8, 16, 24], p=[0.1, 0.35, 0.55]))
        prefix = int(rng.integers(0, 1 << length))
        routes[(prefix, length)] = f"hop-{len(routes)}"
    return routes


def run_table(name: str, table: BloomLPMTable, routes: dict, rng) -> None:
    for (prefix, length), hop in routes.items():
        table.announce(prefix, length, hop)

    # Lookup stream: half toward announced prefixes, half random.
    addresses = []
    keys = list(routes)
    for _ in range(5000):
        prefix, length = keys[int(rng.integers(0, len(keys)))]
        addresses.append(
            (prefix << (32 - length)) | int(rng.integers(0, 1 << (32 - length)))
        )
    addresses += [int(a) for a in rng.integers(0, 1 << 32, size=5000)]

    # BGP churn: withdraw 20% of routes, announce replacements.
    victims = [keys[i] for i in rng.choice(len(keys), size=len(keys) // 5, replace=False)]
    for prefix, length in victims:
        table.withdraw(prefix, length)
    for (prefix, length) in make_routes(rng, len(victims)):
        table.announce(prefix, length, "new-hop")

    table.offchip_probes = table.false_probes = 0
    matched = sum(table.lookup(addr).matched for addr in addresses)
    print(
        f"  {name:12} matched {matched}/{len(addresses)}, "
        f"off-chip probes/lookup = {table.offchip_probes / len(addresses):.3f}, "
        f"wasted (stale/false) probes = {table.false_probes}"
    )


def main() -> None:
    print("Bloom-filter LPM with 5K routes, 10K lookups, 20% BGP churn:")
    routes = make_routes(np.random.default_rng(1), 5000)

    mpcbf_table = BloomLPMTable(
        lambda length: MPCBF(
            1024, 64, 3, capacity=4000, seed=length, word_overflow="saturate"
        )
    )
    bloom_table = BloomLPMTable(
        lambda length: BloomFilter(65536, 3, seed=length)
    )
    run_table("MPCBF (1 access/length)", mpcbf_table, dict(routes), np.random.default_rng(2))
    run_table("plain BF (no deletes)", bloom_table, dict(routes), np.random.default_rng(2))

    print(
        "\nthe counting table absorbs withdrawals exactly; the plain-BF"
        "\ntable accumulates stale bits and pays wasted off-chip probes —"
        "\nthe reason route lookup needs CBFs, and fast ones (the paper's"
        "\npoint: MPCBF answers each per-length check in one SRAM access)."
    )


if __name__ == "__main__":
    main()
