"""Client↔server integration over localhost.

The acceptance bar from the service design: a daemon on an ephemeral
port, mixed insert/query/delete traffic from >= 8 concurrent clients,
zero wrong answers against an oracle set, mean coalesced batch size
above 1 under that load, and snapshot → restore → identical answers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.filters.factory import FilterSpec, build_filter
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient, FilterClient
from repro.service.protocol import ErrorCode, Opcode, RemoteError, encode_frame
from repro.service.server import FilterServer
from repro.service.snapshot import load_snapshot


def make_bank(num_shards=4, seed=11):
    spec = FilterSpec(
        variant="MPCBF-1",
        memory_bits=64 * 8192,
        k=3,
        capacity=4000,
        seed=seed,
        extra={"word_overflow": "saturate"},
    )
    return ShardedFilterBank(spec, num_shards)


async def start_server(filt, **kwargs) -> FilterServer:
    server = FilterServer(filt, port=0, **kwargs)
    await server.start()
    return server


class TestEndToEnd:
    def test_mixed_traffic_8_clients_matches_oracle(self, tmp_path):
        snap_path = tmp_path / "bank.snap"

        async def main():
            server = await start_server(
                make_bank(), snapshot_path=str(snap_path), max_delay_us=500.0
            )
            num_clients = 8
            oracle: set[bytes] = set()
            # Deterministic per-client key spaces: no cross-client
            # interference, so the oracle is exact.
            for c in range(num_clients):
                oracle.update(b"c%d-key-%d" % (c, i) for i in range(60))

            async def client_traffic(c: int):
                async with AsyncFilterClient(port=server.port) as client:
                    mine = [b"c%d-key-%d" % (c, i) for i in range(60)]
                    dead = mine[40:]
                    await client.insert_many(mine[:30])
                    for key in mine[30:]:
                        await client.insert(key)
                    # Delete a slice again (present → exact oracle).
                    for key in dead[:10]:
                        await client.delete(key)
                    await client.delete_many(dead[10:])
                    return mine

            await asyncio.gather(*[client_traffic(c) for c in range(8)])
            for c in range(num_clients):
                for i in range(40, 60):
                    oracle.discard(b"c%d-key-%d" % (c, i))

            async with AsyncFilterClient(port=server.port) as client:
                members = sorted(oracle)
                absent = [b"never-%d" % i for i in range(2000)]
                member_answers = await client.query_many(members)
                absent_answers = await client.query_many(absent)
                stats = await client.stats()
                snap_report = await client.snapshot()
            await server.stop()
            return members, member_answers, absent_answers, stats, snap_report

        members, member_answers, absent_answers, stats, snap_report = asyncio.run(
            main()
        )
        # Zero wrong answers: no false negatives ever; the FPR at this
        # load (~320 live keys in 512 KiB) is far below the 1% bar.
        assert all(member_answers)
        assert sum(absent_answers) <= len(absent_answers) * 0.01
        # The coalescer really coalesced under 8-way concurrency.
        assert stats["coalescing"]["mean_batch_requests"] > 1.0
        assert stats["ops"]["INSERT"] == 8 * 30
        assert stats["filter"]["name"] == "MPCBF-1x4"
        assert len(stats["filter"]["shards"]) == 4
        # Snapshot → restore: identical answers without the daemon.
        restored = load_snapshot(snap_report["path"])
        assert all(restored.query_many(members))

    def test_sync_client_full_surface(self, tmp_path):
        async def run_server(server, stop_event):
            await stop_event.wait()
            await server.stop()

        async def main():
            filt = build_filter(
                FilterSpec(variant="CBF", memory_bits=32 * 8192, k=3, seed=5)
            )
            server = await start_server(
                filt, snapshot_path=str(tmp_path / "cbf.snap")
            )
            stop_event = asyncio.Event()
            runner = asyncio.ensure_future(run_server(server, stop_event))
            loop = asyncio.get_running_loop()

            def sync_calls():
                with FilterClient(port=server.port) as client:
                    assert client.ping()
                    client.insert("alpha")
                    client.insert_many(["beta", "gamma"])
                    assert client.query("alpha")
                    assert client.query_many(["beta", "gamma", "nope"])[:2] == [
                        True,
                        True,
                    ]
                    client.delete("alpha")
                    assert not client.query("alpha")
                    client.delete_many(["beta", "gamma"])
                    stats = client.stats()
                    assert stats["ops"]["PING"] == 1
                    report = client.snapshot()
                    assert report["bytes"] > 0
                    # Deleting an absent key maps to the library error.
                    try:
                        client.delete("never-there")
                        raise AssertionError("expected RemoteError")
                    except RemoteError as exc:
                        assert exc.code == ErrorCode.COUNTER_UNDERFLOW
                    # The connection survives the error frame.
                    assert client.ping()
                return True

            ok = await loop.run_in_executor(None, sync_calls)
            stop_event.set()
            await runner
            return ok

        assert asyncio.run(main())

    def test_malformed_frames_get_error_frames_not_crashes(self):
        async def main():
            server = await start_server(make_bank(num_shards=1))
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            # Well-framed but bodily-invalid: empty INSERT key.
            writer.write(encode_frame(Opcode.INSERT, b""))
            await writer.drain()
            from repro.service.protocol import decode_error_body, read_frame

            opcode, body = await read_frame(reader)
            assert opcode == Opcode.ERROR
            code, message = decode_error_body(body)
            assert code == ErrorCode.PROTOCOL
            # Connection still alive after the error frame.
            writer.write(encode_frame(Opcode.PING))
            await writer.drain()
            opcode, _ = await read_frame(reader)
            assert opcode == Opcode.OK
            # Framing-level garbage: server answers once, then hangs up.
            writer.write(b"\xff" * 64)
            await writer.drain()
            frame = await read_frame(reader)
            assert frame is None or frame[0] == Opcode.ERROR
            writer.close()
            # And the server still serves fresh connections.
            async with AsyncFilterClient(port=server.port) as client:
                assert await client.ping()
            await server.stop()

        asyncio.run(main())

    def test_snapshot_unconfigured_is_clean_error(self):
        async def main():
            server = await start_server(make_bank(num_shards=1))
            async with AsyncFilterClient(port=server.port) as client:
                with pytest.raises(RemoteError):
                    await client.snapshot()
                assert await client.ping()
            await server.stop()

        asyncio.run(main())

    def test_graceful_stop_drains_inflight_and_snapshots(self, tmp_path):
        snap = tmp_path / "drain.snap"

        async def main():
            server = await start_server(
                make_bank(num_shards=2), snapshot_path=str(snap)
            )

            async def churn(c):
                async with AsyncFilterClient(port=server.port) as client:
                    for i in range(40):
                        await client.insert(b"drain-%d-%d" % (c, i))
                return True

            tasks = [asyncio.ensure_future(churn(c)) for c in range(4)]
            await asyncio.sleep(0.05)  # traffic in flight
            await server.stop()
            done = [t for t in tasks if t.done()]
            for t in tasks:
                t.cancel()
            return len(done) >= 0

        asyncio.run(main())
        # The final snapshot was written on stop.
        assert snap.exists()
        restored = load_snapshot(snap)
        assert restored.name == "MPCBF-1x2"
