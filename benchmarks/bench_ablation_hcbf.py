"""Ablation: basic HCBF (fixed b1) vs improved HCBF (maximised b1).

Wraps :func:`repro.bench.ablations.ablation_hcbf_layout`; see that
driver for the full rationale (§III.B.3's improvement is the design
choice that gives MPCBF its accuracy edge).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.ablations import ablation_hcbf_layout


def test_ablation_hcbf(benchmark, scale, capsys):
    report = run_once(benchmark, ablation_hcbf_layout, scale)
    with capsys.disabled():
        print()
        print(report.render())
    for row in report.rows:
        assert row["improved"] <= row["basic b1=32"] * 1.1
