"""Fault-injecting storage behind the Storage seam.

:class:`FaultyStorage` hands the WAL and snapshot writer real files on
a real filesystem (so recovery code paths are exercised verbatim), but
wraps every handle to track two watermarks per path:

- ``written``: bytes the application has written (and flushed to the
  OS, as far as it knows);
- ``synced``: bytes actually covered by a successful ``fsync``.

A simulated machine crash (:meth:`crash`) truncates each file to an
rng-chosen cut inside ``[synced, written]`` — the *torn tail* a real
power loss can leave, which the WAL's recovery scan must tolerate.
On top of that, fsyncs can be made to fail (:meth:`fail_fsyncs`) and
writes can be cut short with ENOSPC (:meth:`fail_next_write`) at a
chosen byte offset.

All randomness comes from the rng the caller passes in, so fault
placement is a pure function of the schedule seed.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import BinaryIO, Dict, List, Tuple, Union

from repro.service.storage import Storage

__all__ = ["FaultyStorage"]


class _FileState:
    """Durability watermarks for one tracked path."""

    __slots__ = ("written", "synced")

    def __init__(self, size: int) -> None:
        self.written = size
        self.synced = size


class _PendingWriteFault:
    """A one-shot short-write (ENOSPC) armed for matching paths."""

    __slots__ = ("match", "partial")

    def __init__(self, match: str, partial: int) -> None:
        self.match = match
        self.partial = partial


class _TrackedFile:
    """Binary file proxy that reports writes/syncs back to the storage."""

    def __init__(
        self, inner: BinaryIO, path: str, storage: "FaultyStorage"
    ) -> None:
        self._inner = inner
        self._path = path
        self._storage = storage

    def write(self, data: bytes) -> int:
        fault = self._storage._take_write_fault(self._path)
        if fault is not None:
            partial = max(0, min(fault.partial, len(data)))
            if partial:
                self._inner.write(data[:partial])
                self._inner.flush()
                self._storage._note_written(self._path, self._inner.tell())
            raise OSError(errno.ENOSPC, "simulated: no space left on device")
        n = self._inner.write(data)
        self._storage._note_written(self._path, self._inner.tell())
        return n

    def truncate(self, size=None) -> int:
        result = self._inner.truncate(size)
        self._storage._note_truncated(self._path, result)
        return result

    # Everything else (read, seek, tell, flush, close, fileno, ...) is
    # behaviourally identical to the real file.
    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self._inner.close()


class FaultyStorage(Storage):
    """A :class:`~repro.service.storage.Storage` with injectable faults."""

    def __init__(self) -> None:
        self._files: Dict[str, _FileState] = {}
        self._fsync_faults: List[Tuple[str, int]] = []  # (match, remaining)
        self._write_faults: List[_PendingWriteFault] = []

    # -- Storage interface ------------------------------------------------
    def open(self, path: Union[str, Path], mode: str) -> BinaryIO:
        key = str(path)
        inner = open(path, mode)
        size = inner.tell() if "a" in mode else 0
        state = self._files.get(key)
        if state is None:
            self._files[key] = _FileState(size)
        else:
            # Reopen: anything on disk now was either synced before or
            # survives only until the next crash cut.
            state.written = max(state.written, size)
        return _TrackedFile(inner, key, self)

    def fsync(self, handle: BinaryIO) -> None:
        path = getattr(handle, "_path", None)
        if path is not None and self._take_fsync_fault(path):
            raise OSError(errno.EIO, "simulated: fsync failed")
        os.fsync(handle.fileno())
        if path is not None:
            state = self._files.get(path)
            if state is not None:
                state.synced = state.written

    def fsync_path(self, path: Union[str, Path]) -> None:
        key = str(path)
        if self._take_fsync_fault(key):
            raise OSError(errno.EIO, "simulated: fsync failed")
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- fault injection --------------------------------------------------
    def fail_fsyncs(self, match: str, count: int = 1) -> None:
        """Make the next ``count`` fsyncs on paths containing ``match`` fail."""
        self._fsync_faults.append((match, count))

    def fail_next_write(self, match: str, *, partial: int = 0) -> None:
        """Arm an ENOSPC for the next write to a path containing ``match``.

        The first ``partial`` bytes land on disk before the error — the
        half-written record a real full disk produces.
        """
        self._write_faults.append(_PendingWriteFault(match, partial))

    def crash(self, rng) -> List[Tuple[str, int, int]]:
        """Simulate power loss: tear every unsynced tail.

        For each tracked path still on disk, truncates to an rng-chosen
        cut in ``[synced, written]``.  Returns ``(path, old_size,
        new_size)`` for each file actually torn.  Callers must have
        closed (abandoned) all handles first.
        """
        torn: List[Tuple[str, int, int]] = []
        for key, state in self._files.items():
            if not os.path.exists(key):
                continue
            size = os.path.getsize(key)
            hi = min(state.written, size)
            lo = min(state.synced, hi)
            cut = rng.randint(lo, hi) if hi > lo else hi
            if cut < size:
                with open(key, "r+b") as handle:
                    handle.truncate(cut)
                torn.append((key, size, cut))
            state.written = cut
            state.synced = cut
        return torn

    # -- bookkeeping (called by _TrackedFile) -----------------------------
    def _note_written(self, path: str, offset: int) -> None:
        state = self._files.get(path)
        if state is not None and offset > state.written:
            state.written = offset

    def _note_truncated(self, path: str, size: int) -> None:
        state = self._files.get(path)
        if state is not None:
            state.written = min(state.written, size)
            state.synced = min(state.synced, size)

    def _take_fsync_fault(self, path: str) -> bool:
        for i, (match, remaining) in enumerate(self._fsync_faults):
            if match in path:
                if remaining <= 1:
                    del self._fsync_faults[i]
                else:
                    self._fsync_faults[i] = (match, remaining - 1)
                return True
        return False

    def _take_write_fault(self, path: str):
        for i, fault in enumerate(self._write_faults):
            if fault.match in path:
                del self._write_faults[i]
                return fault
        return None

    # -- introspection ----------------------------------------------------
    def unsynced_bytes(self, match: str = "") -> int:
        """Total bytes written-but-not-synced across matching paths."""
        return sum(
            max(0, s.written - s.synced)
            for p, s in self._files.items()
            if match in p
        )
