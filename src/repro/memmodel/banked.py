"""Bank-conflict-aware lookup pipeline simulation.

:class:`~repro.memmodel.pipeline.SramPipelineModel` assumes accesses
spread perfectly over memory ports.  Real banked SRAM serves one
request per bank per cycle, so the sustained rate of a *specific
traffic mix* is set by the busiest bank — and the two designs stress
banks differently:

* a flat CBF scatters each query's ``k`` accesses over ``k``
  pseudo-random banks (good spreading, many requests);
* MPCBF sends each query to exactly one bank — fewer requests, but a
  *hot flow* hammers one bank every packet.

:func:`simulate_lookup_stream` takes a real filter and a real key
stream, derives every memory request's bank from the filter's own
hashing, and reports the exact pipeline-limited cycle count under the
standard fully-pipelined assumption (every bank serves one request per
cycle; hash units issue one hash per cycle): the makespan is the
busiest resource's total demand.  This captures what the closed-form
model cannot — skewed traffic — and is validated against it on uniform
streams in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.filters.base import FilterBase

__all__ = ["BankedSimResult", "lookup_bank_requests", "simulate_lookup_stream"]

#: Bits an SRAM row fetch returns; flat filters' bit/counter indices
#: collapse onto rows of this width before banking.
_ROW_BITS = 64


@dataclass(frozen=True)
class BankedSimResult:
    """Outcome of simulating one lookup stream."""

    lookups: int
    cycles: int
    bottleneck: str
    bank_utilisation: float
    hottest_bank_share: float
    clock_hz: float

    @property
    def ops_per_second(self) -> float:
        return self.lookups / self.cycles * self.clock_hz if self.cycles else 0.0


def lookup_bank_requests(
    filter_obj: "FilterBase", encoded_keys: np.ndarray, num_banks: int
) -> tuple[np.ndarray, int]:
    """All (bank) memory requests a query stream issues, plus hash count.

    Word/row addresses come from the filter's own hash family, so the
    request stream is exactly what the software queries touch; banks
    interleave by address modulo ``num_banks`` (the standard layout).
    Early exit is ignored (hardware issues the probes in parallel).
    """
    # Imported here: filters depend on memmodel.accounting, so a
    # module-level import would be circular.
    from repro.filters.bloom import BloomFilter
    from repro.filters.cbf import CountingBloomFilter
    from repro.filters.mpcbf import MPCBF
    from repro.filters.one_access import OneAccessBloomFilter
    from repro.filters.pcbf import PartitionedCBF

    keys = np.asarray(encoded_keys, dtype=np.uint64)
    if isinstance(filter_obj, (MPCBF, PartitionedCBF, OneAccessBloomFilter)):
        word_idx = filter_obj.family.word_indices_array(keys)  # (n, g)
        rows = word_idx.reshape(-1)
        hash_calls = (filter_obj.family.k + filter_obj.family.g - 1) * len(keys)
    elif isinstance(filter_obj, (CountingBloomFilter, BloomFilter)):
        indices = filter_obj.family.indices_array(keys)  # (n, k)
        if isinstance(filter_obj, CountingBloomFilter):
            per_row = _ROW_BITS // filter_obj.counter_bits
        else:
            per_row = _ROW_BITS
        rows = (indices // per_row).reshape(-1)
        hash_calls = filter_obj.k * len(keys)
    else:
        raise ConfigurationError(
            f"no bank model for filter type {type(filter_obj).__name__}"
        )
    return (rows % num_banks).astype(np.int64), hash_calls


def simulate_lookup_stream(
    filter_obj: "FilterBase",
    encoded_keys: np.ndarray,
    *,
    num_banks: int = 8,
    hash_units: int = 8,
    clock_hz: float = 350e6,
) -> BankedSimResult:
    """Pipeline-limited cycles to serve a query stream.

    Under full pipelining, every resource retires one unit of work per
    cycle, so the makespan is the maximum total demand across
    resources: each bank's request count, and the hash units'
    ``total_hashes / hash_units``.
    """
    if num_banks < 1 or hash_units < 1:
        raise ConfigurationError("num_banks and hash_units must be >= 1")
    banks, hash_calls = lookup_bank_requests(
        filter_obj, encoded_keys, num_banks
    )
    per_bank = np.bincount(banks, minlength=num_banks)
    bank_cycles = int(per_bank.max()) if len(banks) else 0
    hash_cycles = int(np.ceil(hash_calls / hash_units))
    cycles = max(bank_cycles, hash_cycles, 1)
    total_requests = int(per_bank.sum())
    return BankedSimResult(
        lookups=len(encoded_keys),
        cycles=cycles,
        bottleneck="memory" if bank_cycles >= hash_cycles else "hash",
        bank_utilisation=(
            total_requests / (cycles * num_banks) if cycles else 0.0
        ),
        hottest_bank_share=(
            float(per_bank.max()) / total_requests if total_requests else 0.0
        ),
        clock_hz=clock_hz,
    )
