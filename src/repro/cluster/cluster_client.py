"""Client-side cluster routing: the ring without the router daemon.

:class:`ClusterClient` embeds the same :class:`~repro.cluster.router.
HashRing` the router daemon uses, so a process that knows the topology
can talk straight to the shard groups — one network hop instead of two.
The router daemon remains the right front door for clients that should
not carry topology (or that benefit from its server-side coalescing);
both route identically because they share the ring implementation.

The surface mirrors :class:`~repro.service.client.FilterClient`
(``insert_many`` / ``query_many`` / ``delete_many`` / single-key
helpers), plus :meth:`status` for a cluster-wide health/replication
report — what ``repro cluster status`` prints.
"""

from __future__ import annotations

from repro.cluster.router import (
    HashRing,
    HealthChecker,
    RouterBackend,
    ShardGroup,
    parse_group,
)

__all__ = ["ClusterClient"]


def _to_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"cluster keys must be str or bytes, got {type(key).__name__}")


class ClusterClient:
    """Blocking cluster client; usable as a context manager.

    Parameters
    ----------
    groups:
        :class:`ShardGroup` objects or ``NAME=HOST:PORT[,HOST:PORT...]``
        spec strings (see :func:`~repro.cluster.router.parse_group`).
    vnodes:
        Virtual nodes per group — must match the router daemon's setting
        for the two to agree on placement.
    timeout_s:
        Per-call socket timeout.
    check_health:
        When True, probe every node's ``/healthz`` once up front (only
        nodes with a health port participate) so reads skip known-dead
        primaries immediately instead of waiting out a timeout.
    """

    def __init__(
        self,
        groups,
        *,
        vnodes: int = 64,
        timeout_s: float = 5.0,
        check_health: bool = False,
    ) -> None:
        parsed = [
            group if isinstance(group, ShardGroup) else parse_group(group)
            for group in groups
        ]
        ring = HashRing(parsed, vnodes=vnodes)
        health = None
        if check_health:
            nodes = [node for group in parsed for node in group.nodes]
            health = HealthChecker(nodes)
            health.check_now()
        self._backend = RouterBackend(ring, health=health, timeout_s=timeout_s)

    @property
    def ring(self) -> HashRing:
        return self._backend.ring

    # -- operations ------------------------------------------------------
    def insert(self, key) -> None:
        self._backend.insert_many([_to_bytes(key)])

    def delete(self, key) -> None:
        self._backend.delete_many([_to_bytes(key)])

    def query(self, key) -> bool:
        return bool(self._backend.query_many([_to_bytes(key)])[0])

    def insert_many(self, keys) -> None:
        self._backend.insert_many([_to_bytes(k) for k in keys])

    def delete_many(self, keys) -> None:
        self._backend.delete_many([_to_bytes(k) for k in keys])

    def query_many(self, keys) -> list[bool]:
        return [
            bool(answer)
            for answer in self._backend.query_many(
                [_to_bytes(k) for k in keys]
            )
        ]

    def status(self) -> dict:
        """Topology, health, and per-node replication state."""
        return {
            "router": self._backend.describe(),
            "nodes": self._backend.node_status(),
        }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if self._backend.health is not None:
            self._backend.health.stop()
        self._backend.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
