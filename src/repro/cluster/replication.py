"""Primary→replica streaming of WAL records over the wire protocol.

One :class:`ReplicationManager` runs inside a primary daemon.  Per
replica it keeps a :class:`ReplicaLink` — an asyncio task that connects
(with jittered backoff), handshakes for the replica's last applied
sequence (``REPL_STATUS``), then streams WAL records as ``REPLICATE``
frames and consumes ``ACK`` frames:

.. code-block:: text

    primary                                    replica
      │ REPL_STATUS ───────────────────────────▶ │
      │ ◀─────────────────── JSON {last_seq: n}  │
      │ REPLICATE seq=n+1 ─────────────────────▶ │  (catch-up from WAL)
      │ ◀────────────────────────── ACK seq=n+1  │
      │ REPLICATE seq=n+2 ... (live tail)        │

When the replica is so far behind that the primary's WAL has already
been compacted past its offset, the link falls back to a full-state
transfer (``REPL_SNAPSHOT`` = WAL seq + serialized filter), after which
streaming resumes from that sequence.

Ack modes
---------
``async``   mutations are acknowledged to the client as soon as the
            primary's WAL holds them; replicas drain in the background.
``quorum``  the client ack waits until a majority of the shard group
            (primary + replicas) holds the record — killing the primary
            then loses zero acknowledged mutations, because at least
            one surviving replica has every acked record.
"""

from __future__ import annotations

import asyncio
import contextlib
import enum
import json
import random
import time

from repro.errors import ConfigurationError, ReplicationError
from repro.observability.logging import get_logger
from repro.service.protocol import (
    Opcode,
    ProtocolError,
    decode_ack_body,
    encode_frame,
    encode_repl_snapshot_body,
    encode_replicate_body,
    read_frame,
)

__all__ = ["AckMode", "ReplicaLink", "ReplicationManager"]

logger = get_logger("cluster.replication")


class AckMode(str, enum.Enum):
    """When a mutation is acknowledged back to the client."""

    ASYNC = "async"
    QUORUM = "quorum"


class ReplicaLink:
    """State of one primary→replica stream (owned by the manager)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        #: Highest sequence the replica has acknowledged holding.
        self.acked_seq = 0
        self.connected = False
        self.records_sent = 0
        self.snapshots_sent = 0
        self.last_error: str | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def describe(self) -> dict:
        return {
            "address": self.address,
            "connected": self.connected,
            "acked_seq": self.acked_seq,
            "records_sent": self.records_sent,
            "snapshots_sent": self.snapshots_sent,
            "last_error": self.last_error,
        }


class ReplicationManager:
    """Streams a WAL to a set of replicas and tracks quorum commits.

    Parameters
    ----------
    wal:
        The primary's :class:`~repro.cluster.wal.WriteAheadLog`.
    replicas:
        ``(host, port)`` pairs of replica daemons (their wire ports).
    ack_mode:
        :class:`AckMode` (or its string value).
    snapshot_source:
        Async zero-arg callable returning ``(wal_seq, blob)`` — a
        consistent full-state dump used when a replica needs catch-up
        from before the WAL's first retained record.  The server wires
        this through its batcher so the dump cannot race mutations.
    quorum_timeout_s:
        How long a quorum-mode ack may wait before failing with
        :class:`~repro.errors.ReplicationError`.
    reconnect_backoff_s:
        Initial reconnect delay; grows exponentially with full jitter.
    transport:
        Connection factory for dialling replicas (default: real TCP).
    rng:
        Random source for reconnect jitter (default: the module-level
        :mod:`random` generator); inject a seeded ``random.Random``
        for reproducible reconnect timing under simulation.
    """

    def __init__(
        self,
        wal,
        replicas: list[tuple[str, int]],
        *,
        ack_mode: AckMode | str = AckMode.ASYNC,
        snapshot_source=None,
        quorum_timeout_s: float = 5.0,
        reconnect_backoff_s: float = 0.05,
        batch_records: int = 256,
        transport=None,
        rng=None,
    ) -> None:
        self.wal = wal
        self.ack_mode = AckMode(ack_mode)
        self.snapshot_source = snapshot_source
        self.quorum_timeout_s = quorum_timeout_s
        self.reconnect_backoff_s = reconnect_backoff_s
        self.batch_records = batch_records
        if transport is None:
            from repro.service.transport import REAL_TRANSPORT

            transport = REAL_TRANSPORT
        self.transport = transport
        self._rng = rng if rng is not None else random
        self.links = [ReplicaLink(host, port) for host, port in replicas]
        if self.ack_mode is AckMode.QUORUM and not self.links:
            raise ConfigurationError(
                "quorum ack mode needs at least one replica"
            )
        self._tasks: list[asyncio.Task] = []
        self._append_events: list[asyncio.Event] = []
        self._waiters: list[tuple[int, asyncio.Future]] = []
        self._committed_seq = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False
        self._prev_on_append = None
        self._wal_on_append = None

    # -- quorum arithmetic ----------------------------------------------
    @property
    def group_size(self) -> int:
        """Primary + replicas."""
        return 1 + len(self.links)

    @property
    def quorum(self) -> int:
        """Majority of the shard group."""
        return self.group_size // 2 + 1

    @property
    def replica_acks_needed(self) -> int:
        """Replica acks per record for quorum (primary counts as one)."""
        return max(0, self.quorum - 1)

    @property
    def committed_seq(self) -> int:
        """Highest sequence held by a quorum of the group."""
        return self._committed_seq

    def lag_records(self) -> dict[str, int]:
        """Per-replica replication lag, in WAL records."""
        return {
            link.address: max(0, self.wal.last_seq - link.acked_seq)
            for link in self.links
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Launch one streaming task per replica on the running loop."""
        if self._tasks:
            return
        self._stopping = False
        self._loop = asyncio.get_running_loop()
        self._append_events = [asyncio.Event() for _ in self.links]
        self._prev_on_append = self.wal.on_append
        loop = self._loop

        def on_append(seq: int, _prev=self._prev_on_append) -> None:
            if _prev is not None:
                _prev(seq)
            if loop.is_closed():
                return  # appends may outlive the loop that started us
            try:
                loop.call_soon_threadsafe(self._wake_links)
            except RuntimeError:
                pass  # loop closed between the check and the call

        self._wal_on_append = on_append
        self.wal.on_append = on_append
        self._tasks = [
            loop.create_task(self._run_link(index, link))
            for index, link in enumerate(self.links)
        ]

    def _wake_links(self) -> None:
        for event in self._append_events:
            event.set()

    async def stop(self) -> None:
        """Cancel all links and fail any still-waiting quorum acks."""
        self._stopping = True
        # Unhook our append wrapper (restoring whatever it chained) so
        # repeated start/stop cycles don't stack wrappers and appends
        # after shutdown don't target a dead loop.
        if self._wal_on_append is not None:
            if self.wal.on_append is self._wal_on_append:
                self.wal.on_append = self._prev_on_append
            self._wal_on_append = None
            self._prev_on_append = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._tasks = []
        for seq, future in self._waiters:
            if not future.done():
                future.set_exception(
                    ReplicationError(
                        f"replication stopped before seq {seq} reached quorum"
                    )
                )
        self._waiters = []

    # -- client-facing commit point -------------------------------------
    async def wait_committed(self, seq: int) -> None:
        """Block until ``seq`` satisfies the ack policy.

        ``async`` mode returns immediately (the WAL append already
        happened); ``quorum`` mode waits until enough replicas ack.
        """
        if self.ack_mode is not AckMode.QUORUM or seq <= self._committed_seq:
            return
        assert self._loop is not None, "ReplicationManager not started"
        future: asyncio.Future = self._loop.create_future()
        self._waiters.append((seq, future))
        try:
            await asyncio.wait_for(future, timeout=self.quorum_timeout_s)
        except asyncio.TimeoutError:
            with contextlib.suppress(ValueError):
                self._waiters.remove((seq, future))
            raise ReplicationError(
                f"quorum ({self.quorum}/{self.group_size} nodes) not reached "
                f"for seq {seq} within {self.quorum_timeout_s:.1f}s"
            ) from None

    def _advance_commits(self) -> None:
        needed = self.replica_acks_needed
        if needed == 0:
            committed = self.wal.last_seq
        else:
            acked = sorted(
                (link.acked_seq for link in self.links), reverse=True
            )
            committed = acked[needed - 1] if len(acked) >= needed else 0
        if committed <= self._committed_seq:
            return
        self._committed_seq = committed
        still_waiting: list[tuple[int, asyncio.Future]] = []
        for seq, future in self._waiters:
            if seq <= committed:
                if not future.done():
                    future.set_result(None)
            else:
                still_waiting.append((seq, future))
        self._waiters = still_waiting

    # -- streaming ------------------------------------------------------
    async def _run_link(self, index: int, link: ReplicaLink) -> None:
        attempt = 0
        while not self._stopping:
            writer = None
            try:
                reader, writer = await self.transport.open_connection(
                    link.host, link.port
                )
                attempt = 0
                last_seq = await self._handshake(reader, writer)
                # The handshake value is authoritative: a replica that
                # crashed with an unsynced WAL tail comes back *behind*
                # our last tracked ack, and streaming from the stale
                # cursor would trip its gap check on every reconnect.
                # Re-sent records are deduplicated by the replica's own
                # last_seq, and _advance_commits never regresses, so
                # adopting the reported head is safe in both directions.
                link.acked_seq = last_seq
                link.connected = True
                link.last_error = None
                self._advance_commits()
                logger.info(
                    "replica_connected",
                    extra={"replica": link.address, "last_seq": last_seq},
                )
                await self._stream(index, link, reader, writer)
            except asyncio.CancelledError:
                raise
            except (OSError, ProtocolError, ConnectionError, EOFError) as exc:
                link.last_error = str(exc)
            finally:
                link.connected = False
                if writer is not None:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()
            if self._stopping:
                return
            # Full-jitter exponential backoff: desynchronise the
            # reconnect stampede after a replica restart.
            attempt += 1
            cap = min(2.0, self.reconnect_backoff_s * (2**attempt))
            await asyncio.sleep(self._rng.uniform(0, cap))

    async def _handshake(self, reader, writer) -> int:
        writer.write(encode_frame(Opcode.REPL_STATUS))
        await writer.drain()
        frame = await read_frame(reader)
        if frame is None:
            raise ConnectionError("replica closed during handshake")
        opcode, body = frame
        if opcode != Opcode.JSON:
            raise ProtocolError(
                f"expected JSON status from replica, got {opcode.name}"
            )
        status = json.loads(body.decode("utf-8"))
        return int(status.get("last_seq", 0))

    async def _send_snapshot(self, link: ReplicaLink, reader, writer) -> int:
        if self.snapshot_source is None:
            raise ReplicationError(
                f"replica {link.address} needs records from seq "
                f"{link.acked_seq + 1} but the WAL starts at "
                f"{self.wal.first_seq} and no snapshot source is configured"
            )
        seq, blob = await self.snapshot_source()
        writer.write(
            encode_frame(
                Opcode.REPL_SNAPSHOT, encode_repl_snapshot_body(seq, blob)
            )
        )
        await writer.drain()
        acked = await self._read_ack(reader)
        link.snapshots_sent += 1
        link.acked_seq = max(link.acked_seq, acked)
        self._advance_commits()
        logger.info(
            "replica_snapshot_sent",
            extra={"replica": link.address, "seq": seq, "bytes": len(blob)},
        )
        return acked

    async def _read_ack(self, reader) -> int:
        frame = await read_frame(reader)
        if frame is None:
            raise ConnectionError("replica closed mid-stream")
        opcode, body = frame
        if opcode != Opcode.ACK:
            raise ProtocolError(f"expected ACK from replica, got {opcode.name}")
        return decode_ack_body(body)

    async def _stream(self, index: int, link: ReplicaLink, reader, writer) -> None:
        event = self._append_events[index]
        cursor = None
        while not self._stopping:
            next_seq = link.acked_seq + 1
            if next_seq < self.wal.first_seq:
                await self._send_snapshot(link, reader, writer)
                cursor = None
                continue
            records, cursor = self.wal.read(
                next_seq, cursor=cursor, max_records=self.batch_records
            )
            if not records:
                if next_seq > self.wal.last_seq:
                    # Fully caught up: wait for the next append (with a
                    # timeout so a lost wakeup only costs one poll).
                    event.clear()
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(event.wait(), timeout=0.5)
                else:
                    # Appended but not yet visible to readers; yield.
                    await asyncio.sleep(0.001)
                continue
            for record in records:
                writer.write(
                    encode_frame(
                        Opcode.REPLICATE,
                        encode_replicate_body(
                            record.seq, record.op, record.keys
                        ),
                    )
                )
            await writer.drain()
            for record in records:
                acked = await self._read_ack(reader)
                link.records_sent += 1
                link.acked_seq = max(link.acked_seq, acked, record.seq)
                self._advance_commits()

    # -- reporting ------------------------------------------------------
    def describe(self) -> dict:
        """Plain-dict view for STATS reports and the metrics exporter."""
        return {
            "ack_mode": self.ack_mode.value,
            "group_size": self.group_size,
            "quorum": self.quorum,
            "committed_seq": self._committed_seq,
            "lag_records": self.lag_records(),
            "replicas": [link.describe() for link in self.links],
        }
