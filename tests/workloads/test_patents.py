"""Tests for the NBER-like patent citation generator (§V inputs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.patents import PatentDataset, make_patent_dataset


@pytest.fixture(scope="module")
def dataset() -> PatentDataset:
    return make_patent_dataset(
        n_keys=2000, n_citations=40_000, hit_fraction=0.3, seed=2
    )


class TestPatentDataset:
    def test_shapes(self, dataset):
        assert dataset.patents.shape == (2000, 2)
        assert dataset.citations.shape == (40_000, 2)

    def test_join_keys_unique(self, dataset):
        assert len(np.unique(dataset.join_keys)) == 2000

    def test_hit_ratio_matches_request(self, dataset):
        assert dataset.hit_ratio == pytest.approx(0.3, abs=0.01)

    def test_citation_hits_ground_truth(self, dataset):
        hits = dataset.citation_hits()
        keys = set(dataset.join_keys.tolist())
        for i in range(0, 1000, 97):
            assert hits[i] == (int(dataset.citations[i, 1]) in keys)

    def test_years_plausible(self, dataset):
        years = dataset.patents[:, 1]
        assert years.min() >= 1963
        assert years.max() <= 1999

    def test_deterministic(self):
        a = make_patent_dataset(n_keys=100, n_citations=1000, seed=5)
        b = make_patent_dataset(n_keys=100, n_citations=1000, seed=5)
        np.testing.assert_array_equal(a.citations, b.citations)

    def test_zero_hit_fraction(self):
        d = make_patent_dataset(
            n_keys=100, n_citations=1000, hit_fraction=0.0, seed=1
        )
        assert d.hit_ratio == 0.0

    def test_full_hit_fraction(self):
        d = make_patent_dataset(
            n_keys=100, n_citations=1000, hit_fraction=1.0, seed=1
        )
        assert d.hit_ratio == 1.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            make_patent_dataset(n_keys=100, universe=150)
        with pytest.raises(ConfigurationError):
            make_patent_dataset(hit_fraction=1.5)

    def test_paper_scale_constants(self):
        from repro.workloads.patents import PAPER_CITATIONS, PAPER_JOIN_KEYS

        assert PAPER_CITATIONS == 16_522_438
        assert PAPER_JOIN_KEYS == 71_661
