"""Experiment drivers — one per table/figure of the paper's evaluation.

Each function regenerates the corresponding figure/table as an
:class:`~repro.bench.reporting.ExperimentReport` whose rows carry the
same series the paper plots.  Analytic figures (2, 5, 6, 9) evaluate
the closed forms of :mod:`repro.analysis`; empirical ones (7, 8, 10,
11, 12, Tables I–IV) build real filters, run workloads through them,
and read the measured FPR / access statistics.

All empirical experiments honour ``REPRO_SCALE`` (see
:mod:`repro.bench.scale`) and average over the scale's seed count, as
the paper averages over ten dataset draws.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import (
    bf_fpr,
    cbf_fpr,
    cbf_optimal_k,
    mpcbf_fpr,
    mpcbf_fpr_average,
    mpcbf_optimal_k,
    pcbf_fpr,
    n_max_heuristic,
    query_budget,
    update_budget,
)
from repro.analysis.overflow import (
    any_word_overflow_probability,
    word_overflow_bound,
)
from repro.bench.reporting import ExperimentReport
from repro.bench.scale import Scale, current_scale
from repro.filters import build_suite
from repro.filters.factory import FilterSpec, build_filter
from repro.mapreduce import ClusterCostModel, LocalMapReduceEngine, reduce_side_join
from repro.workloads import (
    make_patent_dataset,
    make_synthetic_workload,
    make_trace_workload,
    run_membership_workload,
)

__all__ = [
    "fig02",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "table1",
    "table2",
    "fig12",
    "table3",
    "table4",
    "all_experiments",
]

_MAIN_VARIANTS = ("CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2")


def _spec(variant: str, memory: int, k: int, capacity: int) -> FilterSpec:
    """FilterSpec with the experiment-grade MPCBF overflow policy."""
    extra = {"word_overflow": "saturate"} if variant.startswith("MPCBF") else {}
    return FilterSpec(
        variant=variant, memory_bits=memory, k=k, capacity=capacity, extra=extra
    )


# ---------------------------------------------------------------------------
# Analytic figures
# ---------------------------------------------------------------------------

def fig02(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 2 — analytic FPR of CBF vs PCBF-1/PCBF-2 across word sizes."""
    scale = scale or current_scale()
    n = scale.synth_members
    k = 3
    report = ExperimentReport(
        "fig2",
        "False positive rates of CBF, PCBF-1 and PCBF-2 vs word size (analytic)",
        paper=(
            "PCBF is always worse than CBF; larger words close the gap; "
            "PCBF-2 is much better than PCBF-1 but still above CBF."
        ),
    )
    for memory in scale.synth_memories:
        row = {"bits_per_elem": memory / n, "CBF": cbf_fpr(n, memory, k)}
        for w in (16, 32, 64, 128, 256):
            row[f"PCBF-1 w={w}"] = pcbf_fpr(n, memory, w, k, g=1)
        for w in (64, 128):
            row[f"PCBF-2 w={w}"] = pcbf_fpr(n, memory, w, k, g=2)
        report.add(**row)
    worst = max(r["PCBF-1 w=64"] / r["CBF"] for r in report.rows)
    report.note(f"PCBF-1(w=64)/CBF FPR ratio up to {worst:.1f}x (paper: >1 always)")
    return report


def fig05(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 5 — analytic FPR of CBF vs MPCBF-1/MPCBF-2, k=3."""
    scale = scale or current_scale()
    n = scale.synth_members
    k = 3
    report = ExperimentReport(
        "fig5",
        "False positive rates of CBF, MPCBF-1 and MPCBF-2, k=3 (analytic)",
        paper=(
            "MPCBF-1 is about an order of magnitude below CBF; larger "
            "word sizes decrease the MPCBF rate; MPCBF-2 lower still."
        ),
    )
    for memory in scale.synth_memories:
        row = {"bits_per_elem": memory / n, "CBF": cbf_fpr(n, memory, k)}
        for w in (32, 64):
            try:
                row[f"MPCBF-1 w={w}"] = mpcbf_fpr(n, memory, w, k, g=1)
            except Exception:
                row[f"MPCBF-1 w={w}"] = float("nan")
        row["MPCBF-2 w=64"] = mpcbf_fpr(n, memory, 64, k, g=2)
        # The curves the paper actually plots are the *average* rates
        # (f_avg, end of SSIII.B.3, with b1 = w - k*n/l).
        row["avg MPCBF-1 w=64"] = mpcbf_fpr_average(n, memory, 64, k, g=1)
        row["avg MPCBF-2 w=64"] = mpcbf_fpr_average(n, memory, 64, k, g=2)
        report.add(**row)
    mid = report.rows[len(report.rows) // 2]
    report.note(
        f"CBF/avg-MPCBF-1(w=64) ratio at mid memory: "
        f"{mid['CBF'] / mid['avg MPCBF-1 w=64']:.1f}x (paper: ~10x); "
        f"worst-case Eq. 9 sizing gives "
        f"{mid['CBF'] / mid['MPCBF-1 w=64']:.1f}x"
    )
    return report


def fig06(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 6 — word-overflow probability of MPCBF-1, n=100K, k=3."""
    scale = scale or current_scale()
    n = scale.synth_members
    report = ExperimentReport(
        "fig6",
        "Word overflow probability of MPCBF-1 (exact tail and Eq. 6 bound)",
        paper=(
            "w=64 gives more freedom in n_max and lower overflow "
            "probability than w=32; probability falls steeply with n_max."
        ),
    )
    for w in (32, 64):
        for memory in scale.synth_memories:
            l = memory // w
            n_star = n_max_heuristic(n, l)
            for n_max in range(max(1, n_star - 2), n_star + 3):
                report.add(
                    w=w,
                    bits_per_elem=memory / n,
                    n_max=n_max,
                    heuristic_n_max=n_star,
                    p_any_overflow=any_word_overflow_probability(n, l, n_max),
                    eq6_bound=min(1.0, l * word_overflow_bound(n, l, n_max)),
                )
    return report


def fig09(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 9 — optimal k vs memory for CBF and MPCBF-1/2/3."""
    scale = scale or current_scale()
    n = scale.synth_members
    report = ExperimentReport(
        "fig9",
        "Optimal number of hash functions vs memory",
        paper=(
            "CBF's optimal k climbs from ~6 to ~12 across the memory "
            "range; MPCBF's stays nearly constant (3 for MPCBF-1, "
            "4-5 for MPCBF-2, 5 for MPCBF-3)."
        ),
    )
    for memory in scale.synth_memories:
        row = {
            "bits_per_elem": memory / n,
            "CBF": cbf_optimal_k(memory, n),
        }
        for g in (1, 2, 3):
            k_opt, _ = mpcbf_optimal_k(memory, n, 64, g=g)
            row[f"MPCBF-{g}"] = k_opt
        report.add(**row)
    return report


# ---------------------------------------------------------------------------
# Empirical synthetic experiments (§IV.B)
# ---------------------------------------------------------------------------

def _run_synthetic_grid(
    variants: tuple[str, ...],
    k: int,
    scale: Scale,
    *,
    memories: tuple[int, ...] | None = None,
) -> dict[tuple[str, int], list]:
    """Run the §IV protocol over (variant × memory) averaged over seeds."""
    results: dict[tuple[str, int], list] = {}
    memories = memories or scale.synth_memories
    for seed in range(scale.repeats):
        workload = make_synthetic_workload(
            n_members=scale.synth_members,
            n_queries=scale.synth_queries,
            seed=seed,
        )
        for memory in memories:
            suite = build_suite(
                list(variants),
                memory,
                k,
                capacity=scale.synth_members,
                seed=seed,
            )
            for name, filt in suite.items():
                res = run_membership_workload(filt, workload)
                results.setdefault((name, memory), []).append(res)
    return results


def fig07(scale: Scale | None = None, *, ks: tuple[int, ...] = (3, 4)) -> ExperimentReport:
    """Fig. 7 — empirical FPR of all five variants, k=3 and k=4."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "fig7",
        "Empirical false positive rates on synthetic data (k=3 and k=4)",
        paper=(
            "At equal memory MPCBF-2's FPR is ~23x below PCBF and ~13x "
            "below CBF at k=3; at k=4 MPCBF-1 is slightly worse than CBF "
            "but MPCBF-2 still far better."
        ),
    )
    for k in ks:
        grid = _run_synthetic_grid(_MAIN_VARIANTS, k, scale)
        for memory in scale.synth_memories:
            row: dict = {"k": k, "bits_per_elem": memory / scale.synth_members}
            for name in _MAIN_VARIANTS:
                runs = grid[(name, memory)]
                row[name] = float(
                    np.mean([r.false_positive_rate for r in runs])
                )
            report.add(**row)
    for row in report.rows:
        if row["MPCBF-2"] > 0:
            report.note(
                f"k={row['k']} m/n={row['bits_per_elem']:.0f}: "
                f"CBF/MPCBF-2 = {row['CBF'] / row['MPCBF-2']:.1f}x"
            )
            break
    return report


def fig08(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 8 — execution time of the bulk query set, k=3."""
    scale = scale or current_scale()
    k = 3
    report = ExperimentReport(
        "fig8",
        "Execution time of bulk queries, k=3 (seconds, this machine)",
        paper=(
            "Time is ~flat in memory; PCBF-1/MPCBF-1 beat CBF (fewer "
            "gathers at equal hash work); PCBF-2/MPCBF-2 pay one extra "
            "hash computation and come in slower than CBF in software."
        ),
    )
    workload = make_synthetic_workload(
        n_members=scale.synth_members, n_queries=scale.synth_queries, seed=0
    )
    encoded_queries = workload.encoded_queries()
    for memory in scale.synth_memories:
        suite = build_suite(
            list(_MAIN_VARIANTS), memory, k, capacity=scale.synth_members, seed=0
        )
        row: dict = {"bits_per_elem": memory / scale.synth_members}
        for name, filt in suite.items():
            filt.insert_many(workload.members)
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                filt.query_many(encoded_queries)
                best = min(best, time.perf_counter() - t0)
            row[name] = best
        report.add(**row)
    return report


def fig10(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 10 — FPR with each structure at its own optimal k."""
    scale = scale or current_scale()
    n = scale.synth_members
    report = ExperimentReport(
        "fig10",
        "False positive rates at optimal k (analytic + empirical)",
        paper=(
            "With optimal k CBF narrows the gap (needs ~12 accesses to "
            "match MPCBF-2's 2); MPCBF-3 stays ~an order of magnitude "
            "below optimal-k CBF."
        ),
    )
    for memory in scale.synth_memories:
        k_cbf = cbf_optimal_k(memory, n)
        row: dict = {
            "bits_per_elem": memory / n,
            "CBF k": k_cbf,
            "CBF": bf_fpr(n, memory // 4, k_cbf),
        }
        for g in (1, 2, 3):
            k_opt, fpr = mpcbf_optimal_k(memory, n, 64, g=g)
            row[f"MPCBF-{g} k"] = k_opt
            row[f"MPCBF-{g}"] = fpr
        report.add(**row)
    # Empirical spot check at the largest memory.
    memory = scale.synth_memories[-1]
    workload = make_synthetic_workload(
        n_members=n, n_queries=scale.synth_queries, seed=0
    )
    k_cbf = cbf_optimal_k(memory, n)
    for variant, k in [("CBF", k_cbf)] + [
        (f"MPCBF-{g}", mpcbf_optimal_k(memory, n, 64, g=g)[0]) for g in (1, 2, 3)
    ]:
        filt = build_filter(_spec(variant, memory, k, n))
        res = run_membership_workload(filt, workload)
        report.note(
            f"empirical {variant} at k={k}, m/n={memory / n:.0f}: "
            f"fpr={res.false_positive_rate:.2e}"
        )
    return report


def fig11(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 11 — query overhead (accesses, bandwidth) at optimal k."""
    scale = scale or current_scale()
    n = scale.synth_members
    report = ExperimentReport(
        "fig11",
        "Query overhead at optimal k: memory accesses and bandwidth",
        paper=(
            "CBF needs 5.2-10 accesses per query as optimal k grows; "
            "MPCBF-1/2/3 stay constant at 1.0 / 1.8 / 2.6."
        ),
    )
    workload = make_synthetic_workload(
        n_members=n, n_queries=max(scale.synth_queries // 5, 10_000), seed=0
    )
    for memory in scale.synth_memories:
        k_cbf = cbf_optimal_k(memory, n)
        configs = [("CBF", k_cbf, None)] + [
            (f"MPCBF-{g}", mpcbf_optimal_k(memory, n, 64, g=g)[0], g)
            for g in (1, 2, 3)
        ]
        row: dict = {"bits_per_elem": memory / n}
        for variant, k, g in configs:
            filt = build_filter(_spec(variant, memory, k, n))
            res = run_membership_workload(filt, workload)
            row[f"{variant} acc"] = round(res.mean_query_accesses, 2)
            row[f"{variant} bits"] = round(res.mean_query_bits, 1)
        report.add(**row)
    return report


def _overhead_table(
    kind: str, scale: Scale, ks: tuple[int, ...] = (3, 4)
) -> ExperimentReport:
    """Shared driver for Tables I (query) and II (update)."""
    titles = {
        "query": ("table1", "Query overhead with k=3 and k=4"),
        "update": ("table2", "Update overhead with k=3 and k=4"),
    }
    exp_id, title = titles[kind]
    paper = (
        "CBF pays k accesses and k*log2(m) bits; PCBF/MPCBF pay g "
        "accesses; MPCBF's bandwidth is slightly above PCBF's "
        "(hierarchy traversal on updates)."
    )
    report = ExperimentReport(exp_id, title, paper=paper)
    memory = scale.synth_memories[len(scale.synth_memories) // 2]
    workload = make_synthetic_workload(
        n_members=scale.synth_members,
        n_queries=max(scale.synth_queries // 5, 10_000),
        seed=0,
    )
    for k in ks:
        suite = build_suite(
            list(_MAIN_VARIANTS),
            memory,
            k,
            capacity=scale.synth_members,
            seed=0,
        )
        for name, filt in suite.items():
            res = run_membership_workload(filt, workload)
            if kind == "query":
                acc, bits = res.mean_query_accesses, res.mean_query_bits
            else:
                acc, bits = res.mean_update_accesses, res.mean_update_bits
            base = name.split("-")[0]
            g = int(name.split("-")[1]) if "-" in name else 1
            budget_fn = query_budget if kind == "query" else update_budget
            budget = budget_fn(
                "CBF" if base == "CBF" else base,
                memory,
                k,
                g=g,
                n=scale.synth_members,
            )
            report.add(
                k=k,
                structure=name,
                measured_accesses=round(acc, 2),
                measured_bits=round(bits, 1),
                model_accesses=budget.memory_accesses,
                model_bits=round(budget.total_bits, 1),
            )
    return report


def table1(scale: Scale | None = None) -> ExperimentReport:
    """Table I — query overhead with k=3 and k=4."""
    return _overhead_table("query", scale or current_scale())


def table2(scale: Scale | None = None) -> ExperimentReport:
    """Table II — update overhead with k=3 and k=4."""
    return _overhead_table("update", scale or current_scale())


# ---------------------------------------------------------------------------
# Trace experiments (§IV.D)
# ---------------------------------------------------------------------------

def _run_trace(scale: Scale, memory: int, k: int, seed: int):
    """Run the trace protocol over one memory budget; returns results."""
    trace = make_trace_workload(
        n_unique=scale.trace_unique,
        n_observations=scale.trace_observations,
        n_inserted=scale.trace_inserted,
        seed=seed,
    )
    members = trace.member_keys()
    queries = trace.query_keys()
    truth = trace.query_is_member()
    suite = build_suite(
        list(_MAIN_VARIANTS), memory, k, capacity=scale.trace_inserted, seed=seed
    )
    out = {}
    for name, filt in suite.items():
        filt.insert_many(members)
        # Update period: delete then re-insert 20% of the members, as §IV.A.
        churn = members[: scale.trace_inserted // 5]
        filt.delete_many(churn)
        filt.insert_many(churn)
        update_stats = filt.stats.update
        u_acc, u_bits = update_stats.mean_accesses, update_stats.mean_bits
        filt.reset_stats()
        answers = filt.query_many(queries)
        negatives = ~truth
        fpr = float(answers[negatives].mean())
        assert bool(answers[truth].all()), f"{name}: false negative on trace"
        out[name] = {
            "fpr": fpr,
            "q_acc": filt.stats.query.mean_accesses,
            "q_bits": filt.stats.query.mean_bits,
            "u_acc": u_acc,
            "u_bits": u_bits,
        }
    return out


def fig12(scale: Scale | None = None) -> ExperimentReport:
    """Fig. 12 — FPR on (CAIDA-shaped) IP traces, k=3."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "fig12",
        "False positive rates with k=3 on IP traces",
        paper=(
            "8→16 Mb: CBF falls 0.66%→0.083%; MPCBF-2 0.15%→0.012% "
            "(~6.9x below CBF); MPCBF-1 slightly above CBF but close."
        ),
    )
    # The trace FPR is weighted by heavy Zipf flows (one false-positive
    # elephant flow moves the rate visibly), so average over seeds.
    for memory in scale.trace_memories:
        acc: dict[str, list[float]] = {}
        for seed in range(scale.repeats):
            rows = _run_trace(scale, memory, k=3, seed=seed)
            for name, vals in rows.items():
                acc.setdefault(name, []).append(vals["fpr"])
        report.add(
            bits_per_inserted=memory / scale.trace_inserted,
            **{name: float(np.mean(v)) for name, v in acc.items()},
        )
    return report


def table3(scale: Scale | None = None) -> ExperimentReport:
    """Table III — processing overhead with k=3 on IP traces."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "table3",
        "Processing overhead with k=3 on IP traces",
        paper=(
            "CBF: 2.1 query accesses / 46 bits, 3.0 update accesses / 66 "
            "bits; MPCBF-1: 1.0 / 28 and 1.0 / 36; MPCBF-2: 1.5 / 39 and "
            "2.0 / 56."
        ),
    )
    memory = scale.trace_memories[0]
    rows = _run_trace(scale, memory, k=3, seed=0)
    for name, vals in rows.items():
        report.add(
            structure=name,
            query_accesses=round(vals["q_acc"], 2),
            query_bits=round(vals["q_bits"], 1),
            update_accesses=round(vals["u_acc"], 2),
            update_bits=round(vals["u_bits"], 1),
        )
    return report


# ---------------------------------------------------------------------------
# MapReduce join (§V, Table IV)
# ---------------------------------------------------------------------------

def table4(scale: Scale | None = None) -> ExperimentReport:
    """Table IV — reduce-side join in MapReduce with CBF vs MPCBF."""
    scale = scale or current_scale()
    report = ExperimentReport(
        "table4",
        "Join performance in MapReduce (reduce-side join + filters)",
        paper=(
            "FPR 35.7% (CBF) → 9.7% (MPCBF-1) → 4.4% (MPCBF-2); map "
            "outputs cut 26.7% / 30.3%; total time cut 14.3% / 15.2%."
        ),
    )
    # hit_fraction calibrated so the relative map-output reduction of
    # MPCBF over CBF lands in the paper's regime (its 26.7% cut at
    # 35.7%→9.7% FPR implies ~0.35-0.4 of citations join).
    dataset = make_patent_dataset(
        n_keys=scale.join_keys,
        n_citations=scale.join_citations,
        hit_fraction=0.35,
        seed=0,
    )
    # Filter memory deliberately tight (~10 bits/key) so the CBF FPR
    # lands in the tens of percent like the paper's 35.7% (they sized
    # the filter for the small relation).  The join filter is built
    # once and never deleted from, so MPCBF uses *average-case* sizing
    # (n_max ≈ g·n/l, the paper's own f_avg analysis at the end of
    # §III.B.3) with the saturate policy instead of the churn-safe
    # Eq. 11 bound, which would crush b1 at this load.
    memory = scale.join_keys * 10
    l = memory // 64
    engine = LocalMapReduceEngine(cost_model=ClusterCostModel())
    baseline = reduce_side_join(dataset, None, engine=engine)

    def join_spec(variant: str) -> FilterSpec:
        if not variant.startswith("MPCBF"):
            return _spec(variant, memory, 3, scale.join_keys)
        g = int(variant.split("-")[1])
        n_max = max(1, round(g * scale.join_keys / l))
        return FilterSpec(
            variant=variant,
            memory_bits=memory,
            k=3,
            capacity=scale.join_keys,
            n_max=n_max,
            extra={"word_overflow": "saturate"},
        )

    specs = [(v, join_spec(v)) for v in ("CBF", "MPCBF-1", "MPCBF-2")]
    reports = {"none": baseline}
    for name, spec in specs:
        filt = build_filter(spec)
        rep = reduce_side_join(dataset, filt, engine=engine)
        assert rep.joined_rows == baseline.joined_rows, (
            f"{name} lost join rows: {rep.joined_rows} != {baseline.joined_rows}"
        )
        reports[name] = rep
    # The paper's "reduce X% of the map outputs / execution time" is
    # relative to the CBF-filtered job, so both references are shown.
    cbf = reports["CBF"]
    for name, rep in reports.items():
        map_cut_none = 1 - rep.map_output_records / baseline.map_output_records
        time_cut_none = 1 - rep.modelled_seconds / baseline.modelled_seconds
        map_cut_cbf = 1 - rep.map_output_records / cbf.map_output_records
        time_cut_cbf = 1 - rep.modelled_seconds / cbf.modelled_seconds
        report.add(
            structure=name,
            fpr=rep.filter_fpr,
            map_output_records=rep.map_output_records,
            cut_vs_none=f"{100 * map_cut_none:.1f}%",
            cut_vs_cbf=f"{100 * map_cut_cbf:.1f}%",
            modelled_s=round(rep.modelled_seconds, 3),
            time_vs_cbf=f"{100 * time_cut_cbf:.1f}%",
            joined_rows=rep.joined_rows,
        )
    return report


def all_experiments(scale: Scale | None = None) -> list[ExperimentReport]:
    """Run every driver in figure/table order."""
    scale = scale or current_scale()
    return [
        fig02(scale),
        fig05(scale),
        fig06(scale),
        fig07(scale),
        fig08(scale),
        fig09(scale),
        fig10(scale),
        fig11(scale),
        table1(scale),
        table2(scale),
        fig12(scale),
        table3(scale),
        table4(scale),
    ]
