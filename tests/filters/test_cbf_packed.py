"""Packed-storage CBF: equivalence with the fast representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.cbf import CountingBloomFilter


def make_pair(num_counters=2048, k=3, seed=5, **kw):
    fast = CountingBloomFilter(num_counters, k, seed=seed, storage="fast", **kw)
    packed = CountingBloomFilter(
        num_counters, k, seed=seed, storage="packed", **kw
    )
    return fast, packed


class TestPackedCBFEquivalence:
    def test_counters_identical_after_ops(self, small_keys):
        fast, packed = make_pair()
        fast.insert_many(small_keys)
        packed.insert_many(small_keys)
        np.testing.assert_array_equal(fast.counters, packed.counters)
        fast.delete_many(small_keys[:50])
        packed.delete_many(small_keys[:50])
        np.testing.assert_array_equal(fast.counters, packed.counters)

    def test_queries_identical(self, small_keys, negative_keys):
        fast, packed = make_pair()
        fast.insert_many(small_keys)
        packed.insert_many(small_keys)
        np.testing.assert_array_equal(
            fast.query_many(negative_keys), packed.query_many(negative_keys)
        )
        np.testing.assert_array_equal(
            fast.query_many(small_keys), packed.query_many(small_keys)
        )

    def test_counts_identical(self, small_keys):
        fast, packed = make_pair()
        for key in small_keys[:20]:
            fast.insert(key)
            fast.insert(key)
            packed.insert(key)
            packed.insert(key)
        for key in small_keys[:20]:
            assert fast.count(key) == packed.count(key)


class TestPackedCBFSemantics:
    def test_memory_footprint_faithful(self):
        packed = CountingBloomFilter(1000, 3, storage="packed")
        # 1000 4-bit counters = 4000 bits → 63 limbs → 4032 bits.
        assert packed.total_bits == 4032

    def test_overflow_raises(self):
        packed = CountingBloomFilter(64, 1, counter_bits=2, storage="packed")
        for _ in range(3):
            packed.insert("same")
        with pytest.raises(CounterOverflowError):
            packed.insert("same")

    def test_underflow_raises(self):
        packed = CountingBloomFilter(64, 3, storage="packed")
        with pytest.raises(CounterUnderflowError):
            packed.delete("ghost")

    def test_saturate_policy(self):
        packed = CountingBloomFilter(
            64, 1, counter_bits=2, storage="packed", overflow="saturate"
        )
        for _ in range(5):
            packed.insert("same")
        assert packed.saturation_events == 2
        assert packed.count("same") == 3

    def test_invalid_storage(self):
        with pytest.raises(ConfigurationError):
            CountingBloomFilter(64, 3, storage="compressed")

    def test_packed_requires_supported_width(self):
        with pytest.raises(ConfigurationError):
            CountingBloomFilter(64, 3, counter_bits=3, storage="packed")

    def test_full_cycle(self, small_keys):
        packed = CountingBloomFilter(4096, 3, storage="packed")
        packed.insert_many(small_keys)
        assert packed.query_many(small_keys).all()
        packed.delete_many(small_keys)
        assert not packed.query_many(small_keys).any()
        assert packed.counters.sum() == 0
