"""Bank-level traffic simulation (beyond the paper).

Wraps :func:`repro.bench.ablations.banked_traffic`: derives every SRAM
request's bank from the filters' own hashing over uniform and
elephant-flow streams, exposing the skew sensitivity the paper's
uniform access model cannot show.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.ablations import banked_traffic


def test_banked_traffic(benchmark, scale, capsys):
    report = run_once(benchmark, banked_traffic, scale)
    with capsys.disabled():
        print()
        print(report.render())
    rows = {r["traffic"]: r for r in report.rows}
    # Skew concentrates MPCBF's requests: hot-bank share must climb.
    assert rows["hot 90%"]["MPCBF-1 hot-bank"] > rows["uniform"]["MPCBF-1 hot-bank"]
    # And throughput must fall for both designs under heavy skew.
    for name in ("MPCBF-1", "CBF"):
        assert rows["hot 90%"][f"{name} Mops"] < rows["uniform"][f"{name} Mops"]
