"""Paper-scale regression checks (opt-in: ``REPRO_SCALE=paper``).

These reproduce the paper's headline numbers at its exact dataset
sizes; they take tens of minutes, so CI skips them unless the paper
scale is explicitly requested.  Keeping them as *tests* (not just
benchmarks) pins the quantitative claims in EXPERIMENTS.md to
assertions.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import cbf_fpr, mpcbf_fpr_average, cbf_optimal_k

paper_scale = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE", "ci").lower() != "paper",
    reason="paper-scale run; set REPRO_SCALE=paper to enable",
)


class TestAnalyticHeadlinesAtPaperScale:
    """The closed forms at n=100K run instantly — always checked."""

    def test_fig5_order_of_magnitude(self):
        n = 100_000
        for memory in (4_000_000, 6_000_000, 8_000_000):
            ratio = cbf_fpr(n, memory, 3) / mpcbf_fpr_average(n, memory, 64, 3)
            assert ratio > 8, f"M={memory}: only {ratio:.1f}x"

    def test_fig9_optimal_k_range(self):
        assert 5 <= cbf_optimal_k(4_000_000, 100_000) <= 8
        assert 11 <= cbf_optimal_k(8_000_000, 100_000) <= 15


@paper_scale
class TestEmpiricalHeadlinesAtPaperScale:
    def test_fig7_k3_orderings(self):
        from repro.bench.experiments import fig07
        from repro.bench.scale import current_scale

        report = fig07(current_scale(), ks=(3,))
        for row in report.rows:
            assert row["PCBF-1"] > row["CBF"]
            assert row["MPCBF-2"] < row["CBF"] / 5  # paper: ~13x

    def test_table3_access_counts(self):
        from repro.bench.experiments import table3
        from repro.bench.scale import current_scale

        report = table3(current_scale())
        rows = {r["structure"]: r for r in report.rows}
        assert rows["MPCBF-1"]["query_accesses"] == pytest.approx(1.0, abs=0.05)
        assert 1.9 <= rows["CBF"]["query_accesses"] <= 3.0
        assert 1.4 <= rows["MPCBF-2"]["query_accesses"] <= 1.9

    def test_table4_join_reductions(self):
        from repro.bench.experiments import table4
        from repro.bench.scale import current_scale

        report = table4(current_scale())
        rows = {r["structure"]: r for r in report.rows}
        assert 0.25 <= rows["CBF"]["fpr"] <= 0.45  # paper: 35.7%
        assert rows["MPCBF-1"]["fpr"] < rows["CBF"]["fpr"] / 2
