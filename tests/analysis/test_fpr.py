"""Tests for the closed-form FPR models (Eq. 1-5, 8, 9)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fpr import (
    bf_fpr,
    cbf_fpr,
    mpcbf_fpr,
    mpcbf_fpr_average,
    pcbf_fpr,
)
from repro.errors import ConfigurationError


class TestBfFpr:
    def test_paper_example(self):
        # §II.A: m/n = 10, k = 7 → f ≈ 0.008.
        assert bf_fpr(1000, 10_000, 7) == pytest.approx(0.008, rel=0.1)

    def test_optimal_k_formula(self):
        # At k = (m/n)·ln2 the FPR is (1/2)^k.
        m, n = 32_000, 2000
        k = round((m / n) * math.log(2))
        assert bf_fpr(n, m, k) == pytest.approx(0.5**k, rel=0.1)

    def test_monotone_in_n(self):
        fprs = [bf_fpr(n, 10_000, 3) for n in (100, 500, 1000, 5000)]
        assert fprs == sorted(fprs)

    def test_monotone_in_m(self):
        fprs = [bf_fpr(1000, m, 3) for m in (4000, 8000, 16_000, 32_000)]
        assert fprs == sorted(fprs, reverse=True)

    def test_exact_vs_approx_converge(self):
        exact = bf_fpr(10_000, 100_000, 3, exact=True)
        approx = bf_fpr(10_000, 100_000, 3, exact=False)
        assert exact == pytest.approx(approx, rel=1e-3)

    @given(
        st.integers(1, 10_000),
        st.integers(10, 100_000),
        st.integers(1, 10),
    )
    def test_is_probability(self, n, m, k):
        assert 0.0 <= bf_fpr(n, m, k) <= 1.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            bf_fpr(0, 100, 3)


class TestCbfFpr:
    def test_equivalent_to_bf_on_counters(self):
        assert cbf_fpr(1000, 40_000, 3) == bf_fpr(1000, 10_000, 3)

    def test_counter_width_matters(self):
        # Same memory, wider counters → fewer counters → worse FPR.
        assert cbf_fpr(1000, 40_000, 3, counter_bits=8) > cbf_fpr(
            1000, 40_000, 3, counter_bits=4
        )


class TestPcbfFpr:
    def test_worse_than_cbf(self):
        # Fig. 2's core message.
        n, M, k = 10_000, 600_000, 3
        for w in (16, 32, 64, 128):
            assert pcbf_fpr(n, M, w, k) > cbf_fpr(n, M, k)

    def test_converges_to_cbf_with_word_size(self):
        # "when w increases the false positive rate of PCBF-1 converges
        # to that of CBF."
        n, M, k = 10_000, 600_000, 3
        gaps = [
            pcbf_fpr(n, M, w, k) / cbf_fpr(n, M, k) for w in (16, 64, 256, 1024)
        ]
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 1.6

    def test_g2_below_g1(self):
        n, M, k = 10_000, 600_000, 3
        assert pcbf_fpr(n, M, 64, k, g=2) < pcbf_fpr(n, M, 64, k, g=1)

    def test_montecarlo_agreement(self, rng):
        # Empirical PCBF-1 FPR must match Eq. (2).
        from repro.filters.pcbf import PartitionedCBF

        n, num_words, k = 3000, 1024, 3
        filt = PartitionedCBF(num_words, 64, k, seed=3)
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        filt.insert_many(members)
        negatives = (
            rng.integers(1, 2**62, size=300_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        measured = float(filt.query_many(negatives).mean())
        predicted = pcbf_fpr(n, num_words * 64, 64, k)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_memory_too_small(self):
        with pytest.raises(ConfigurationError):
            pcbf_fpr(100, 32, 64, 3)


class TestMpcbfFpr:
    def test_better_than_cbf_k3(self):
        # Fig. 5's core message at k=3.
        n, M, k = 100_000, 6_000_000, 3
        assert mpcbf_fpr(n, M, 64, k) < cbf_fpr(n, M, k)

    def test_order_of_magnitude_at_paper_scale(self):
        # Fig. 5 plots the *average* MPCBF rate (f_avg with
        # b1 = w − k·n/l); that is the curve sitting an order of
        # magnitude below CBF.  The worst-case Eq. 9 sizing is closer.
        n, M, k = 100_000, 6_000_000, 3
        avg_ratio = cbf_fpr(n, M, k) / mpcbf_fpr_average(n, M, 64, k)
        worst_ratio = cbf_fpr(n, M, k) / mpcbf_fpr(n, M, 64, k)
        assert avg_ratio > 8  # paper: "an order of magnitude"
        assert worst_ratio > 2

    def test_g2_below_g1(self):
        n, M = 100_000, 6_000_000
        assert mpcbf_fpr(n, M, 64, 3, g=2) < mpcbf_fpr(n, M, 64, 3, g=1)

    def test_explicit_b1_override(self):
        n, M = 10_000, 600_000
        wide = mpcbf_fpr(n, M, 64, 3, first_level_bits=50)
        narrow = mpcbf_fpr(n, M, 64, 3, first_level_bits=20)
        assert wide < narrow

    def test_montecarlo_agreement(self, rng):
        from repro.filters.mpcbf import MPCBF

        n, num_words, k = 3000, 1024, 3
        # saturate: the Eq. 11 heuristic leaves a ~25% chance that one
        # word of the 1024 overflows during the build; a single
        # saturated word shifts the measured FPR by < 0.1%.
        filt = MPCBF(num_words, 64, k, capacity=n, seed=3, word_overflow="saturate")
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        filt.insert_many(members)
        negatives = (
            rng.integers(1, 2**62, size=300_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        measured = float(filt.query_many(negatives).mean())
        predicted = mpcbf_fpr(n, num_words * 64, 64, k, n_max=filt.n_max)
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_average_case_below_worst_case(self):
        n, M = 100_000, 6_000_000
        assert mpcbf_fpr_average(n, M, 64, 3) <= mpcbf_fpr(n, M, 64, 3)

    def test_average_saturates_at_one_when_overloaded(self):
        # k·n/l >= w leaves b1 <= 0: every query is a false positive by
        # convention.
        assert mpcbf_fpr_average(100_000, 3000 * 64, 64, 3) == 1.0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1000, 20_000),
    mem_per_n=st.integers(36, 64),
    k=st.integers(3, 4),
)
def test_variant_ordering_property(n, mem_per_n, k):
    """CBF ≤ PCBF and MPCBF ≲ CBF across the paper's Fig. 7 regime.

    The grid matches the paper's operating point: k ∈ {3, 4} and m/n
    between ~36 and 64.  Outside it the ordering genuinely flips — at
    m/n ≫ 64 most words are empty and partitioning *helps* PCBF; at
    m/n ≪ 36 with large k the worst-case n_max sizing crushes b1 and
    MPCBF degrades (the reason the paper keeps k small for MPCBF)."""
    M = n * mem_per_n
    cbf = cbf_fpr(n, M, k)
    pcbf = pcbf_fpr(n, M, 64, k)
    try:
        mpcbf = mpcbf_fpr(n, M, 64, k)
    except ConfigurationError:
        return  # geometry infeasible (b1 < k); nothing to assert
    assert pcbf >= cbf * 0.9
    assert mpcbf <= cbf * 1.6  # allow small-regime wiggle


class TestBfgFpr:
    def test_worse_than_flat_bf(self):
        from repro.analysis.fpr import bfg_fpr

        n, M, k = 10_000, 600_000, 3
        assert bfg_fpr(n, M, 64, k) > bf_fpr(n, M, k)

    def test_g2_below_g1(self):
        from repro.analysis.fpr import bfg_fpr

        n, M, k = 10_000, 600_000, 4
        assert bfg_fpr(n, M, 64, k, g=2) < bfg_fpr(n, M, 64, k, g=1)

    def test_montecarlo_agreement(self, rng):
        from repro.analysis.fpr import bfg_fpr
        from repro.filters.one_access import OneAccessBloomFilter

        n, num_words, k = 3000, 512, 4
        filt = OneAccessBloomFilter(num_words, 64, k, seed=3)
        members = rng.integers(1, 2**62, size=n).astype(np.uint64)
        filt.insert_many(members)
        negatives = (
            rng.integers(1, 2**62, size=200_000).astype(np.uint64)
            | np.uint64(1 << 63)
        )
        measured = float(filt.query_many(negatives).mean())
        predicted = bfg_fpr(n, num_words * 64, 64, k)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_memory_too_small(self):
        from repro.analysis.fpr import bfg_fpr

        with pytest.raises(ConfigurationError):
            bfg_fpr(100, 32, 64, 3)
