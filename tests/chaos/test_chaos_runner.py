"""End-to-end chaos runs: seeded schedules against the real cluster stack."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.chaos import ChaosRunner, Schedule, run_seed, shrink_schedule

SEEDS_FILE = Path(__file__).parent / "regression_seeds.txt"


def load_regression_seeds():
    cases = []
    for line in SEEDS_FILE.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            seed, steps, nodes = (int(part) for part in line.split())
            cases.append((seed, steps, nodes))
    return cases


class TestSchedule:
    def test_generation_is_pure(self):
        assert Schedule.generate(5, 80, 3) == Schedule.generate(5, 80, 3)
        assert Schedule.generate(5, 80, 3) != Schedule.generate(6, 80, 3)

    def test_json_roundtrip_preserves_digest(self):
        schedule = Schedule.generate(11, 120, 3)
        again = Schedule.from_json(schedule.to_json())
        assert again == schedule
        assert again.digest() == schedule.digest()

    def test_unknown_version_rejected(self):
        blob = json.loads(Schedule.generate(1, 10, 1).to_json())
        blob["version"] = 999
        with pytest.raises(ValueError, match="version"):
            Schedule.from_json(json.dumps(blob))

    def test_crashes_are_paired_with_restarts(self):
        schedule = Schedule.generate(3, 120, 3)
        kinds = [event.kind for event in schedule.events]
        assert kinds.count("crash") == kinds.count("restart")

    def test_shrink_converges_to_minimal_event_set(self):
        schedule = Schedule.generate(5, 120, 3)

        def failing(candidate):
            kinds = {event.kind for event in candidate.events}
            return "crash" in kinds and "reset" in kinds

        assert failing(schedule)
        minimal = shrink_schedule(schedule, failing)
        assert failing(minimal)
        assert len(minimal.events) == 2

    def test_shrink_respects_test_budget(self):
        schedule = Schedule.generate(5, 120, 3)
        calls = []

        def failing(candidate):
            calls.append(1)
            return True  # everything "fails": worst case for ddmin

        shrink_schedule(schedule, failing, max_tests=5)
        assert len(calls) <= 5


class TestRunner:
    def test_seed_grid_no_acked_loss_no_divergence(self):
        for seed in (1, 4):
            report = run_seed(seed, steps=50, nodes=3, shrink=False)
            assert report["ok"], report["violations"]
            assert report["counters"].get("acked", 0) > 0

    def test_report_is_bit_reproducible(self):
        first = run_seed(21, steps=50, nodes=3, shrink=False)
        second = run_seed(21, steps=50, nodes=3, shrink=False)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_single_node_cluster_works(self):
        report = run_seed(2, steps=40, nodes=1, shrink=False)
        assert report["ok"], report["violations"]

    def test_runner_accepts_explicit_schedule(self):
        schedule = Schedule.generate(9, 40, 3)
        report = ChaosRunner(schedule).run()
        assert report["schedule_digest"] == schedule.digest()
        assert report["ok"], report["violations"]


class TestRegressionSeeds:
    """Replay every promoted seed; see regression_seeds.txt for history."""

    @pytest.mark.parametrize(
        "seed,steps,nodes",
        load_regression_seeds(),
        ids=lambda value: str(value),
    )
    def test_regression_seed_passes(self, seed, steps, nodes):
        report = run_seed(seed, steps=steps, nodes=nodes, shrink=False)
        assert report["ok"], (seed, report["violations"])


class TestCli:
    def test_chaos_run_single_seed(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "run", "--seed", "1", "--steps", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed 1: ok" in out

    def test_chaos_run_json_report(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "run", "--seed", "1", "--steps", "40", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["seed"] == 1

    def test_failing_seed_writes_minimal_schedule_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.chaos.runner as runner_mod
        from repro.cli import main

        schedule = Schedule.generate(1, 10, 2)

        def fake_run_seed(seed, *, steps, nodes, shrink):
            return {
                "seed": seed,
                "ok": False,
                "violations": ["injected failure"],
                "events": len(schedule.events),
                "final_seq": 0,
                "schedule_digest": schedule.digest(),
                "minimal_schedule": schedule.to_json(),
            }

        monkeypatch.setattr(runner_mod, "run_seed", fake_run_seed)
        rc = main(
            [
                "chaos", "run", "--seed", "1",
                "--artifacts-dir", str(tmp_path),
            ]
        )
        assert rc == 1
        artifact = tmp_path / "chaos-minimal-1.json"
        assert Schedule.from_json(artifact.read_text()) == schedule
        assert "FAIL" in capsys.readouterr().out
