"""Filter-serving daemon: the network front-end for the library.

The ROADMAP's north star is a system serving heavy concurrent traffic;
this package is that substrate.  An asyncio TCP server
(:mod:`~repro.service.server`) fronts any filter the factory can build
— including a :class:`~repro.parallel.ShardedFilterBank` — and a
micro-batching coalescer (:mod:`~repro.service.batching`) turns
concurrent in-flight requests into the vectorised bulk calls the
library already optimises, so per-request Python overhead amortises the
same way the paper's one-word layout amortises memory accesses.

Modules
-------
* :mod:`~repro.service.protocol` — versioned length-prefixed binary
  wire format (INSERT/QUERY/DELETE/BATCH/STATS/SNAPSHOT/PING).
* :mod:`~repro.service.server` — the daemon (:class:`FilterServer`,
  :func:`serve`).
* :mod:`~repro.service.batching` — the coalescer
  (:class:`MicroBatcher`, :class:`FilterExecutor`).
* :mod:`~repro.service.client` — sync and async clients.
* :mod:`~repro.service.metrics` — op/latency/batch-size metrics behind
  the STATS op.
* :mod:`~repro.service.snapshot` — atomic snapshot/restore through
  :mod:`repro.serialize`.
"""

from repro.service.batching import FilterExecutor, MicroBatcher
from repro.service.client import AsyncFilterClient, FilterClient
from repro.service.metrics import Histogram, ServiceMetrics
from repro.service.protocol import (
    ErrorCode,
    Opcode,
    ProtocolError,
    RemoteError,
)
from repro.service.server import FilterServer, serve
from repro.service.snapshot import SnapshotManager, load_snapshot, write_snapshot

__all__ = [
    "FilterServer",
    "serve",
    "FilterClient",
    "AsyncFilterClient",
    "MicroBatcher",
    "FilterExecutor",
    "ServiceMetrics",
    "Histogram",
    "SnapshotManager",
    "write_snapshot",
    "load_snapshot",
    "Opcode",
    "ErrorCode",
    "ProtocolError",
    "RemoteError",
]
