#!/usr/bin/env python3
"""Serve a sharded MPCBF bank over TCP and drive it with live traffic.

The paper amortises one memory access over ``k`` probes; the daemon in
:mod:`repro.service` amortises Python's per-operation overhead over a
coalesced batch.  This example makes that visible: it starts the
daemon in-process on an ephemeral port, drives it with 8 concurrent
asyncio clients doing mixed insert/query/delete traffic, then prints
the STATS report — watch ``mean_batch_requests`` exceed 1 — and
finishes with a snapshot → restore → identical-answers check.

Run:  python examples/serve_traffic.py   (localhost only, no arguments)
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

from repro.filters.factory import FilterSpec
from repro.parallel import ShardedFilterBank
from repro.service import AsyncFilterClient, FilterServer
from repro.service.snapshot import load_snapshot

CLIENTS = 8
KEYS_PER_CLIENT = 200


async def client_traffic(port: int, c: int) -> list[bytes]:
    """One tenant: insert its keys, query them back, retire a slice."""
    mine = [b"tenant-%d/flow-%d" % (c, i) for i in range(KEYS_PER_CLIENT)]
    async with AsyncFilterClient(port=port) as client:
        await client.insert_many(mine[: KEYS_PER_CLIENT // 2])
        for key in mine[KEYS_PER_CLIENT // 2 :]:
            await client.insert(key)
        answers = await client.query_many(mine)
        assert all(answers), "a member came back negative"
        retired = mine[-20:]
        await client.delete_many(retired)
    return mine[:-20]


async def main() -> None:
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=CLIENTS * KEYS_PER_CLIENT,
            seed=7,
            extra={"word_overflow": "saturate"},
        ),
        num_shards=4,
    )
    snap_path = Path(tempfile.mkdtemp()) / "bank.snap"
    server = FilterServer(bank, port=0, snapshot_path=str(snap_path))
    await server.start()
    print(f"daemon up: {bank.name} on 127.0.0.1:{server.port}")

    started = time.perf_counter()
    live_lists = await asyncio.gather(
        *[client_traffic(server.port, c) for c in range(CLIENTS)]
    )
    elapsed = time.perf_counter() - started
    live = [key for keys in live_lists for key in keys]
    total_ops = CLIENTS * (KEYS_PER_CLIENT // 2 + 1 + 1 + 1 + KEYS_PER_CLIENT)
    print(f"{CLIENTS} concurrent clients finished in {elapsed:.2f}s "
          f"(~{total_ops} requests)")

    async with AsyncFilterClient(port=server.port) as client:
        stats = await client.stats()
        report = await client.snapshot()
    coal = stats["coalescing"]
    print(f"  mean coalesced batch: {coal['mean_batch_requests']:.1f} requests, "
          f"{coal['mean_batch_keys']:.1f} keys")
    batch_p95 = stats["latency_us"]["BATCH"]["p95"]
    print(f"  batched-request p95 latency: {batch_p95:.0f} us")
    print(f"  per-shard inserts: "
          f"{[s['inserts'] for s in stats['filter']['shards']]}")
    print(f"snapshot: {report['bytes']} bytes -> {report['path']}")

    await server.stop()
    print("daemon drained and stopped")

    restored = load_snapshot(snap_path)
    assert all(restored.query_many(live)), "restore lost members"
    print(f"restored {restored.name} from snapshot: "
          f"all {len(live)} live keys still present")


if __name__ == "__main__":
    asyncio.run(main())
