"""Tests for experiment reporting and table rendering."""

from __future__ import annotations

from repro.bench.reporting import ExperimentReport, format_table, format_value


class TestFormatValue:
    def test_small_float_scientific(self):
        assert "e-04" in format_value(2.5e-4)

    def test_normal_float(self):
        assert format_value(0.123) == "0.123"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool(self):
        assert format_value(True) == "True"

    def test_string(self):
        assert format_value("CBF") == "CBF"


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 100, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_columns_come_from_first_row(self):
        # Later rows' extra keys are dropped unless columns are given.
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        assert "3" not in format_table(rows)
        assert "3" in format_table(rows, columns=["a", "b"])


class TestExperimentReport:
    def test_add_and_render(self):
        report = ExperimentReport("fig0", "Demo", paper="something holds")
        report.add(x=1, y=0.5)
        report.add(x=2, y=0.25)
        report.note("observed the trend")
        text = report.render()
        assert "fig0" in text
        assert "something holds" in text
        assert "note: observed the trend" in text
        assert "0.25" in text

    def test_columns_override(self):
        report = ExperimentReport("t", "T", columns=["y"])
        report.add(x=1, y=2)
        assert "x" not in report.render().splitlines()[2]
