"""Client-side cluster routing: the ring without the router daemon.

:class:`ClusterClient` embeds the same :class:`~repro.cluster.router.
HashRing` the router daemon uses, so a process that knows the topology
can talk straight to the shard groups — one network hop instead of two.
The router daemon remains the right front door for clients that should
not carry topology (or that benefit from its server-side coalescing);
both route identically because they share the ring implementation.

Topology is cached per client: the constructor seeds it (spec strings
or a fetched epoch) and no call thereafter touches the ring until the
cluster says it must — a ``MOVED`` redirect or a ``WRONG_EPOCH`` fence
rejection.  Only then does the client refetch the epoch from the nodes
it knows, with full-jitter backoff between attempts, and retry the
operation under the new ring.  During a live resharding this is the
whole client-visible story: a handful of retried calls while the
coordinator bumps the epoch, and zero lost acknowledged writes.

The surface mirrors :class:`~repro.service.client.FilterClient`
(``insert_many`` / ``query_many`` / ``delete_many`` / single-key
helpers), plus :meth:`status` for a cluster-wide health/replication
report — what ``repro cluster status`` prints.
"""

from __future__ import annotations

import time

from repro.cluster.router import (
    HashRing,
    HealthChecker,
    RouterBackend,
    ShardGroup,
    parse_group,
)
from repro.errors import ClusterError, OverloadedError
from repro.service.client import _jittered_delay
from repro.service.protocol import ErrorCode, RemoteError

__all__ = ["ClusterClient"]


def _to_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"cluster keys must be str or bytes, got {type(key).__name__}")


class ClusterClient:
    """Blocking cluster client; usable as a context manager.

    Parameters
    ----------
    groups:
        :class:`ShardGroup` objects or ``NAME=HOST:PORT[,HOST:PORT...]``
        spec strings (see :func:`~repro.cluster.router.parse_group`).
    vnodes:
        Virtual nodes per group — must match the router daemon's setting
        for the two to agree on placement.
    timeout_s:
        Per-call socket timeout.
    check_health:
        When True, probe every node's ``/healthz`` once up front (only
        nodes with a health port participate) so reads skip known-dead
        primaries immediately instead of waiting out a timeout.
    retries, backoff_s:
        Topology-race retry budget.  ``MOVED`` / ``WRONG_EPOCH``
        rejections and unreachable-primary errors back off with
        full-jitter exponential delays, refresh the cached topology,
        and resend — the client-side half of epoch fencing.
    """

    def __init__(
        self,
        groups,
        *,
        vnodes: int = 64,
        timeout_s: float = 5.0,
        check_health: bool = False,
        retries: int = 10,
        backoff_s: float = 0.05,
    ) -> None:
        parsed = [
            group if isinstance(group, ShardGroup) else parse_group(group)
            for group in groups
        ]
        ring = HashRing(parsed, vnodes=vnodes)
        health = None
        if check_health:
            nodes = [node for group in parsed for node in group.nodes]
            health = HealthChecker(nodes)
            health.check_now()
        self.retries = retries
        self.backoff_s = backoff_s
        self._backend = RouterBackend(ring, health=health, timeout_s=timeout_s)

    @property
    def ring(self) -> HashRing:
        return self._backend.ring

    def refresh_topology(self) -> bool:
        """Refetch the ring epoch from the cluster; True when newer.

        Called automatically on redirects; exposed for tooling that
        knows a topology change just happened (e.g. the CLI after a
        ``repro cluster join``).
        """
        return self._backend.refresh_epoch()

    def _with_retry(self, operation):
        """Run ``operation`` through the topology-race retry loop.

        ``MOVED`` means the cached ring is stale; ``WRONG_EPOCH`` means
        the key's range is fenced *right now* and will reopen on the
        new owner within the fence window; ``ClusterError`` and
        ``OSError`` cover a primary that vanished or stalled mid-drain
        (the client drops a timed-out connection, so the retry starts
        on a clean stream).  All are transient by protocol contract,
        so: full-jitter backoff, refresh the cached topology, resend.

        ``OVERLOADED`` — from a node's admission control (a
        :class:`RemoteError` carrying a retry-after hint) or from the
        embedded router's own circuit breaker (a local
        :class:`~repro.errors.OverloadedError`) — is also retried, but
        differently: the client sleeps *at least* the server's
        retry-after hint (plus jitter), and does not refetch topology —
        the ring is fine, the node is busy.  Anything else propagates
        untouched.

        One wrinkle: transport failures also feed the breaker, so a
        plain *dead* group can open it mid-loop.  A local breaker
        rejection carries no information the caller can act on, so when
        the retry budget runs out on one, the last real transport error
        is raised instead — an unreachable group always reports as
        ``ClusterError``, never as a synthesized ``OVERLOADED``.
        """
        last_transport: BaseException | None = None
        for attempt in range(max(1, self.retries)):
            hint = 0.0
            refresh = True
            try:
                return operation()
            except OverloadedError as exc:
                # Raised locally by the router's per-group breaker; no
                # packet was sent, the hint is the remaining cooldown.
                if attempt == self.retries - 1:
                    if last_transport is not None:
                        raise last_transport from exc
                    raise
                hint = exc.retry_after_s or 0.0
                refresh = False
            except RemoteError as exc:
                last_transport = None  # the node answered: it is alive
                if exc.code == ErrorCode.OVERLOADED:
                    if attempt == self.retries - 1:
                        raise
                    hint = exc.retry_after_s or 0.0
                    refresh = False
                elif exc.code not in (ErrorCode.MOVED, ErrorCode.WRONG_EPOCH):
                    raise
                elif attempt == self.retries - 1:
                    raise
            except (ClusterError, OSError) as exc:
                last_transport = exc
                if attempt == self.retries - 1:
                    raise
            time.sleep(hint + _jittered_delay(self.backoff_s, attempt))
            if refresh:
                self.refresh_topology()

    # -- operations ------------------------------------------------------
    def insert(self, key) -> None:
        self.insert_many([key])

    def delete(self, key) -> None:
        self.delete_many([key])

    def query(self, key) -> bool:
        return self.query_many([key])[0]

    def insert_many(self, keys) -> None:
        payload = [_to_bytes(k) for k in keys]
        self._with_retry(lambda: self._backend.insert_many(payload))

    def delete_many(self, keys) -> None:
        payload = [_to_bytes(k) for k in keys]
        self._with_retry(lambda: self._backend.delete_many(payload))

    def query_many(self, keys) -> list[bool]:
        payload = [_to_bytes(k) for k in keys]
        answers = self._with_retry(
            lambda: self._backend.query_many(payload)
        )
        return [bool(answer) for answer in answers]

    def status(self) -> dict:
        """Topology, health, and per-node replication state."""
        return {
            "router": self._backend.describe(),
            "nodes": self._backend.node_status(),
        }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if self._backend.health is not None:
            self._backend.health.stop()
        self._backend.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
