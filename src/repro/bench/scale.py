"""Experiment scale selection.

``REPRO_SCALE=paper`` runs every experiment at the paper's exact sizes
(100K–200K members, 1M–5.6M queries, 16.5M citations) — tens of minutes
of CPU.  The default ``ci`` scale divides dataset sizes by ~10–30 while
keeping every *ratio* (memory-per-element, member fraction, churn
fraction, unique/total trace ratio, join hit ratio) identical, so the
reproduced shapes — orderings, relative factors, crossovers — are
unchanged; only the statistical noise floor rises.  ``quick`` shrinks a
further ~5× for seconds-long smoke runs (shapes hold, tails get noisy).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "current_scale"]


@dataclass(frozen=True)
class Scale:
    """Dataset sizes for one run of the full experiment grid."""

    name: str
    #: §IV synthetic: members inserted / queries issued.
    synth_members: int
    synth_queries: int
    #: §IV memory grid in bits (the paper sweeps 4–8 Mb synthetic,
    #: 8–16 Mb traces; Mb = 10^6 bits in the paper's axes).
    synth_memories: tuple[int, ...]
    #: §IV.D trace: unique flows / observations / inserted flows.
    trace_unique: int
    trace_observations: int
    trace_inserted: int
    trace_memories: tuple[int, ...]
    #: §V join: small-relation keys / citation records.
    join_keys: int
    join_citations: int
    #: Seeds averaged per configuration (paper: 10).
    repeats: int


_CI = Scale(
    name="ci",
    synth_members=10_000,
    synth_queries=100_000,
    synth_memories=(400_000, 500_000, 600_000, 700_000, 800_000),
    trace_unique=29_236,
    trace_observations=558_563,
    trace_inserted=20_000,
    trace_memories=(800_000, 1_200_000, 1_600_000),
    join_keys=7_166,
    join_citations=165_224,
    repeats=3,
)

_PAPER = Scale(
    name="paper",
    synth_members=100_000,
    synth_queries=1_000_000,
    synth_memories=(4_000_000, 5_000_000, 6_000_000, 7_000_000, 8_000_000),
    trace_unique=292_363,
    trace_observations=5_585_633,
    trace_inserted=200_000,
    trace_memories=(8_000_000, 12_000_000, 16_000_000),
    join_keys=71_661,
    join_citations=16_522_438,
    repeats=10,
)

_QUICK = Scale(
    name="quick",
    synth_members=2_000,
    synth_queries=20_000,
    synth_memories=(80_000, 120_000, 160_000),
    trace_unique=2_924,
    trace_observations=55_856,
    trace_inserted=2_000,
    trace_memories=(80_000, 120_000, 160_000),
    join_keys=1_000,
    join_citations=23_060,
    repeats=1,
)

_SCALES = {"quick": _QUICK, "ci": _CI, "paper": _PAPER}


def current_scale() -> Scale:
    """Resolve the active scale from ``REPRO_SCALE`` (default ``ci``)."""
    name = os.environ.get("REPRO_SCALE", "ci").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        ) from None
