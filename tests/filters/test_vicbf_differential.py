"""VI-CBF differential properties against a dict-multiset oracle.

Complements test_properties.py's cross-variant suite with VI-CBF
specific behaviour: variable increments make counter arithmetic easy to
get subtly wrong, so overflow, underflow, and delete-of-absent get
dedicated deterministic coverage here.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CounterOverflowError, CounterUnderflowError
from repro.filters.vicbf import VariableIncrementCBF


def make_filter(seed: int = 0, counter_bits: int = 16) -> VariableIncrementCBF:
    # Wide counters so the differential runs never trip overflow.
    return VariableIncrementCBF(8192, 3, counter_bits=counter_bits, seed=seed)


@st.composite
def op_sequences(draw):
    """Arbitrary legal interleavings over a small key universe."""
    n_ops = draw(st.integers(1, 80))
    ops = []
    live: Counter = Counter()
    for _ in range(n_ops):
        key = draw(st.integers(0, 15))
        if live[key] > 0 and draw(st.booleans()):
            ops.append(("delete", key))
            live[key] -= 1
        else:
            ops.append(("insert", key))
            live[key] += 1
    return ops


class TestMultisetDifferential:
    @settings(max_examples=80, deadline=None)
    @given(op_sequences(), st.integers(0, 3))
    def test_no_false_negatives_under_interleaving(self, ops, seed):
        filt = make_filter(seed)
        oracle: Counter = Counter()
        for op, key_id in ops:
            key = f"vk-{key_id}"
            getattr(filt, op)(key)
            oracle[key] += 1 if op == "insert" else -1
            # Mid-sequence, not just at the end: every present key
            # answers True after *each* operation.
            if oracle[key] > 0:
                assert filt.query(key)
        for key, count in oracle.items():
            assert not count or filt.query(key)

    @settings(max_examples=40, deadline=None)
    @given(op_sequences())
    def test_count_never_below_oracle_multiplicity(self, ops):
        filt = make_filter()
        oracle: Counter = Counter()
        for op, key_id in ops:
            key = f"vk-{key_id}"
            getattr(filt, op)(key)
            oracle[key] += 1 if op == "insert" else -1
        for key, count in oracle.items():
            assert filt.count(key) >= count

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 100), min_size=1, max_size=30))
    def test_scalar_and_bulk_paths_agree(self, key_ids):
        scalar, bulk = make_filter(2), make_filter(2)
        keys = [f"vk-{k}" for k in sorted(key_ids)]
        for key in keys:
            scalar.insert(key)
        bulk.insert_many(keys)
        assert (scalar._counters == bulk._counters).all()
        for key in keys:
            scalar.delete(key)
        bulk.delete_many(keys)
        assert (scalar._counters == bulk._counters).all()
        assert not scalar._counters.any()


class TestOverflow:
    def test_hammering_one_key_overflows_small_counters(self):
        # L=4 increments land in [4, 7]; 4-bit counters saturate fast.
        filt = VariableIncrementCBF(64, 3, counter_bits=4, seed=0)
        with pytest.raises(CounterOverflowError):
            for _ in range(16):
                filt.insert("hot-key")

    def test_bulk_insert_overflow_raises_too(self):
        filt = VariableIncrementCBF(64, 3, counter_bits=4, seed=0)
        with pytest.raises(CounterOverflowError):
            filt.insert_many(["hot-key"] * 16)


class TestDeleteOfAbsent:
    def test_delete_from_empty_filter_underflows(self):
        with pytest.raises(CounterUnderflowError):
            make_filter().delete("never-inserted")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6))
    def test_one_delete_too_many_underflows(self, copies):
        filt = make_filter()
        for _ in range(copies):
            filt.insert("only-key")
        for _ in range(copies):
            filt.delete("only-key")
        assert not filt.query("only-key")
        with pytest.raises(CounterUnderflowError):
            filt.delete("only-key")

    def test_bulk_delete_of_absent_underflows(self):
        with pytest.raises(CounterUnderflowError):
            make_filter().delete_many(["never-inserted"])
