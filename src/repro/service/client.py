"""Client library for the filter-serving daemon (sync + async).

Both clients speak the :mod:`repro.service.protocol` frames over one
TCP connection with strict request/response ordering.  The sync
:class:`FilterClient` is the ergonomic default for scripts and the CLI;
:class:`AsyncFilterClient` is for callers that want many in-flight
connections from one process (the integration tests and the throughput
benchmark drive the daemon's coalescer with it).

Connection establishment retries with full-jitter exponential backoff
(each attempt sleeps ``uniform(0, min(cap, base * 2**attempt))``) —
daemons come up asynchronously and "connect until it answers" is the
protocol every deployment script otherwise reinvents, and the jitter
keeps a fleet of clients (or a router's fan-out) from stampeding a
restarting node in lockstep.

Error frames re-raise as :class:`~repro.service.protocol.RemoteError`,
whose ``code`` preserves which :mod:`repro.errors` failure the server
hit (e.g. ``COUNTER_UNDERFLOW`` for deleting an absent key).
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time

from repro.service.protocol import (
    FrameDecoder,
    Opcode,
    ProtocolError,
    RemoteError,
    decode_error_body,
    encode_batch_body,
    encode_frame,
    read_frame,
    unpack_bools,
)

__all__ = ["FilterClient", "AsyncFilterClient"]

#: Backoff delays never exceed this many seconds, jitter included.
BACKOFF_CAP_S = 2.0


def _jittered_delay(base_s: float, attempt: int) -> float:
    """Full-jitter exponential backoff delay for retry ``attempt`` (0-based)."""
    return random.uniform(0.0, min(BACKOFF_CAP_S, base_s * (2 ** (attempt + 1))))


def _to_bytes(key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"wire keys must be str or bytes, got {type(key).__name__}")


def _check(opcode: Opcode, body: bytes, expected: Opcode):
    if opcode == Opcode.ERROR:
        code, message = decode_error_body(body)
        raise RemoteError(code, message)
    if opcode != expected:
        raise ProtocolError(
            f"expected {expected.name} response, got {opcode.name}"
        )
    return body


class _BaseClient:
    """Request encoding shared by both transports."""

    @staticmethod
    def _single_frame(op: Opcode, key) -> bytes:
        return encode_frame(op, _to_bytes(key))

    @staticmethod
    def _batch_frame(subop: Opcode, keys) -> bytes:
        return encode_frame(
            Opcode.BATCH, encode_batch_body(subop, [_to_bytes(k) for k in keys])
        )


class FilterClient(_BaseClient):
    """Blocking client; usable as a context manager.

    Parameters
    ----------
    host, port:
        Daemon address.
    timeout_s:
        Socket timeout for each call.
    retries, backoff_s:
        Connection attempts and the base retry delay.  Attempt ``n``
        sleeps ``uniform(0, min(2.0, backoff_s * 2**n))`` — full-jitter
        exponential backoff.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        *,
        timeout_s: float = 10.0,
        retries: int = 8,
        backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()

    # -- connection -----------------------------------------------------
    def connect(self) -> "FilterClient":
        """Connect with retry/backoff; returns self for chaining."""
        if self._sock is not None:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.retries)):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._sock = sock
                self._decoder = FrameDecoder()
                return self
            except OSError as exc:
                last_error = exc
                time.sleep(_jittered_delay(self.backoff_s, attempt))
        raise ConnectionError(
            f"cannot reach repro service at {self.host}:{self.port}: {last_error}"
        )

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "FilterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport ------------------------------------------------------
    def _call(self, frame: bytes) -> tuple[Opcode, bytes]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(frame)
            while True:
                for parsed in self._decoder.frames():
                    return parsed
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise ConnectionError("server closed the connection")
                self._decoder.feed(chunk)
        except OSError:
            # A timed-out or failed call leaves the strict request/
            # response stream desynchronised — the reply may arrive
            # later and would answer the *next* request.  Drop the
            # connection so a retry starts on a clean stream.
            self.close()
            raise

    # -- operations -----------------------------------------------------
    def ping(self) -> bool:
        opcode, body = self._call(encode_frame(Opcode.PING))
        _check(opcode, body, Opcode.OK)
        return True

    def insert(self, key) -> None:
        opcode, body = self._call(self._single_frame(Opcode.INSERT, key))
        _check(opcode, body, Opcode.OK)

    def query(self, key) -> bool:
        opcode, body = self._call(self._single_frame(Opcode.QUERY, key))
        _check(opcode, body, Opcode.BOOL)
        return bool(body[0])

    def delete(self, key) -> None:
        opcode, body = self._call(self._single_frame(Opcode.DELETE, key))
        _check(opcode, body, Opcode.OK)

    def insert_many(self, keys) -> None:
        opcode, body = self._call(self._batch_frame(Opcode.INSERT, keys))
        _check(opcode, body, Opcode.OK)

    def query_many(self, keys) -> list[bool]:
        opcode, body = self._call(self._batch_frame(Opcode.QUERY, keys))
        _check(opcode, body, Opcode.BITMAP)
        return unpack_bools(body)

    def delete_many(self, keys) -> None:
        opcode, body = self._call(self._batch_frame(Opcode.DELETE, keys))
        _check(opcode, body, Opcode.OK)

    def stats(self) -> dict:
        opcode, body = self._call(encode_frame(Opcode.STATS))
        _check(opcode, body, Opcode.JSON)
        return json.loads(body.decode("utf-8"))

    def snapshot(self) -> dict:
        opcode, body = self._call(encode_frame(Opcode.SNAPSHOT))
        _check(opcode, body, Opcode.JSON)
        return json.loads(body.decode("utf-8"))

    def call(self, opcode: Opcode, body: bytes = b"") -> tuple[Opcode, bytes]:
        """Send one raw frame; returns ``(opcode, body)`` of the reply.

        Error frames raise :class:`RemoteError` like every typed call.
        The escape hatch the cluster tooling (epoch fetches, migration
        verbs) uses for opcodes without a dedicated method.
        """
        reply_op, reply_body = self._call(encode_frame(opcode, body))
        if reply_op == Opcode.ERROR:
            code, message = decode_error_body(reply_body)
            raise RemoteError(code, message)
        return reply_op, reply_body


class AsyncFilterClient(_BaseClient):
    """Asyncio client mirroring :class:`FilterClient`'s surface."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7757,
        *,
        retries: int = 8,
        backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_s = backoff_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncFilterClient":
        if self._writer is not None:
            return self
        last_error: Exception | None = None
        for attempt in range(max(1, self.retries)):
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                return self
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(_jittered_delay(self.backoff_s, attempt))
        raise ConnectionError(
            f"cannot reach repro service at {self.host}:{self.port}: {last_error}"
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncFilterClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _call(self, frame: bytes) -> tuple[Opcode, bytes]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        try:
            self._writer.write(frame)
            await self._writer.drain()
            parsed = await read_frame(self._reader)
        except OSError:
            # Same desync hazard as the sync client: never reuse a
            # stream whose in-flight reply was abandoned.
            await self.close()
            raise
        if parsed is None:
            await self.close()
            raise ConnectionError("server closed the connection")
        return parsed

    async def ping(self) -> bool:
        opcode, body = await self._call(encode_frame(Opcode.PING))
        _check(opcode, body, Opcode.OK)
        return True

    async def insert(self, key) -> None:
        opcode, body = await self._call(self._single_frame(Opcode.INSERT, key))
        _check(opcode, body, Opcode.OK)

    async def query(self, key) -> bool:
        opcode, body = await self._call(self._single_frame(Opcode.QUERY, key))
        _check(opcode, body, Opcode.BOOL)
        return bool(body[0])

    async def delete(self, key) -> None:
        opcode, body = await self._call(self._single_frame(Opcode.DELETE, key))
        _check(opcode, body, Opcode.OK)

    async def insert_many(self, keys) -> None:
        opcode, body = await self._call(self._batch_frame(Opcode.INSERT, keys))
        _check(opcode, body, Opcode.OK)

    async def query_many(self, keys) -> list[bool]:
        opcode, body = await self._call(self._batch_frame(Opcode.QUERY, keys))
        _check(opcode, body, Opcode.BITMAP)
        return unpack_bools(body)

    async def delete_many(self, keys) -> None:
        opcode, body = await self._call(self._batch_frame(Opcode.DELETE, keys))
        _check(opcode, body, Opcode.OK)

    async def stats(self) -> dict:
        opcode, body = await self._call(encode_frame(Opcode.STATS))
        _check(opcode, body, Opcode.JSON)
        return json.loads(body.decode("utf-8"))

    async def snapshot(self) -> dict:
        opcode, body = await self._call(encode_frame(Opcode.SNAPSHOT))
        _check(opcode, body, Opcode.JSON)
        return json.loads(body.decode("utf-8"))

    async def call(
        self, opcode: Opcode, body: bytes = b""
    ) -> tuple[Opcode, bytes]:
        """Async twin of :meth:`FilterClient.call`."""
        reply_op, reply_body = await self._call(encode_frame(opcode, body))
        if reply_op == Opcode.ERROR:
            code, message = decode_error_body(reply_body)
            raise RemoteError(code, message)
        return reply_op, reply_body
