"""Tests for the Eq. (7) trade-off and design-space planner."""

from __future__ import annotations

import pytest

from repro.analysis.fpr import mpcbf_fpr
from repro.analysis.tradeoffs import (
    cbf_bits_for_fpr,
    cheapest_design,
    efficiency_ratio_bound,
    feasible_designs,
    min_bits_per_element,
)
from repro.errors import ConfigurationError


class TestEq7Bound:
    def test_basic(self):
        assert efficiency_ratio_bound(64, 3, 8) == pytest.approx(8.0)

    def test_paper_w32_example(self):
        # §III.B.4: with w=32, k=3 only efficiency ratios above ~29/3
        # are possible (n_max capped at (32-3)/3 = 9).
        assert min_bits_per_element(32, 3) == pytest.approx(32 / 9)

    def test_infeasible_geometry(self):
        with pytest.raises(ConfigurationError):
            min_bits_per_element(4, 3)

    def test_invalid_n_max(self):
        with pytest.raises(ConfigurationError):
            efficiency_ratio_bound(64, 3, 0)


class TestFeasibleDesigns:
    def test_points_are_internally_consistent(self):
        points = feasible_designs(10_000, bits_per_element_grid=(24, 40, 64))
        assert points
        for p in points:
            assert p.first_level_bits >= p.k
            assert p.memory_bits == int(10_000 * p.bits_per_element)
            assert 0.0 <= p.fpr <= 1.0
            assert p.hash_calls == p.k + p.g - 1
            # Reported FPR matches a direct evaluation.
            assert p.fpr == pytest.approx(
                mpcbf_fpr(10_000, p.memory_bits, 64, p.k, g=p.g), rel=1e-9
            )

    def test_fpr_improves_with_memory_within_g(self):
        points = [
            p
            for p in feasible_designs(
                10_000, gs=(1,), bits_per_element_grid=(24, 40, 64, 96)
            )
        ]
        fprs = [p.fpr for p in sorted(points, key=lambda p: p.bits_per_element)]
        assert fprs == sorted(fprs, reverse=True)


class TestCheapestDesign:
    def test_meets_target(self):
        design = cheapest_design(10_000, 1e-3)
        assert design.fpr <= 1e-3
        assert design.g <= 3

    def test_tighter_target_costs_more(self):
        loose = cheapest_design(10_000, 1e-2)
        tight = cheapest_design(10_000, 1e-4)
        assert tight.bits_per_element >= loose.bits_per_element

    def test_access_budget_respected(self):
        design = cheapest_design(10_000, 1e-3, max_accesses=1)
        assert design.g == 1

    def test_impossible_target(self):
        with pytest.raises(ConfigurationError):
            cheapest_design(10_000, 1e-30)

    def test_mpcbf_cheaper_or_fewer_accesses_than_cbf(self):
        # The paper's value proposition, as a planner invariant: at the
        # same FPR target, MPCBF needs no more memory than CBF needs
        # while using at most 3 accesses vs CBF's optimal k.
        target = 1e-4
        design = cheapest_design(20_000, target)
        cbf_bpe, cbf_k = cbf_bits_for_fpr(20_000, target)
        assert design.bits_per_element <= cbf_bpe * 1.25
        assert design.memory_accesses < cbf_k


class TestCbfBitsForFpr:
    def test_monotone(self):
        loose, _ = cbf_bits_for_fpr(10_000, 1e-2)
        tight, _ = cbf_bits_for_fpr(10_000, 1e-5)
        assert tight > loose

    def test_unreachable(self):
        with pytest.raises(ConfigurationError):
            cbf_bits_for_fpr(10_000, 1e-30, max_bits_per_element=64)
