"""Wire-level overload surface: DEADLINE bodies and retry-after hints."""

from __future__ import annotations

import struct

import pytest

from repro.service.protocol import (
    MAX_BUDGET_US,
    ErrorCode,
    Opcode,
    ProtocolError,
    RemoteError,
    decode_deadline_body,
    encode_deadline_body,
    format_retry_after,
    parse_retry_after,
)


class TestDeadlineBody:
    def test_round_trip(self):
        body = encode_deadline_body(12_345, Opcode.QUERY, b"payload")
        assert decode_deadline_body(body) == (12_345, Opcode.QUERY, b"payload")

    def test_budget_clamps_to_u32(self):
        body = encode_deadline_body(MAX_BUDGET_US + 99, Opcode.PING, b"")
        budget_us, _, _ = decode_deadline_body(body)
        assert budget_us == MAX_BUDGET_US

    def test_negative_budget_rejected(self):
        with pytest.raises(ProtocolError):
            encode_deadline_body(-1, Opcode.QUERY, b"")

    def test_nesting_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="nest"):
            encode_deadline_body(10, Opcode.DEADLINE, b"")

    def test_nesting_rejected_on_decode(self):
        body = struct.pack("<IB", 10, Opcode.DEADLINE.value)
        with pytest.raises(ProtocolError, match="nest"):
            decode_deadline_body(body)

    def test_truncated_body_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_deadline_body(b"\x01\x02")

    def test_unknown_inner_opcode_rejected(self):
        body = struct.pack("<IB", 10, 0xEE)
        with pytest.raises(ProtocolError, match="0xee"):
            decode_deadline_body(body)


class TestRetryAfterHint:
    def test_round_trip(self):
        wire = format_retry_after(0.25, "token bucket empty")
        assert wire == "retry_after_ms=250; token bucket empty"
        assert parse_retry_after(wire) == (0.25, "token bucket empty")

    def test_none_passes_through(self):
        assert format_retry_after(None, "plain") == "plain"
        assert parse_retry_after("plain") == (None, "plain")

    def test_sub_millisecond_hints_round_up_to_one_ms(self):
        # The wire unit is integer ms; a zero hint would invite a
        # busy-spin, so the floor is 1ms.
        wire = format_retry_after(0.0001, "m")
        assert parse_retry_after(wire) == (0.001, "m")

    @pytest.mark.parametrize(
        "wire",
        [
            "retry_after_ms=abc; m",  # non-numeric
            "retry_after_ms=50",  # missing "; " separator
            "retry_after_ms=; m",  # empty value
        ],
    )
    def test_malformed_hints_are_advisory(self, wire):
        assert parse_retry_after(wire) == (None, wire)


class TestRemoteError:
    def test_overloaded_carries_parsed_hint(self):
        exc = RemoteError(ErrorCode.OVERLOADED, "retry_after_ms=40; shed")
        assert exc.retry_after_s == 0.04
        assert "shed" in str(exc)

    def test_overloaded_without_hint(self):
        exc = RemoteError(ErrorCode.OVERLOADED, "shed")
        assert exc.retry_after_s is None

    def test_other_codes_never_carry_hints(self):
        exc = RemoteError(ErrorCode.INTERNAL, "retry_after_ms=40; boom")
        assert exc.retry_after_s is None
