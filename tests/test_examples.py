"""Smoke-run every example script end to end.

Examples are documentation that executes; a broken one is a bug.  Each
runs in-process via ``runpy`` (same interpreter, deterministic seeds),
with stdout captured and sanity-checked for its headline output.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", "analytic false positive rates"),
    ("capacity_planning.py", "cheapest: MPCBF"),
    ("dynamic_cache_sharing.py", "false negatives (must be 0)     : 0"),
    ("acl_classifier.py", "installed 2000 rules"),
    ("distributed_build.py", "identical to single-node build: True"),
    ("route_lookup.py", "wasted (stale/false) probes"),
    ("parallel_line_card.py", "hardware projection"),
    ("packet_filtering.py", "classifying packets"),
    ("mapreduce_join.py", "reduce-side join"),
]


@pytest.mark.parametrize(
    "script,expected", _CASES, ids=[c[0] for c in _CASES]
)
def test_example_runs(script, expected, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert expected in out, f"{script} output missing {expected!r}"
