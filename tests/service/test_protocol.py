"""Wire-format tests: encode/decode symmetry and malformed-frame fuzz."""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CounterOverflowError,
    CounterUnderflowError,
    ReproError,
    UnsupportedOperationError,
    WordOverflowError,
)
from repro.service.protocol import (
    FEATURE_BULK64,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BULK64,
    SUPPORTED_VERSIONS,
    ErrorCode,
    FrameDecoder,
    Opcode,
    ProtocolError,
    decode_bulk64_body,
    decode_error_body,
    decode_hello_body,
    decode_payload,
    encode_batch_body,
    encode_bulk64_body,
    encode_error_body,
    encode_frame,
    encode_hello_body,
    error_code_for,
    pack_bools,
    pack_counts64,
    parse_request,
    unpack_bools,
    unpack_bools_array,
    unpack_counts64,
)

_BULK64_OPS = (
    Opcode.BULK64_INSERT,
    Opcode.BULK64_DELETE,
    Opcode.BULK64_QUERY,
    Opcode.BULK64_COUNT,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame(Opcode.INSERT, b"alice")
        decoder = FrameDecoder()
        decoder.feed(frame)
        [(opcode, body)] = list(decoder.frames())
        assert opcode == Opcode.INSERT
        assert body == b"alice"

    def test_incremental_feed(self):
        frame = encode_frame(Opcode.QUERY, b"bob") * 3
        decoder = FrameDecoder()
        collected = []
        for i in range(len(frame)):
            decoder.feed(frame[i : i + 1])
            collected.extend(decoder.frames())
        assert len(collected) == 3
        assert all(op == Opcode.QUERY and body == b"bob" for op, body in collected)

    def test_bad_version_rejected(self):
        bad = max(SUPPORTED_VERSIONS) + 1
        payload = struct.pack("<BB", bad, Opcode.PING)
        with pytest.raises(ProtocolError, match="version"):
            decode_payload(payload)

    def test_both_supported_versions_accepted(self):
        for version in SUPPORTED_VERSIONS:
            payload = struct.pack("<BB", version, Opcode.PING)
            assert decode_payload(payload) == (Opcode.PING, b"")

    def test_unknown_opcode_rejected(self):
        payload = struct.pack("<BB", PROTOCOL_VERSION, 0x66)
        with pytest.raises(ProtocolError, match="opcode"):
            decode_payload(payload)

    def test_oversized_frame_rejected_before_body(self):
        decoder = FrameDecoder()
        decoder.feed(struct.pack("<I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="frame limit"):
            list(decoder.frames())


class TestRequests:
    def test_single_key_ops(self):
        for op in (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE):
            request = parse_request(op, b"key-1")
            assert request.op == op
            assert request.keys == [b"key-1"]
            assert request.single

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError, match="empty key"):
            parse_request(Opcode.INSERT, b"")

    def test_batch_round_trip(self):
        keys = [f"k{i}".encode() for i in range(100)] + [b"\x00\xff binary"]
        body = encode_batch_body(Opcode.QUERY, keys)
        request = parse_request(Opcode.BATCH, body)
        assert request.op == Opcode.QUERY
        assert request.keys == keys
        assert not request.single

    def test_batch_bad_subop(self):
        body = struct.pack("<BI", Opcode.STATS, 0)
        with pytest.raises(ProtocolError, match="sub-op"):
            parse_request(Opcode.BATCH, body)

    def test_batch_truncated_key(self):
        body = struct.pack("<BI", Opcode.INSERT, 1) + struct.pack("<H", 10) + b"ab"
        with pytest.raises(ProtocolError, match="truncated"):
            parse_request(Opcode.BATCH, body)

    def test_batch_trailing_garbage(self):
        body = encode_batch_body(Opcode.INSERT, [b"x"]) + b"junk"
        with pytest.raises(ProtocolError, match="trailing"):
            parse_request(Opcode.BATCH, body)

    def test_control_ops_not_keyed(self):
        with pytest.raises(ProtocolError):
            parse_request(Opcode.STATS, b"")


class TestBodies:
    def test_bools_round_trip(self):
        for pattern in ([], [True], [False] * 9, [True, False] * 37):
            assert unpack_bools(pack_bools(pattern)) == pattern

    def test_error_body_round_trip(self):
        body = encode_error_body(ErrorCode.COUNTER_UNDERFLOW, "nope")
        code, message = decode_error_body(body)
        assert code == ErrorCode.COUNTER_UNDERFLOW
        assert message == "nope"

    def test_error_code_mapping(self):
        assert error_code_for(CounterOverflowError(1, 15)) == ErrorCode.COUNTER_OVERFLOW
        assert error_code_for(CounterUnderflowError(1)) == ErrorCode.COUNTER_UNDERFLOW
        assert error_code_for(WordOverflowError(0, 8)) == ErrorCode.WORD_OVERFLOW
        assert error_code_for(UnsupportedOperationError("x")) == ErrorCode.UNSUPPORTED
        assert error_code_for(ProtocolError("x")) == ErrorCode.PROTOCOL
        assert error_code_for(ReproError("x")) == ErrorCode.INTERNAL
        assert error_code_for(RuntimeError("x")) == ErrorCode.INTERNAL


class TestBulk64:
    """The columnar fastpath frames: packed u64 columns, v2 framing."""

    def test_body_round_trip(self):
        keys = np.array([0, 1, 2**63, 2**64 - 1, 42], dtype=np.uint64)
        for op in _BULK64_OPS:
            request = parse_request(op, encode_bulk64_body(keys))
            assert request.columnar
            assert not request.single
            assert np.array_equal(
                np.asarray(request.keys, dtype=np.uint64), keys
            )

    def test_base_op_mapping(self):
        body = encode_bulk64_body(np.array([7], dtype=np.uint64))
        assert parse_request(Opcode.BULK64_INSERT, body).op == Opcode.INSERT
        assert parse_request(Opcode.BULK64_DELETE, body).op == Opcode.DELETE
        assert parse_request(Opcode.BULK64_QUERY, body).op == Opcode.QUERY
        assert (
            parse_request(Opcode.BULK64_COUNT, body).op == Opcode.BULK64_COUNT
        )

    def test_body_is_little_endian(self):
        body = encode_bulk64_body(np.array([0x0102030405060708], dtype=np.uint64))
        assert body == struct.pack("<I", 1) + bytes(
            [8, 7, 6, 5, 4, 3, 2, 1]
        )

    def test_decode_is_zero_copy(self):
        body = encode_bulk64_body(np.arange(16, dtype=np.uint64))
        keys = decode_bulk64_body(body)
        assert keys.base is not None  # a view over the body, not a copy
        assert not keys.flags.writeable

    def test_empty_column_rejected(self):
        with pytest.raises(ProtocolError, match="no keys"):
            decode_bulk64_body(struct.pack("<I", 0))
        with pytest.raises(ProtocolError):
            encode_bulk64_body(np.array([], dtype=np.uint64))

    def test_truncated_body_rejected(self):
        body = encode_bulk64_body(np.arange(4, dtype=np.uint64))
        for cut in (len(body) - 1, len(body) - 8, 3, 4, 5):
            with pytest.raises(ProtocolError):
                decode_bulk64_body(body[:cut])

    def test_count_length_mismatch_rejected(self):
        column = np.arange(4, dtype=np.uint64).tobytes()
        for claimed in (3, 5, 2**32 - 1):
            with pytest.raises(ProtocolError):
                decode_bulk64_body(struct.pack("<I", claimed) + column)

    def test_trailing_garbage_rejected(self):
        body = encode_bulk64_body(np.arange(4, dtype=np.uint64))
        with pytest.raises(ProtocolError):
            decode_bulk64_body(body + b"x")

    def test_v2_frame_round_trip(self):
        keys = np.arange(64, dtype=np.uint64)
        frame = encode_frame(
            Opcode.BULK64_INSERT,
            encode_bulk64_body(keys),
            version=PROTOCOL_VERSION_BULK64,
        )
        decoder = FrameDecoder()
        decoder.feed(frame)
        [(opcode, body)] = list(decoder.frames())
        assert opcode == Opcode.BULK64_INSERT
        assert np.array_equal(decode_bulk64_body(body), keys)

    def test_hello_round_trip(self):
        body = encode_hello_body(PROTOCOL_VERSION_BULK64, FEATURE_BULK64)
        assert decode_hello_body(body) == (
            PROTOCOL_VERSION_BULK64,
            FEATURE_BULK64,
        )
        with pytest.raises(ProtocolError):
            decode_hello_body(body + b"x")
        with pytest.raises(ProtocolError):
            decode_hello_body(body[:-1])

    def test_counts64_round_trip(self):
        counts = np.array([0, 1, 2**40, 2**64 - 1], dtype=np.uint64)
        assert np.array_equal(unpack_counts64(pack_counts64(counts)), counts)

    def test_bitmap_array_round_trip(self):
        for pattern in ([], [True], [False] * 9, [True, False] * 37):
            packed = pack_bools(pattern)
            assert unpack_bools_array(packed).tolist() == pattern
            assert unpack_bools(packed) == pattern


class TestFuzz:
    """Arbitrary bytes must produce ProtocolError or clean parses — never
    any other exception.  (The server turns ProtocolError into an error
    frame; anything else would be a crash.)"""

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=256))
    def test_decoder_never_crashes(self, data):
        decoder = FrameDecoder()
        decoder.feed(data)
        try:
            for opcode, body in decoder.frames():
                if opcode in (
                    Opcode.INSERT,
                    Opcode.QUERY,
                    Opcode.DELETE,
                    Opcode.BATCH,
                    *_BULK64_OPS,
                ):
                    parse_request(opcode, body)
        except ProtocolError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=128))
    def test_batch_body_parse_never_crashes(self, body):
        try:
            parse_request(Opcode.BATCH, body)
        except ProtocolError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=128))
    def test_bulk64_body_parse_never_crashes(self, body):
        for op in _BULK64_OPS:
            try:
                parse_request(op, body)
            except ProtocolError:
                pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=32))
    def test_corrupted_bulk64_frame_never_crashes(self, noise):
        frame = bytearray(
            encode_frame(
                Opcode.BULK64_QUERY,
                encode_bulk64_body(np.arange(8, dtype=np.uint64)),
                version=PROTOCOL_VERSION_BULK64,
            )
        )
        for i, byte in enumerate(noise):
            frame[byte % len(frame)] ^= (i % 255) + 1
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        try:
            for opcode, body in decoder.frames():
                if opcode in _BULK64_OPS:
                    parse_request(opcode, body)
        except ProtocolError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=4, max_size=64))
    def test_corrupted_valid_frame_never_crashes(self, noise):
        frame = bytearray(encode_frame(Opcode.BATCH, encode_batch_body(
            Opcode.INSERT, [b"aa", b"bb", b"cc"]
        )))
        for i, byte in enumerate(noise):
            frame[byte % len(frame)] ^= (i % 255) + 1
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        try:
            for opcode, body in decoder.frames():
                if opcode == Opcode.BATCH:
                    parse_request(opcode, body)
        except ProtocolError:
            pass
