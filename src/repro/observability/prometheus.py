"""Prometheus text exposition (version 0.0.4) without a client library.

:func:`render_metrics` turns the daemon's live state — the
:class:`~repro.service.metrics.ServiceMetrics` registry, the hosted
filter's :class:`~repro.memmodel.accounting.AccessStats`, and snapshot
freshness — into the plain-text format every Prometheus-compatible
scraper ingests.  The power-of-two :class:`Histogram` maps directly
onto a Prometheus histogram: bucket ``i``'s exclusive upper bound
becomes the ``le`` label (scaled, e.g. µs → s), counts accumulate
cumulatively, and ``_sum``/``_count`` come from the histogram's running
totals, so PromQL's ``histogram_quantile`` works unmodified.

Label conventions (see ``docs/observability.md``): ``op`` for wire
opcodes (``INSERT``/``QUERY``/...), ``kind`` for filter operation kinds
(``insert``/``query``/``delete``), ``span`` for timer spans, ``shard``
for a bank's shard index.  Every family is prefixed ``repro_``.

:func:`parse_exposition` is the matching reader — enough of the format
to let tests and the CI smoke job assert on scraped output without
pulling in a client library.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import only for annotations: repro.service imports
    # the server, which imports this module — a runtime import here
    # would be circular.
    from repro.service.metrics import Histogram, ServiceMetrics

__all__ = ["escape_label_value", "render_metrics", "parse_exposition"]


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates families; emits # HELP/# TYPE once per family."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def declare(self, name: str, mtype: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {mtype}")

    def sample(
        self,
        name: str,
        value: float,
        labels: dict[str, str] | None = None,
        *,
        suffix: str = "",
    ) -> None:
        self._lines.append(
            f"{name}{suffix}{_labels_text(labels)} {_format_value(value)}"
        )

    def histogram(
        self,
        name: str,
        hist: "Histogram",
        labels: dict[str, str] | None = None,
        *,
        scale: float = 1.0,
        help_text: str = "",
    ) -> None:
        """Emit one histogram series (cumulative buckets + sum + count)."""
        self.declare(name, "histogram", help_text or name)
        labels = dict(labels or {})
        cumulative = 0
        counts = hist.bucket_counts()
        # Emit up to the highest occupied bucket; +Inf carries the rest.
        highest = max(
            (i for i, c in enumerate(counts) if c), default=-1
        )
        for index in range(highest + 1):
            cumulative += counts[index]
            bound = hist.bucket_upper(index) * scale
            self.sample(
                name,
                cumulative,
                {**labels, "le": _format_value(bound)},
                suffix="_bucket",
            )
        self.sample(name, hist.count, {**labels, "le": "+Inf"}, suffix="_bucket")
        self.sample(name, hist.total * scale, labels or None, suffix="_sum")
        self.sample(name, hist.count, labels or None, suffix="_count")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


#: µs → s; latencies are recorded in microseconds but exported in the
#: Prometheus base unit, seconds.
_US = 1e-6


def render_metrics(
    metrics: "ServiceMetrics",
    filt=None,
    snapshots=None,
    *,
    now: float | None = None,
    wal=None,
    replication=None,
    router=None,
    rebalance=None,
    admission=None,
) -> str:
    """Render the full exposition document for one scrape.

    ``filt`` (optional) contributes the filter-level families —
    ``AccessStats`` counters, size, per-shard load, overflow events;
    ``snapshots`` (an optional
    :class:`~repro.service.snapshot.SnapshotManager`) contributes
    snapshot freshness.  The cluster hooks — ``wal`` (a
    :class:`~repro.cluster.wal.WriteAheadLog`), ``replication`` (a
    :class:`~repro.cluster.replication.ReplicationManager`), ``router``
    (a :class:`~repro.cluster.router.RouterBackend`) and ``rebalance``
    (a :class:`~repro.rebalance.migrator.RebalanceState`) — each
    contribute their families when the daemon plays that role;
    ``admission`` (an :class:`~repro.overload.AdmissionController`)
    contributes the ``repro_admission_*`` families.  Reading
    the registries is lock-free by design: all values are monotone
    counters or single floats, so a scrape racing the event loop sees a
    slightly stale but never torn view.
    """
    writer = _Writer()
    now = time.monotonic() if now is None else now

    writer.declare(
        "repro_uptime_seconds", "gauge", "Seconds since the daemon started."
    )
    writer.sample("repro_uptime_seconds", max(0.0, now - metrics.started_at))

    writer.declare(
        "repro_requests_total", "counter", "Requests served, by wire opcode."
    )
    for op, count in sorted(metrics.ops.items()):
        writer.sample("repro_requests_total", count, {"op": op})

    writer.declare(
        "repro_errors_total", "counter", "Error frames sent, by error code."
    )
    for code, count in sorted(metrics.errors.items()):
        writer.sample("repro_errors_total", count, {"code": code})

    writer.declare(
        "repro_shed_total", "counter",
        "Requests shed before any effect was applied, by reason.",
    )
    for reason, count in sorted(metrics.shed.items()):
        writer.sample("repro_shed_total", count, {"reason": reason})

    writer.declare(
        "repro_fastpath_frames_total", "counter",
        "Bulk64 frames accepted on the columnar zero-copy fastpath.",
    )
    writer.sample("repro_fastpath_frames_total", metrics.fastpath_frames)
    writer.declare(
        "repro_fastpath_keys_total", "counter",
        "Pre-encoded u64 keys carried by bulk64 frames.",
    )
    writer.sample("repro_fastpath_keys_total", metrics.fastpath_keys)

    writer.declare(
        "repro_bytes_total", "counter", "Wire bytes moved, by direction."
    )
    writer.sample("repro_bytes_total", metrics.bytes_in, {"direction": "in"})
    writer.sample("repro_bytes_total", metrics.bytes_out, {"direction": "out"})

    writer.declare(
        "repro_connections_opened_total", "counter", "TCP connections accepted."
    )
    writer.sample("repro_connections_opened_total", metrics.connections_opened)
    writer.declare(
        "repro_connections_active", "gauge", "Currently open client connections."
    )
    writer.sample("repro_connections_active", metrics.connections_active)

    for op, hist in sorted(metrics.latency_us.items()):
        writer.histogram(
            "repro_request_latency_seconds",
            hist,
            {"op": op},
            scale=_US,
            help_text="Per-request wall-clock latency (frame in to frame out).",
        )
    writer.histogram(
        "repro_batch_requests",
        metrics.batch_requests,
        help_text="Requests coalesced into each dispatched micro-batch.",
    )
    writer.histogram(
        "repro_batch_keys",
        metrics.batch_keys,
        help_text="Keys carried by each dispatched micro-batch.",
    )
    for name, hist in sorted(metrics.spans.items()):
        writer.histogram(
            "repro_span_duration_seconds",
            hist,
            {"span": name},
            scale=_US,
            help_text="Instrumented timer spans inside the request path.",
        )

    writer.declare(
        "repro_snapshots_written_total", "counter", "Snapshots written via the SNAPSHOT op."
    )
    writer.sample("repro_snapshots_written_total", metrics.snapshots_written)
    if snapshots is not None:
        age = snapshots.age_s
        if age is not None:
            writer.declare(
                "repro_snapshot_age_seconds", "gauge",
                "Seconds since the last successful snapshot.",
            )
            writer.sample("repro_snapshot_age_seconds", age)
        if snapshots.last_report is not None:
            writer.declare(
                "repro_snapshot_bytes", "gauge", "Size of the last snapshot."
            )
            writer.sample(
                "repro_snapshot_bytes", snapshots.last_report.get("bytes", 0)
            )

    if wal is not None:
        _render_wal(writer, wal)
    if replication is not None:
        _render_replication(writer, replication)
    if router is not None:
        _render_router(writer, router)
    if rebalance is not None:
        _render_rebalance(writer, rebalance)
    if admission is not None:
        _render_admission(writer, admission)
    if filt is not None:
        _render_filter(writer, filt)
    return writer.render()


def _render_admission(writer: _Writer, admission) -> None:
    writer.declare(
        "repro_admission_inflight", "gauge",
        "Admitted requests not yet answered.",
    )
    writer.sample("repro_admission_inflight", admission.inflight)
    writer.declare(
        "repro_admission_limit", "gauge",
        "Configured inflight bound (max_inflight).",
    )
    writer.sample("repro_admission_limit", admission.max_inflight)
    writer.declare(
        "repro_admission_admitted_total", "counter",
        "Requests that passed the admission gate.",
    )
    writer.sample("repro_admission_admitted_total", admission.admitted_total)
    writer.declare(
        "repro_admission_degraded", "gauge",
        "1 while the node is in degraded-read mode (mutations shed).",
    )
    writer.sample("repro_admission_degraded", 1 if admission.degraded else 0)
    if admission.bucket is not None:
        writer.declare(
            "repro_admission_tokens", "gauge",
            "Tokens currently available in the admission bucket.",
        )
        writer.sample("repro_admission_tokens", admission.bucket.tokens)
        writer.declare(
            "repro_admission_token_rate", "gauge",
            "Token refill rate of the admission bucket (tokens/s).",
        )
        writer.sample("repro_admission_token_rate", admission.bucket.rate)


def _render_wal(writer: _Writer, wal) -> None:
    writer.declare(
        "repro_wal_last_seq", "gauge",
        "Highest sequence number durably appended to the WAL.",
    )
    writer.sample("repro_wal_last_seq", wal.last_seq)
    writer.declare(
        "repro_wal_appends_total", "counter", "WAL records appended."
    )
    writer.sample("repro_wal_appends_total", wal.appends_total)
    writer.declare(
        "repro_wal_fsyncs_total", "counter", "WAL fsync calls issued."
    )
    writer.sample("repro_wal_fsyncs_total", wal.fsyncs_total)
    writer.declare(
        "repro_wal_bytes_written_total", "counter", "Bytes appended to the WAL."
    )
    writer.sample("repro_wal_bytes_written_total", wal.bytes_written)
    writer.declare(
        "repro_wal_segments", "gauge", "Live WAL segment files on disk."
    )
    writer.sample("repro_wal_segments", len(wal.segments()))
    writer.declare(
        "repro_wal_size_bytes", "gauge", "Total bytes held by live WAL segments."
    )
    writer.sample("repro_wal_size_bytes", wal.size_bytes())


def _render_replication(writer: _Writer, replication) -> None:
    writer.declare(
        "repro_replication_lag_records", "gauge",
        "Primary WAL records not yet acknowledged, per replica.",
    )
    writer.declare(
        "repro_replication_connected", "gauge",
        "1 when the replication link is established, else 0.",
    )
    writer.declare(
        "repro_replication_records_sent_total", "counter",
        "WAL records streamed to each replica.",
    )
    writer.declare(
        "repro_replication_snapshots_sent_total", "counter",
        "Full snapshot transfers used for replica catch-up.",
    )
    last_seq = replication.wal.last_seq
    for link in replication.links:
        labels = {"replica": link.address}
        writer.sample(
            "repro_replication_lag_records",
            max(0, last_seq - link.acked_seq),
            labels,
        )
        writer.sample(
            "repro_replication_connected", 1 if link.connected else 0, labels
        )
        writer.sample(
            "repro_replication_records_sent_total", link.records_sent, labels
        )
        writer.sample(
            "repro_replication_snapshots_sent_total", link.snapshots_sent, labels
        )
    writer.declare(
        "repro_replication_committed_seq", "gauge",
        "Highest sequence number satisfying the configured ack mode.",
    )
    writer.sample("repro_replication_committed_seq", replication.committed_seq)


def _render_router(writer: _Writer, router) -> None:
    writer.declare(
        "repro_ring_vnodes", "gauge",
        "Virtual nodes owned by each shard group on the hash ring.",
    )
    writer.declare(
        "repro_ring_load_fraction", "gauge",
        "Fraction of the hash space owned by each shard group.",
    )
    for group, fraction in router.ring.load_fractions().items():
        writer.sample(
            "repro_ring_load_fraction", fraction, {"group": group}
        )
    for group, vnodes in router.ring.vnode_counts().items():
        writer.sample("repro_ring_vnodes", vnodes, {"group": group})
    writer.declare(
        "repro_routed_keys_total", "counter",
        "Keys routed to each shard group, by operation kind.",
    )
    for (group, kind), count in sorted(router.routed_keys.items()):
        writer.sample(
            "repro_routed_keys_total", count, {"group": group, "kind": kind}
        )
    writer.declare(
        "repro_router_fallback_reads_total", "counter",
        "Reads answered by a replica after the primary failed.",
    )
    writer.sample("repro_router_fallback_reads_total", router.fallback_reads)
    writer.declare(
        "repro_node_healthy", "gauge",
        "1 when the node's health check last succeeded, else 0.",
    )
    for node, healthy in sorted(router.node_health().items()):
        writer.sample("repro_node_healthy", 1 if healthy else 0, {"node": node})
    breaker_states = getattr(router, "breaker_states", None)
    if breaker_states is not None:
        writer.declare(
            "repro_breaker_state", "gauge",
            "Per-group circuit breaker: 0 closed, 1 half-open, 2 open.",
        )
        for group, state in sorted(breaker_states().items()):
            writer.sample("repro_breaker_state", state, {"group": group})
    writer.declare(
        "repro_router_overload_fallbacks_total", "counter",
        "Reads shed by a primary's overload and served by a replica.",
    )
    writer.sample(
        "repro_router_overload_fallbacks_total",
        getattr(router, "overload_fallbacks", 0),
    )


def _render_rebalance(writer: _Writer, rebalance) -> None:
    state = rebalance.describe()
    version = state.get("epoch_version")
    writer.declare(
        "repro_rebalance_epoch_version", "gauge",
        "Ring epoch version this node has installed (0 before any).",
    )
    writer.sample("repro_rebalance_epoch_version", version or 0)
    writer.declare(
        "repro_rebalance_sessions", "gauge",
        "In-flight migration sessions on this node, by role.",
    )
    writer.sample(
        "repro_rebalance_sessions",
        len(state.get("outgoing", [])),
        {"role": "source"},
    )
    writer.sample(
        "repro_rebalance_sessions",
        len(state.get("incoming", [])),
        {"role": "destination"},
    )
    writer.declare(
        "repro_rebalance_events_total", "counter",
        "Rebalance engine events (streams, applies, fences, rejections).",
    )
    for event, count in sorted(state.get("counters", {}).items()):
        writer.sample(
            "repro_rebalance_events_total", count, {"event": event}
        )


def _render_filter(writer: _Writer, filt) -> None:
    labels = {"filter": getattr(filt, "name", type(filt).__name__)}
    writer.declare(
        "repro_filter_total_bits", "gauge", "Logical size of the hosted filter."
    )
    writer.sample("repro_filter_total_bits", filt.total_bits, labels)

    writer.declare(
        "repro_filter_operations_total", "counter",
        "Filter operations executed, by kind.",
    )
    writer.declare(
        "repro_word_accesses_total", "counter",
        "Machine-word memory accesses (the paper's Tables I-III axis).",
    )
    writer.declare(
        "repro_hash_bits_total", "counter",
        "Hash bits consumed (access bandwidth, Tables I-III).",
    )
    writer.declare(
        "repro_hash_calls_total", "counter", "Hash function evaluations."
    )
    for kind, stats in filt.stats.iter_totals():
        kind_labels = {**labels, "kind": kind}
        writer.sample(
            "repro_filter_operations_total", stats.operations, kind_labels
        )
        writer.sample(
            "repro_word_accesses_total", stats.word_accesses, kind_labels
        )
        writer.sample("repro_hash_bits_total", stats.hash_bits, kind_labels)
        writer.sample("repro_hash_calls_total", stats.hash_calls, kind_labels)

    overflow = getattr(filt, "overflow_events", None)
    if overflow is not None:
        writer.declare(
            "repro_word_overflow_events_total", "counter",
            "Inserts absorbed by saturated words (word_overflow=saturate).",
        )
        writer.sample("repro_word_overflow_events_total", overflow, labels)
    skipped = getattr(filt, "skipped_deletes", None)
    if skipped is not None:
        writer.declare(
            "repro_skipped_deletes_total", "counter",
            "Deletes recorded as no-ops on saturated words.",
        )
        writer.sample("repro_skipped_deletes_total", skipped, labels)

    shards = getattr(filt, "shards", None)
    if shards is not None:
        writer.declare(
            "repro_shard_operations_total", "counter",
            "Per-shard operation load of a sharded bank.",
        )
        for index, shard in enumerate(shards):
            for kind, stats in shard.stats.iter_totals():
                writer.sample(
                    "repro_shard_operations_total",
                    stats.operations,
                    {"shard": str(index), "kind": kind},
                )


def parse_exposition(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse a text-exposition document into ``{series: [(labels, value)]}``.

    Covers the subset this exporter emits (no timestamps, no exemplars).
    Histogram child series keep their ``_bucket``/``_sum``/``_count``
    suffixes as distinct keys.  Raises :class:`ValueError` on a
    malformed sample line, which is exactly what the CI smoke job wants
    to detect.
    """
    families: dict[str, list[tuple[dict[str, str], float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, rest = _split_sample(line, lineno)
        parts = rest.split()
        if len(parts) != 1:
            raise ValueError(f"line {lineno}: expected '<series> <value>': {raw!r}")
        try:
            value = float(parts[0].replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {parts[0]!r}") from exc
        families.setdefault(name, []).append((labels, value))
    return families


def _split_sample(line: str, lineno: int) -> tuple[str, dict[str, str], str]:
    brace = line.find("{")
    if brace == -1:
        name, _, rest = line.partition(" ")
        if not name or not rest:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        return name, {}, rest
    name = line[:brace]
    end = line.find("}", brace)
    if end == -1:
        raise ValueError(f"line {lineno}: unterminated label set: {line!r}")
    labels = _parse_labels(line[brace + 1 : end], lineno)
    return name, labels, line[end + 1 :].strip()


def _parse_labels(body: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        eq = body.find("=", pos)
        if eq == -1 or eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: malformed labels: {body!r}")
        key = body[pos:eq].strip().lstrip(",").strip()
        value_chars: list[str] = []
        i = eq + 2
        while i < len(body):
            ch = body[i]
            if ch == "\\" and i + 1 < len(body):
                escaped = body[i + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value: {body!r}")
        labels[key] = "".join(value_chars)
        pos = i + 1
    return labels
