"""Tests for filter serialisation round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters import (
    BloomFilter,
    CountingBloomFilter,
    DLeftCBF,
    MPCBF,
    PartitionedCBF,
    VariableIncrementCBF,
)
from repro.serialize import dump_filter, load_filter, serialized_size


def _fill(filt, n=300):
    keys = [f"ser-{i}" for i in range(n)]
    filt.insert_many(keys)
    return keys


def _assert_equivalent(original, restored, keys):
    probes = [f"probe-{i}" for i in range(2000)]
    np.testing.assert_array_equal(
        original.query_many(keys), restored.query_many(keys)
    )
    np.testing.assert_array_equal(
        original.query_many(probes), restored.query_many(probes)
    )


class TestRoundTrips:
    def test_bloom(self):
        bf = BloomFilter(4096, 3, seed=7)
        keys = _fill(bf)
        restored = load_filter(dump_filter(bf))
        _assert_equivalent(bf, restored, keys)

    def test_cbf(self):
        cbf = CountingBloomFilter(4096, 3, seed=7)
        keys = _fill(cbf)
        restored = load_filter(dump_filter(cbf))
        _assert_equivalent(cbf, restored, keys)
        # Counting state survives too.
        assert restored.count(keys[0]) == cbf.count(keys[0])
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_pcbf(self):
        pcbf = PartitionedCBF(128, 64, 3, g=2, seed=7)
        keys = _fill(pcbf)
        restored = load_filter(dump_filter(pcbf))
        _assert_equivalent(pcbf, restored, keys)
        np.testing.assert_array_equal(restored.counters, pcbf.counters)

    def test_vicbf(self):
        vi = VariableIncrementCBF(4096, 3, seed=7)
        keys = _fill(vi)
        restored = load_filter(dump_filter(vi))
        _assert_equivalent(vi, restored, keys)

    def test_mpcbf(self):
        mp = MPCBF(256, 64, 3, capacity=300, seed=7)
        keys = _fill(mp)
        restored = load_filter(dump_filter(mp))
        _assert_equivalent(mp, restored, keys)
        restored.check_invariants()
        # Hierarchy state survives: deletions still work.
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_mpcbf_with_saturated_words(self):
        mp = MPCBF(1, 64, 3, n_max=2, word_overflow="saturate", seed=1)
        keys = [f"s{i}" for i in range(8)]
        for key in keys:
            mp.insert(key)
        assert mp.overflow_events > 0
        restored = load_filter(dump_filter(mp))
        restored.check_invariants()
        assert all(restored.query(k) for k in keys)

    def test_byte_identical_reserialisation(self):
        cbf = CountingBloomFilter(1024, 3, seed=2)
        _fill(cbf, 50)
        blob = dump_filter(cbf)
        assert dump_filter(load_filter(blob)) == blob


class TestFormat:
    def test_magic_check(self):
        with pytest.raises(ConfigurationError):
            load_filter(b"NOPE" + b"\x00" * 32)

    def test_version_check(self):
        blob = bytearray(dump_filter(BloomFilter(64, 2)))
        blob[4] = 99
        with pytest.raises(ConfigurationError):
            load_filter(bytes(blob))

    def test_unsupported_type(self):
        with pytest.raises(ConfigurationError):
            dump_filter(DLeftCBF(16))

    def test_serialized_size_tracks_state(self):
        small = BloomFilter(512, 3)
        large = BloomFilter(1 << 16, 3)
        assert serialized_size(large) > serialized_size(small)

    def test_empty_filter_round_trip(self):
        mp = MPCBF(32, 64, 3, n_max=5, seed=0)
        restored = load_filter(dump_filter(mp))
        assert not restored.query("anything")
        restored.check_invariants()


class TestSerializationProperties:
    """Hypothesis: round-trips preserve observable state under random ops."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 30)),
            max_size=60,
        ),
        st.sampled_from(["CBF", "PCBF", "MPCBF", "VI-CBF"]),
    )
    def test_round_trip_after_random_ops(self, ops, variant):
        from collections import Counter

        if variant == "CBF":
            filt = CountingBloomFilter(2048, 3, seed=1)
        elif variant == "PCBF":
            filt = PartitionedCBF(64, 64, 3, seed=1)
        elif variant == "VI-CBF":
            filt = VariableIncrementCBF(2048, 3, seed=1)
        else:
            filt = MPCBF(32, 256, 3, n_max=60, seed=1)
        live: Counter = Counter()
        for op, key in ops:
            name = f"k{key}"
            if op == "delete":
                if live[name] == 0:
                    continue
                filt.delete(name)
                live[name] -= 1
            elif live[name] < 4:
                filt.insert(name)
                live[name] += 1
        restored = load_filter(dump_filter(filt))
        probes = [f"k{i}" for i in range(40)] + [f"p{i}" for i in range(40)]
        np.testing.assert_array_equal(
            filt.query_many(probes), restored.query_many(probes)
        )
        for name, count in live.items():
            if count:
                assert restored.count(name) >= count


class TestStorageLayoutRoundTrips:
    def test_packed_cbf_round_trip(self):
        packed = CountingBloomFilter(2048, 3, seed=1, storage="packed")
        for key in ("a", "a", "b"):
            packed.insert(key)
        restored = load_filter(dump_filter(packed))
        assert restored.storage == "packed"
        assert restored.count("a") == 2
        restored.delete("b")
        assert not restored.query("b")

    def test_fast_and_packed_serialise_equivalent_state(self, small_keys):
        fast = CountingBloomFilter(2048, 3, seed=1)
        packed = CountingBloomFilter(2048, 3, seed=1, storage="packed")
        fast.insert_many(small_keys)
        packed.insert_many(small_keys)
        a = load_filter(dump_filter(fast))
        b = load_filter(dump_filter(packed))
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_basic_layout_mpcbf_round_trip(self):
        basic = MPCBF(64, 64, 3, first_level_bits=32, seed=2)
        basic.insert("x")
        restored = load_filter(dump_filter(basic))
        assert restored.first_level_bits == 32
        assert restored.query("x")
        restored.delete("x")
        assert not restored.query("x")
        restored.check_invariants()
