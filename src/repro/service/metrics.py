"""In-process metrics for the serving daemon.

Everything here is plain counters and power-of-two histograms — cheap
enough to update on every request without measurably moving the numbers
being measured.  The STATS op serialises :meth:`ServiceMetrics.snapshot`
to JSON, folding in the hosted filter's own
:class:`~repro.memmodel.accounting.AccessStats` so a client sees wire
metrics (latency, batch sizes, bytes) and memory-model metrics (word
accesses per op — the paper's Tables I–III axis) in one report.
"""

from __future__ import annotations

import time
from collections import Counter

__all__ = ["Histogram", "ServiceMetrics"]


class Histogram:
    """Power-of-two bucketed histogram of non-negative values.

    Bucket ``i`` counts observations in ``[2^(i-1), 2^i)`` (bucket 0
    counts zeros and sub-1 values).  Quantiles are estimated at bucket
    upper bounds — coarse, but monotone and allocation-free, which is
    what a per-request hot path wants.
    """

    #: 2^62 upper bound; more than any latency or batch size seen here.
    NUM_BUCKETS = 63

    def __init__(self) -> None:
        self._buckets = [0] * self.NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (values below 0 clamp to 0)."""
        value = max(0.0, value)
        index = min(self.NUM_BUCKETS - 1, max(0, int(value).bit_length()))
        self._buckets[index] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_upper(index: int) -> float:
        """Exclusive upper bound of bucket ``index`` (1.0 for bucket 0)."""
        return 1.0 if index == 0 else float(1 << index)

    def bucket_counts(self) -> list[int]:
        """Per-bucket observation counts (a copy; exporters iterate it)."""
        return list(self._buckets)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (q clamps to [0, 1]).

        Monotone in ``q`` and never below the empirical quantile: the
        estimate is the containing bucket's upper bound, tightened to
        the observed ``max``.  ``q == 0`` reports the smallest occupied
        bucket's bound (not a flat 0), and a histogram whose values all
        fall in bucket 0 reports its sub-1 ``max`` instead of 0.
        """
        if not self.count:
            return 0.0
        target = max(1.0, min(1.0, max(0.0, q)) * self.count)
        seen = 0
        for index, bucket in enumerate(self._buckets):
            seen += bucket
            if seen >= target:
                if index == self.NUM_BUCKETS - 1:
                    # The final bucket is open-ended (it also catches
                    # clamped overflow); max is the only bound we have.
                    return self.max
                return min(self.max, self.bucket_upper(index))
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (bucket-exact: merging
        equals having observed both value streams on one histogram)."""
        for index, bucket in enumerate(other._buckets):
            self._buckets[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class ServiceMetrics:
    """Registry of everything the daemon measures about itself."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.ops: Counter[str] = Counter()
        self.errors: Counter[str] = Counter()
        #: Requests rejected before any effect, by shed reason
        #: (``queue_full`` / ``degraded_write`` / ``rate_limited`` from
        #: admission control, ``deadline_arrival`` / ``deadline_coalescer``
        #: from deadline enforcement) — the ``repro_shed_total`` family.
        self.shed: Counter[str] = Counter()
        self.bytes_in = 0
        self.bytes_out = 0
        self.connections_opened = 0
        self.connections_active = 0
        #: Per-op wall-clock latency in microseconds (frame in → frame out).
        self.latency_us: dict[str, Histogram] = {}
        #: Requests coalesced into each dispatched micro-batch.
        self.batch_requests = Histogram()
        #: Keys carried by each dispatched micro-batch.
        self.batch_keys = Histogram()
        #: Named timer spans (protocol decode, coalescer wait, bulk
        #: execute, snapshot write), microseconds — see
        #: :mod:`repro.observability.spans`.
        self.spans: dict[str, Histogram] = {}
        self.snapshots_written = 0
        #: Bulk64 frames accepted on the columnar fastpath.
        self.fastpath_frames = 0
        #: Pre-encoded u64 keys those frames carried (zero-copy decoded).
        self.fastpath_keys = 0

    # -- recording ------------------------------------------------------
    def record_op(self, name: str, latency_us: float) -> None:
        self.ops[name] += 1
        hist = self.latency_us.get(name)
        if hist is None:
            hist = self.latency_us[name] = Histogram()
        hist.observe(latency_us)

    def observe_span(self, name: str, duration_us: float) -> None:
        """Record one timer-span duration (the spans' sink hook)."""
        hist = self.spans.get(name)
        if hist is None:
            hist = self.spans[name] = Histogram()
        hist.observe(duration_us)

    def record_error(self, code_name: str) -> None:
        self.errors[code_name] += 1

    def record_shed(self, reason: str) -> None:
        """Count one request shed before it produced any effect."""
        self.shed[reason] += 1

    def record_batch(self, num_requests: int, num_keys: int) -> None:
        self.batch_requests.observe(num_requests)
        self.batch_keys.observe(num_keys)

    def record_fastpath(self, num_keys: int) -> None:
        """Count one bulk64 frame and the keys its column carried."""
        self.fastpath_frames += 1
        self.fastpath_keys += num_keys

    @property
    def mean_batch_size(self) -> float:
        """Mean requests coalesced per dispatch (the amortisation win)."""
        return self.batch_requests.mean

    # -- reporting ------------------------------------------------------
    def snapshot(self, filt=None) -> dict:
        """Plain-dict report for the STATS op (JSON-serialisable)."""
        out: dict = {
            "uptime_s": time.monotonic() - self.started_at,
            "ops": dict(self.ops),
            "errors": dict(self.errors),
            "shed": dict(self.shed),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
            },
            "latency_us": {
                name: hist.summary() for name, hist in self.latency_us.items()
            },
            "spans_us": {
                name: hist.summary() for name, hist in self.spans.items()
            },
            "coalescing": {
                "dispatches": self.batch_requests.count,
                "mean_batch_requests": self.batch_requests.mean,
                "mean_batch_keys": self.batch_keys.mean,
                "batch_requests": self.batch_requests.summary(),
                "batch_keys": self.batch_keys.summary(),
            },
            "snapshots_written": self.snapshots_written,
            "fastpath": {
                "frames": self.fastpath_frames,
                "keys": self.fastpath_keys,
            },
        }
        if filt is not None:
            out["filter"] = {
                "name": getattr(filt, "name", type(filt).__name__),
                "total_bits": filt.total_bits,
                "access_stats": filt.stats.summary(),
            }
            shards = getattr(filt, "shards", None)
            if shards is not None:
                out["filter"]["shards"] = [
                    {
                        "name": shard.name,
                        "inserts": shard.stats.insert.operations,
                        "queries": shard.stats.query.operations,
                        "deletes": shard.stats.delete.operations,
                    }
                    for shard in shards
                ]
        return out
