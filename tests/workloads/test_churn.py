"""Tests for the long-run churn driver."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF
from repro.workloads.churn import ChurnResult, first_saturation_epoch, run_churn


class TestRunChurn:
    def test_cbf_stable_under_churn(self):
        cbf = CountingBloomFilter(1 << 15, 3, seed=1)
        result = run_churn(
            cbf, population=2000, epochs=10, probe_count=5000, seed=1
        )
        assert len(result.fpr_by_epoch) == 10
        # Constant population → the FPR stays in one band (no rot).
        assert max(result.fpr_by_epoch) < 0.02
        first, last = result.fpr_by_epoch[0], result.fpr_by_epoch[-1]
        assert last < first + 0.01

    def test_mpcbf_with_safe_nmax_rarely_saturates_early(self):
        filt = MPCBF(
            2048, 64, 3, capacity=2000, seed=3, word_overflow="saturate"
        )
        result = run_churn(
            filt, population=2000, epochs=5, probe_count=2000, seed=3
        )
        # A handful of saturated words is tolerable; wholesale
        # saturation would mean the sizing is broken.
        assert max(result.saturated_words_by_epoch) <= 5

    def test_tight_nmax_saturates_under_sustained_churn(self):
        # Average-case sizing + long churn: the first-passage effect
        # must show up (this is the documented deployment caveat).
        filt = MPCBF(128, 64, 3, n_max=4, seed=2, word_overflow="saturate")
        result = run_churn(
            filt, population=300, epochs=30, probe_count=2000, seed=2
        )
        assert result.ever_saturated
        epoch = first_saturation_epoch(result)
        assert epoch is not None and epoch < 30

    def test_saturation_counts_monotone(self):
        # Words never un-saturate: the per-epoch counts must be
        # non-decreasing.
        filt = MPCBF(128, 64, 3, n_max=4, seed=5, word_overflow="saturate")
        result = run_churn(
            filt, population=300, epochs=15, probe_count=1000, seed=5
        )
        counts = result.saturated_words_by_epoch
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_no_false_negatives_throughout(self):
        # The driver deletes only live keys, so underflow must never
        # trigger — reaching the end without exceptions is the check;
        # additionally skipped deletes only occur once saturated.
        filt = MPCBF(
            1024, 64, 3, capacity=1000, seed=7, word_overflow="saturate"
        )
        result = run_churn(
            filt, population=1000, epochs=8, probe_count=1000, seed=7
        )
        if not result.ever_saturated:
            assert result.skipped_deletes == 0

    def test_invalid_churn_fraction(self):
        cbf = CountingBloomFilter(1024, 3)
        with pytest.raises(ConfigurationError):
            run_churn(cbf, population=100, churn_fraction=0.0)


class TestFirstSaturationEpoch:
    def test_none_when_clean(self):
        result = ChurnResult(
            epochs=3, population=10, churn_per_epoch=2,
            saturated_words_by_epoch=[0, 0, 0],
        )
        assert first_saturation_epoch(result) is None

    def test_finds_first(self):
        result = ChurnResult(
            epochs=3, population=10, churn_per_epoch=2,
            saturated_words_by_epoch=[0, 2, 3],
        )
        assert first_saturation_epoch(result) == 1
