"""Experiment reports and plain-text table rendering.

Every experiment driver returns an :class:`ExperimentReport`: an id
("fig7a", "table3", …), the regenerated rows, and a ``paper`` note
stating what the original figure shows so paper-vs-measured comparison
is one ``print`` away (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentReport", "format_table", "format_value"]


def format_value(value: object) -> str:
    """Render one cell: compact scientific notation for small floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], *, columns: Sequence[str] | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r))
        for r in rendered
    )
    return f"{header}\n{sep}\n{body}"


@dataclass
class ExperimentReport:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    #: What the paper's version of this figure/table shows (the claim
    #: whose *shape* the rows must reproduce).
    paper: str = ""
    notes: list[str] = field(default_factory=list)
    columns: list[str] | None = None

    def add(self, **row: object) -> None:
        """Append one row."""
        self.rows.append(row)

    def note(self, text: str) -> None:
        """Attach a free-form observation."""
        self.notes.append(text)

    def render(self) -> str:
        """Full plain-text rendering (id, paper claim, table, notes)."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper:
            parts.append(f"paper: {self.paper}")
        parts.append(format_table(self.rows, columns=self.columns))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
