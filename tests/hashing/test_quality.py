"""Statistical quality tests for the hash substrate.

The analytic models (Eq. 1-11) assume uniform, independent hashing; if
the mixers fell short, every reproduced FPR would drift from its
formula.  These tests gate that assumption with standard statistics:
chi-squared uniformity on index distributions, pairwise independence
between hash functions, and avalanche behaviour over structured inputs
(sequential integers — the hardest realistic case, and exactly what the
patent ids and flow encodings look like).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as spstats

from repro.hashing.encoders import encode_str_array
from repro.hashing.families import HashFamily, PartitionedHashFamily
from repro.hashing.mixers import splitmix64_array


def _chi2_pvalue(counts: np.ndarray) -> float:
    expected = counts.sum() / len(counts)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return float(spstats.chi2.sf(chi2, len(counts) - 1))


class TestIndexUniformity:
    @pytest.mark.parametrize("source", ["sequential", "strings"])
    def test_family_indices_uniform(self, source):
        if source == "sequential":
            keys = np.arange(60_000, dtype=np.uint64)
        else:
            raw = np.array(
                [f"key-{i:06d}".encode() for i in range(60_000)], dtype="S10"
            )
            keys = encode_str_array(raw)
        fam = HashFamily(101, 3, seed=7)  # prime bucket count
        counts = np.bincount(fam.indices_array(keys).reshape(-1), minlength=101)
        assert _chi2_pvalue(counts) > 1e-4

    def test_word_selection_uniform(self):
        fam = PartitionedHashFamily(127, 40, 3, g=2, seed=7)
        keys = np.arange(60_000, dtype=np.uint64)
        word_idx = fam.word_indices_array(keys)
        for col in range(2):
            counts = np.bincount(word_idx[:, col], minlength=127)
            assert _chi2_pvalue(counts) > 1e-4

    def test_offsets_uniform(self):
        fam = PartitionedHashFamily(64, 37, 4, seed=7)
        keys = np.arange(60_000, dtype=np.uint64)
        offsets = fam.offsets_array(keys)
        for col in range(4):
            counts = np.bincount(offsets[:, col], minlength=37)
            assert _chi2_pvalue(counts) > 1e-4


class TestIndependence:
    def test_hash_functions_pairwise_uncorrelated(self):
        fam = HashFamily(1 << 16, 4, seed=3)
        keys = np.arange(50_000, dtype=np.uint64)
        idx = fam.indices_array(keys).astype(float)
        corr = np.corrcoef(idx.T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert np.abs(off_diag).max() < 0.02

    def test_shared_first_hash_joint_uniformity(self):
        # Word 0 and offset 0 share one mix; their joint distribution
        # over a coarse grid must still be uniform (chi-squared on the
        # contingency table).
        fam = PartitionedHashFamily(16, 16, 3, seed=9)
        keys = np.arange(80_000, dtype=np.uint64)
        word_idx, offsets = fam.locate_array(keys)
        joint = np.zeros((16, 16))
        np.add.at(joint, (word_idx[:, 0], offsets[:, 0]), 1)
        assert _chi2_pvalue(joint.reshape(-1)) > 1e-4

    def test_route_and_filter_hashes_independent(self):
        # The sharded bank routes with one hash and filters with others;
        # keys in one shard must still hash uniformly inside it.
        from repro.hashing.mixers import splitmix64

        fam = HashFamily(64, 3, seed=1)
        keys = np.arange(80_000, dtype=np.uint64)
        route = (
            splitmix64_array(keys ^ np.uint64(splitmix64(999)))
            % np.uint64(8)
        ).astype(int)
        shard0 = keys[route == 0]
        counts = np.bincount(
            fam.indices_array(shard0).reshape(-1), minlength=64
        )
        assert _chi2_pvalue(counts) > 1e-4


class TestAvalancheMatrix:
    def test_every_input_bit_flips_every_output_bit_half_the_time(self):
        rng = np.random.default_rng(5)
        base = rng.integers(0, 2**63, size=400, dtype=np.int64).astype(np.uint64)
        mixed = splitmix64_array(base)
        for bit in (0, 1, 17, 33, 63):
            flipped = splitmix64_array(base ^ np.uint64(1 << bit))
            diff = mixed ^ flipped
            # Mean Hamming distance near 32 of 64 bits.
            hamming = np.array([int(x).bit_count() for x in diff])
            assert 28 <= hamming.mean() <= 36, f"input bit {bit} weak"
