"""Packet-processing applications built on the filter substrate.

The paper's introduction motivates fast CBFs with concrete router
functions; this package implements two of them end-to-end so the
library can be exercised the way the paper intends:

* :mod:`repro.apps.lpm` — longest-prefix-match IP route lookup with
  per-length filters (Dharmapurikar et al., SIGCOMM 2003 — the paper's
  reference [4]); counting filters make route *withdrawals* work
  without rebuilding.
* :mod:`repro.apps.flow_measurement` — the §IV.D traffic-measurement
  scenario: membership + per-flow packet counting over a monitored
  flow set, with heavy-hitter reporting and accuracy accounting.
* :mod:`repro.apps.classifier` — tuple-space packet classification
  with per-tuple filters (the paper's reference [9] application);
  counting filters keep ACL updates clean.
"""

from repro.apps.lpm import BloomLPMTable, LookupResult
from repro.apps.flow_measurement import FlowMonitor, FlowReport
from repro.apps.classifier import Rule, ClassifyResult, TupleSpaceClassifier

__all__ = [
    "BloomLPMTable",
    "LookupResult",
    "FlowMonitor",
    "FlowReport",
    "Rule",
    "ClassifyResult",
    "TupleSpaceClassifier",
]
