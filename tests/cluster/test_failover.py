"""End-to-end failover acceptance test.

The ISSUE's bar: a shard group of one primary and two replicas in
quorum ack mode, the primary killed (no drain, no flush) mid-workload —
and zero *acknowledged* mutations lost.  Quorum math makes that a
guarantee, not luck: with group size 3, every acked record reached at
least one replica, so the replica with the highest WAL sequence holds
them all.  Promotion is then: pick max(last_seq), clear read-only.
"""

from __future__ import annotations

import asyncio

from repro.cluster.node import build_node_server, recover_node
from repro.filters.factory import FilterSpec, build_filter
from repro.service.client import AsyncFilterClient


def build():
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=4000,
            seed=21,
            extra={"word_overflow": "saturate"},
        )
    )


class TestFailover:
    def test_killing_primary_loses_no_acked_quorum_mutations(self, tmp_path):
        async def main():
            replicas = []
            for i in range(2):
                rec = recover_node(build, wal_dir=tmp_path / f"wal-r{i}")
                server = build_node_server(rec, read_only=True)
                await server.start()
                replicas.append(server)
            primary_rec = recover_node(build, wal_dir=tmp_path / "wal-p")
            primary = build_node_server(
                primary_rec,
                replicas=[("127.0.0.1", r.port) for r in replicas],
                ack_mode="quorum",
                quorum_timeout_s=10.0,
            )
            await primary.start()

            acked: set[bytes] = set()

            async def workload():
                async with AsyncFilterClient(port=primary.port) as client:
                    for batch in range(200):
                        keys = [b"fo-%d-%d" % (batch, i) for i in range(10)]
                        try:
                            await client.insert_many(keys)
                        except Exception:
                            return  # the kill landed mid-flight
                        acked.update(keys)

            async def killer():
                # Let some batches through, then pull the plug (bounded
                # wait so a stalled workload cannot hang the test).
                for _ in range(20_000):
                    if len(acked) >= 300:
                        break
                    await asyncio.sleep(0.001)
                await primary.abort()

            await asyncio.gather(workload(), killer())
            assert len(acked) >= 300  # the workload got going before the kill

            # Failover: promote the replica with the longest WAL.
            promoted = max(replicas, key=lambda r: r.wal.last_seq)
            promoted.read_only = False
            assert promoted.wal.last_seq >= 1

            async with AsyncFilterClient(port=promoted.port) as client:
                answers = await client.query_many(sorted(acked))
                missing = [
                    key
                    for key, present in zip(sorted(acked), answers)
                    if not present
                ]
                assert missing == []  # zero acknowledged mutations lost
                # The promoted node accepts writes: the group lives on.
                await client.insert(b"post-failover")
                assert await client.query(b"post-failover") is True

            for server in replicas:
                await server.stop()

        asyncio.run(main())
