"""Running access/bandwidth statistics for filter operations.

Every filter owns an :class:`AccessStats`; scalar operations record
their observed word-access count and hash-bit consumption, bulk
operations record vectorised aggregates.  The per-query averages these
produce are exactly the numbers reported in Tables I–III of the paper
(e.g. CBF measuring 2.1 accesses per query on traces because negative
queries early-exit before touching all ``k`` counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["OpKind", "OpStats", "AccessStats"]


class OpKind(str, enum.Enum):
    """Operation classes tracked separately, as in the paper's tables."""

    QUERY = "query"
    INSERT = "insert"
    DELETE = "delete"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class OpStats:
    """Aggregate counters for one operation kind."""

    operations: int = 0
    word_accesses: float = 0.0
    hash_bits: float = 0.0
    hash_calls: int = 0

    def record(
        self,
        *,
        count: int = 1,
        word_accesses: float,
        hash_bits: float,
        hash_calls: int,
    ) -> None:
        """Accumulate ``count`` operations' worth of cost."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.operations += count
        self.word_accesses += word_accesses
        self.hash_bits += hash_bits
        self.hash_calls += hash_calls

    @property
    def mean_accesses(self) -> float:
        """Average memory accesses per operation (0 if none recorded)."""
        return self.word_accesses / self.operations if self.operations else 0.0

    @property
    def mean_bits(self) -> float:
        """Average access bandwidth (hash bits) per operation."""
        return self.hash_bits / self.operations if self.operations else 0.0

    @property
    def mean_hash_calls(self) -> float:
        """Average hash computations per operation."""
        return self.hash_calls / self.operations if self.operations else 0.0

    def merge(self, other: "OpStats") -> None:
        """Fold another aggregate into this one (for multi-run averaging)."""
        self.operations += other.operations
        self.word_accesses += other.word_accesses
        self.hash_bits += other.hash_bits
        self.hash_calls += other.hash_calls


@dataclass
class AccessStats:
    """Per-filter access statistics, split by operation kind."""

    query: OpStats = field(default_factory=OpStats)
    insert: OpStats = field(default_factory=OpStats)
    delete: OpStats = field(default_factory=OpStats)

    def for_kind(self, kind: OpKind) -> OpStats:
        """Return the aggregate for ``kind``."""
        return getattr(self, kind.value)

    def record(
        self,
        kind: OpKind,
        *,
        count: int = 1,
        word_accesses: float,
        hash_bits: float,
        hash_calls: int,
    ) -> None:
        """Record cost against the given operation kind."""
        self.for_kind(kind).record(
            count=count,
            word_accesses=word_accesses,
            hash_bits=hash_bits,
            hash_calls=hash_calls,
        )

    @property
    def update(self) -> OpStats:
        """Combined insert+delete aggregate ("update" in Table II)."""
        combined = OpStats()
        combined.merge(self.insert)
        combined.merge(self.delete)
        return combined

    def reset(self) -> None:
        """Zero all counters (e.g. between warm-up and measurement)."""
        self.query = OpStats()
        self.insert = OpStats()
        self.delete = OpStats()

    def merge(self, other: "AccessStats") -> None:
        """Fold another filter's statistics into this one."""
        self.query.merge(other.query)
        self.insert.merge(other.insert)
        self.delete.merge(other.delete)

    def iter_totals(self):
        """Yield ``(kind_name, OpStats)`` for each tracked operation kind.

        The exporter-facing view: unlike :meth:`summary` (per-op means,
        for humans), this hands out the raw monotone totals that map
        onto Prometheus counters (``repro_word_accesses_total`` etc. —
        the paper's Tables I–III axis as a time series).
        """
        for kind in OpKind:
            yield kind.value, self.for_kind(kind)

    def summary(self) -> dict[str, dict[str, float]]:
        """Return a plain-dict summary for reporting code."""
        out: dict[str, dict[str, float]] = {}
        for kind in OpKind:
            stats = self.for_kind(kind)
            out[kind.value] = {
                "operations": float(stats.operations),
                "mean_accesses": stats.mean_accesses,
                "mean_bits": stats.mean_bits,
                "mean_hash_calls": stats.mean_hash_calls,
            }
        upd = self.update
        out["update"] = {
            "operations": float(upd.operations),
            "mean_accesses": upd.mean_accesses,
            "mean_bits": upd.mean_bits,
            "mean_hash_calls": upd.mean_hash_calls,
        }
        return out
