"""Tests for the first-passage saturation model, validated against the
churn simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.saturation import (
    churn_transition_matrix,
    expected_epochs_to_saturation,
    saturation_probability_by_epoch,
)
from repro.errors import ConfigurationError
from repro.filters.mpcbf import MPCBF
from repro.workloads.churn import run_churn


class TestTransitionMatrix:
    def test_rows_are_distributions(self):
        matrix = churn_transition_matrix(1000, 128, 8, 0.2)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
        assert (matrix >= 0).all()

    def test_absorbing_state(self):
        matrix = churn_transition_matrix(1000, 128, 8, 0.2)
        assert matrix[-1, -1] == 1.0
        assert matrix[-1, :-1].sum() == 0.0

    def test_full_churn_resets_occupancy(self):
        # c = 1: next state is pure arrivals, independent of current.
        matrix = churn_transition_matrix(1000, 128, 8, 1.0)
        np.testing.assert_allclose(matrix[0, :-1], matrix[5, :-1], atol=1e-12)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            churn_transition_matrix(1000, 128, 8, 0.0)
        with pytest.raises(ConfigurationError):
            churn_transition_matrix(0, 128, 8, 0.5)


class TestSaturationProbability:
    def test_monotone_in_epochs(self):
        probs = saturation_probability_by_epoch(300, 128, 4, 0.2, 30)
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))
        assert 0.0 <= probs[0] <= probs[-1] <= 1.0

    def test_larger_n_max_safer(self):
        tight = saturation_probability_by_epoch(300, 128, 4, 0.2, 20)[-1]
        safe = saturation_probability_by_epoch(300, 128, 8, 0.2, 20)[-1]
        assert safe < tight

    def test_median_first_passage(self):
        tight = expected_epochs_to_saturation(300, 128, 4, 0.2, horizon=200)
        safe = expected_epochs_to_saturation(300, 128, 10, 0.2, horizon=200)
        assert tight < safe

    def test_infinite_when_generously_sized(self):
        assert expected_epochs_to_saturation(
            100, 1024, 20, 0.2, horizon=500
        ) == float("inf")


class TestModelMatchesSimulation:
    def test_tight_sizing_first_passage(self):
        """The model's any-word saturation curve must track the churn
        simulator's measured saturation over multiple seeds."""
        n, l, n_max, c, epochs = 300, 128, 4, 0.2, 12
        predicted = saturation_probability_by_epoch(n, l, n_max, c, epochs)
        trials = 12
        saturated_by_epoch = np.zeros(epochs)
        for seed in range(trials):
            filt = MPCBF(l, 64, 3, n_max=n_max, seed=seed, word_overflow="saturate")
            result = run_churn(
                filt,
                population=n,
                churn_fraction=c,
                epochs=epochs,
                probe_count=100,
                seed=seed,
            )
            saturated_by_epoch += np.array(
                [1 if s > 0 else 0 for s in result.saturated_words_by_epoch]
            )
        observed = saturated_by_epoch / trials
        # Same shape: the model (an upper-ish bound) within a loose band
        # of the 12-trial empirical frequency at the midpoint and end.
        for t in (epochs // 2, epochs - 1):
            assert observed[t] == pytest.approx(predicted[t], abs=0.35)
        # And directionally: if the model says near-certain saturation,
        # the simulation must show it too.
        if predicted[-1] > 0.9:
            assert observed[-1] > 0.5
