"""Simulated word-addressable memory with access counting.

Hardware CBFs live in on-chip SRAM fetched one machine word at a time;
the whole point of the paper's partitioned layout is to bound the number
of word fetches per operation.  :class:`WordMemory` models exactly that:
an array of ``w``-bit words (stored as Python ints so any ``w`` works),
with read/write counters.  The scalar paths of the partitioned filters
route every access through it so the empirical access counts in
Tables I–III are *observed*, not assumed from the formulas.
"""

from __future__ import annotations

__all__ = ["WordMemory"]


class WordMemory:
    """An array of fixed-width words with read/write accounting.

    Parameters
    ----------
    num_words:
        Number of addressable words.
    word_bits:
        Width of each word in bits; writes are masked to this width.
    """

    def __init__(self, num_words: int, word_bits: int) -> None:
        if num_words < 1:
            raise ValueError(f"num_words must be >= 1, got {num_words}")
        if word_bits < 1:
            raise ValueError(f"word_bits must be >= 1, got {word_bits}")
        self.num_words = num_words
        self.word_bits = word_bits
        self._mask = (1 << word_bits) - 1
        self._words = [0] * num_words
        self.reads = 0
        self.writes = 0

    def __len__(self) -> int:
        return self.num_words

    @property
    def total_bits(self) -> int:
        """Total storage in bits."""
        return self.num_words * self.word_bits

    @property
    def accesses(self) -> int:
        """Total reads plus writes."""
        return self.reads + self.writes

    def read(self, index: int) -> int:
        """Fetch one word, counting the access."""
        self.reads += 1
        return self._words[index]

    def write(self, index: int, value: int) -> None:
        """Store one word (masked to the word width), counting the access."""
        self.writes += 1
        self._words[index] = value & self._mask

    def peek(self, index: int) -> int:
        """Read a word *without* counting (for assertions and tests)."""
        return self._words[index]

    def poke(self, index: int, value: int) -> None:
        """Write a word *without* counting (bulk initialisation)."""
        self._words[index] = value & self._mask

    def reset_counters(self) -> None:
        """Zero the access counters, keeping contents."""
        self.reads = 0
        self.writes = 0

    def clear(self) -> None:
        """Zero all words and counters."""
        self._words = [0] * self.num_words
        self.reset_counters()

    def popcount(self) -> int:
        """Total number of set bits across the memory."""
        return sum(word.bit_count() for word in self._words)
