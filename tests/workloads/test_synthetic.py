"""Tests for the synthetic string workload generator (§IV.A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.encoders import encode_str_array
from repro.workloads.synthetic import (
    MembershipWorkload,
    make_synthetic_workload,
    random_strings,
)


class TestRandomStrings:
    def test_count_and_uniqueness(self, rng):
        strings = random_strings(5000, rng=rng)
        assert len(strings) == 5000
        assert len(np.unique(strings)) == 5000

    def test_alphabet(self, rng):
        strings = random_strings(500, rng=rng)
        allowed = set(b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
        for s in strings[:100]:
            assert set(bytes(s)) <= allowed
            assert len(bytes(s)) == 5

    def test_custom_length(self, rng):
        strings = random_strings(100, length=8, rng=rng)
        assert strings.dtype == np.dtype("S8")

    def test_exclusion(self, rng):
        first = random_strings(2000, rng=rng)
        second = random_strings(2000, rng=rng, exclude=first)
        assert len(np.intersect1d(first, second)) == 0

    def test_deterministic_per_seed(self):
        a = random_strings(100, rng=np.random.default_rng(7))
        b = random_strings(100, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_space_exhaustion_guard(self, rng):
        with pytest.raises(ConfigurationError):
            random_strings(100, length=1, rng=rng)


class TestMakeSyntheticWorkload:
    @pytest.fixture(scope="class")
    def workload(self) -> MembershipWorkload:
        return make_synthetic_workload(
            n_members=2000, n_queries=20_000, seed=3
        )

    def test_shapes(self, workload):
        assert workload.n_members == 2000
        assert len(workload.queries) == 20_000
        assert len(workload.query_is_member) == 20_000
        assert len(workload.churn_out) == 400  # 20% of members
        assert len(workload.churn_in) == 400

    def test_member_fraction(self, workload):
        assert workload.query_is_member.mean() == pytest.approx(0.8, abs=0.01)

    def test_ground_truth_exact(self, workload):
        final = np.sort(workload.final_members())
        pos = np.clip(np.searchsorted(final, workload.queries), 0, len(final) - 1)
        truth = final[pos] == workload.queries
        np.testing.assert_array_equal(truth, workload.query_is_member)

    def test_churn_out_subset_of_members(self, workload):
        assert np.isin(workload.churn_out, workload.members).all()

    def test_churn_in_disjoint_from_members(self, workload):
        assert not np.isin(workload.churn_in, workload.members).any()

    def test_nonmember_queries_never_inserted(self, workload):
        inserted = np.sort(
            np.concatenate([workload.members, workload.churn_in])
        )
        non_members = workload.queries[~workload.query_is_member]
        pos = np.clip(
            np.searchsorted(inserted, non_members), 0, len(inserted) - 1
        )
        assert not (inserted[pos] == non_members).any()

    def test_seeds_differ(self):
        a = make_synthetic_workload(n_members=100, n_queries=500, seed=0)
        b = make_synthetic_workload(n_members=100, n_queries=500, seed=1)
        assert not np.array_equal(a.members, b.members)

    def test_encoded_queries(self, workload):
        np.testing.assert_array_equal(
            workload.encoded_queries(), encode_str_array(workload.queries)
        )

    def test_no_churn(self):
        w = make_synthetic_workload(
            n_members=500, n_queries=1000, churn_fraction=0.0, seed=1
        )
        assert len(w.churn_out) == 0
        np.testing.assert_array_equal(np.sort(w.final_members()), np.sort(w.members))

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_workload(member_fraction=1.5)
        with pytest.raises(ConfigurationError):
            make_synthetic_workload(churn_fraction=-0.1)
