"""Shared helpers for the benchmark targets.

Every ``bench_*`` file regenerates one table/figure of the paper via
the drivers in :mod:`repro.bench.experiments`, printing the rows the
paper reports.  Heavy experiment drivers run exactly once per session
(``benchmark.pedantic(rounds=1)``); micro-benchmarks (bench_ops) use
normal pytest-benchmark timing.

Scale: set ``REPRO_SCALE=paper`` for the paper's exact dataset sizes
(default ``ci`` divides sizes ~10x with identical ratios).
"""

from __future__ import annotations

import pytest

from repro.bench.scale import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
