"""Snapshot/restore for the serving daemon.

Snapshots reuse :mod:`repro.serialize` — the same bytes a MapReduce
broadcast would ship — written with the classic crash-safe dance: dump
to a ``.tmp`` sibling, ``fsync``, then :func:`os.replace` so the
snapshot path always holds either the previous complete snapshot or the
new complete snapshot, never a torn write.

:func:`load_snapshot` sniffs the magic, so a daemon restarts equally
well from a single-filter dump (``MPCB``) or a sharded-bank dump
(``MPBK``).

Integrity: snapshots carry an 8-byte trailer — ``MPCK`` + the CRC32 of
everything before it — so a corrupted dump fails loudly at restore time
instead of restoring silently-wrong counters.  Dumps written before the
trailer existed load unchanged (no trailer, no check); truncation of a
trailered dump removes the trailer and is then caught by the array
length checks in :mod:`repro.serialize`.

Cluster nodes additionally need each snapshot to record *which* WAL
sequence it covers, and that pairing must be crash-atomic — a snapshot
observed with the wrong sequence replays the wrong WAL suffix (double
counting or lost mutations).  So the sequence lives inside the snapshot
file itself, in a 16-byte ``MPCS`` trailer (``u64 wal_seq | 'MPCS' |
u32 crc``): one :func:`os.replace` publishes blob and sequence
together, with no ordering window a crash can split.
"""

from __future__ import annotations

import asyncio
import os
import struct
import time
import zlib
from pathlib import Path

from repro.errors import ConfigurationError
from repro.observability.spans import spanned
from repro.serialize import dump_bank, dump_filter, load_bank, load_filter
from repro.service.storage import REAL_STORAGE, Storage

__all__ = [
    "SnapshotManager",
    "write_snapshot",
    "load_snapshot",
    "load_snapshot_bytes",
    "snapshot_bytes",
    "snapshot_wal_seq",
    "with_snapshot_seq",
]

#: Trailer magic: snapshot blob | b"MPCK" | u32 crc32(blob).
_CRC_MAGIC = b"MPCK"
_CRC_TRAILER = struct.Struct("<4sI")
#: Seq-carrying trailer: blob | u64 wal_seq | b"MPCS" | u32 crc32 of
#: everything before the crc field (so the sequence is covered too).
_SEQ_MAGIC = b"MPCS"
_SEQ_TRAILER = struct.Struct("<Q4sI")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


def _split_trailer(
    data: bytes, *, source: str = "snapshot"
) -> tuple[bytes, int | None]:
    """Strip and verify the integrity trailer: ``(payload, wal_seq)``.

    ``wal_seq`` is None for trailer-less and plain-CRC (``MPCK``) dumps;
    either CRC flavour raises on mismatch.
    """
    if len(data) >= _CRC_TRAILER.size:
        magic, crc = _CRC_TRAILER.unpack_from(data, len(data) - _CRC_TRAILER.size)
        if magic == _CRC_MAGIC:
            payload = data[: -_CRC_TRAILER.size]
            if zlib.crc32(payload) != crc:
                raise ConfigurationError(
                    f"{source}: snapshot CRC mismatch (corrupted or torn dump)"
                )
            return payload, None
        if magic == _SEQ_MAGIC and len(data) >= _SEQ_TRAILER.size:
            if zlib.crc32(data[:-_U32.size]) != crc:
                raise ConfigurationError(
                    f"{source}: snapshot CRC mismatch (corrupted or torn dump)"
                )
            (wal_seq,) = _U64.unpack_from(data, len(data) - _SEQ_TRAILER.size)
            return data[: -_SEQ_TRAILER.size], wal_seq
    return data, None


def _append_trailer(blob: bytes, wal_seq: int | None) -> bytes:
    if wal_seq is None:
        return blob + _CRC_TRAILER.pack(_CRC_MAGIC, zlib.crc32(blob))
    head = blob + _U64.pack(wal_seq) + _SEQ_MAGIC
    return head + _U32.pack(zlib.crc32(head))


def snapshot_bytes(filt, *, wal_seq: int | None = None) -> bytes:
    """Serialise a filter (or bank) with the CRC32 integrity trailer.

    With ``wal_seq`` the trailer also records the WAL sequence the dump
    covers (cluster nodes), crash-atomically with the state itself.
    """
    if hasattr(filt, "shards"):
        blob = dump_bank(filt)
    else:
        blob = dump_filter(filt)
    return _append_trailer(blob, wal_seq)


def snapshot_wal_seq(data: bytes) -> int | None:
    """WAL sequence embedded in a snapshot blob (None when absent)."""
    return _split_trailer(data)[1]


def with_snapshot_seq(data: bytes, wal_seq: int, *, source: str = "snapshot") -> bytes:
    """Re-trailer a snapshot blob so it records ``wal_seq``.

    Verifies the incoming trailer (if any) before rewriting it — used
    when a replica persists a primary's state transfer, where the
    covered sequence arrives beside the blob rather than inside it.
    """
    payload, _ = _split_trailer(data, source=source)
    return _append_trailer(payload, wal_seq)


def _write_bytes_atomic(
    blob: bytes, path: Path, *, storage: Storage | None = None
) -> dict:
    """The crash-safe publish dance shared by every snapshot writer."""
    storage = storage if storage is not None else REAL_STORAGE
    started = time.perf_counter()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    handle = storage.open(tmp, "wb")
    try:
        handle.write(blob)
        handle.flush()
        storage.fsync(handle)
    finally:
        handle.close()
    os.replace(tmp, path)
    # The rename itself lives in the directory's metadata: without a
    # directory fsync a power loss can revert the publish even though
    # the file's bytes are stable (same discipline as the WAL).
    storage.fsync_path(path.parent)
    return {
        "path": str(path),
        "bytes": len(blob),
        "crc32": zlib.crc32(_split_trailer(blob, source=str(path))[0]),
        "elapsed_s": time.perf_counter() - started,
    }


def write_snapshot(
    filt,
    path: str | Path,
    *,
    wal_seq: int | None = None,
    storage: Storage | None = None,
) -> dict:
    """Atomically write a snapshot; returns a small report dict."""
    return _write_bytes_atomic(
        snapshot_bytes(filt, wal_seq=wal_seq), Path(path), storage=storage
    )


def load_snapshot_bytes(data: bytes, *, source: str = "snapshot"):
    """Load a snapshot blob (filter or bank), verifying its CRC trailer.

    Pre-trailer dumps (nothing to verify) still load — the check only
    applies when an ``MPCK``/``MPCS`` trailer is present.
    """
    data, _ = _split_trailer(data, source=source)
    if data[:4] == b"MPBK":
        return load_bank(data)
    if data[:4] == b"MPCB":
        return load_filter(data)
    raise ConfigurationError(f"{source}: not a repro snapshot (bad magic)")


def load_snapshot(path: str | Path):
    """Load a snapshot written by :func:`write_snapshot` (filter or bank)."""
    return load_snapshot_bytes(Path(path).read_bytes(), source=str(path))


class SnapshotManager:
    """Periodic + on-demand snapshots of the served filter.

    The actual dump must not race the batcher's worker thread mutating
    the filter, so :meth:`save` accepts a ``runner`` — the server passes
    :meth:`~repro.service.batching.MicroBatcher.run`, which serialises
    the dump after in-flight batches on the same worker thread.
    """

    def __init__(
        self,
        filt,
        path: str | Path,
        *,
        interval_s: float | None = None,
        metrics=None,
        storage: Storage | None = None,
    ) -> None:
        self.filter = filt
        self.path = Path(path)
        self.interval_s = interval_s
        self.storage = storage if storage is not None else REAL_STORAGE
        self.last_report: dict | None = None
        self.last_saved_monotonic: float | None = None
        #: Optional span sink (:class:`ServiceMetrics`) timing each dump.
        self.metrics = metrics
        self._task: asyncio.Task | None = None

    @property
    def age_s(self) -> float | None:
        """Seconds since the last successful dump (None before the first)."""
        if self.last_saved_monotonic is None:
            return None
        return time.monotonic() - self.last_saved_monotonic

    def _dump(self) -> dict:
        """Write the filter to :attr:`path`; subclasses add metadata."""
        return write_snapshot(self.filter, self.path, storage=self.storage)

    @spanned("snapshot_write")
    def save_now(self) -> dict:
        """Dump synchronously (caller must own the filter's thread)."""
        report = self._dump()
        self.last_report = report
        self.last_saved_monotonic = time.monotonic()
        return report

    def install_bytes(self, blob: bytes) -> dict:
        """Atomically persist pre-serialised snapshot bytes to :attr:`path`.

        The durability half of a replication state transfer: the replica
        must hold the primary's snapshot on disk *before* it discards the
        local WAL history the snapshot supersedes, or a crash in between
        silently loses every mutation the transfer carried.
        """
        report = _write_bytes_atomic(blob, self.path, storage=self.storage)
        self.last_report = report
        self.last_saved_monotonic = time.monotonic()
        return report

    async def save(self, runner=None) -> dict:
        """Dump via ``runner`` (an async exclusive-execution hook)."""
        if runner is None:
            return self.save_now()
        return await runner(self.save_now)

    def start_periodic(self, runner) -> None:
        """Begin the periodic snapshot loop (no-op without an interval)."""
        if self.interval_s and self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._periodic(runner)
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _periodic(self, runner) -> None:
        assert self.interval_s is not None
        while True:
            await asyncio.sleep(self.interval_s)
            await self.save(runner)
