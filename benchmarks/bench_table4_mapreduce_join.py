"""Table IV — MapReduce reduce-side join.

Regenerates the rows of the paper's table4 via
:func:`repro.bench.experiments.table4` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_table4(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.table4, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
