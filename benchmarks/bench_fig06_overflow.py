"""Fig. 6 — MPCBF-1 word-overflow probability vs n_max.

Regenerates the rows of the paper's fig06 via
:func:`repro.bench.experiments.fig06` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig06(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig06, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
