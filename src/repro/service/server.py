"""Asyncio TCP daemon serving a filter (or sharded bank) over the wire.

Architecture::

    client conns ──frames──▶ per-connection handler
                                  │  (parse, time, frame responses)
                                  ▼
                            MicroBatcher queue ──▶ single worker thread
                                  │                  bulk_insert/bulk_query
                                  ▼                  on the hosted filter
                            coalesced batches

Every connection handler is an asyncio task; key-carrying requests all
funnel through one :class:`~repro.service.batching.MicroBatcher`, so
concurrency across connections is precisely what feeds the coalescer.
Control ops (PING/STATS/SNAPSHOT) bypass the batch queue but reads of
filter state still serialise onto the worker thread.

Shutdown is graceful by design: ``stop()`` (wired to SIGTERM/SIGINT by
:func:`serve`) stops accepting, lets in-flight requests drain through
the batcher, writes a final snapshot when one is configured, and only
then closes.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import time

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    UnsupportedOperationError,
)
from repro.observability.httpd import ObservabilityHTTPServer
from repro.observability.logging import get_logger, new_request_id
from repro.observability.prometheus import render_metrics
from repro.observability.spans import span
from repro.overload import AdmissionController, Deadline, TokenBucket
from repro.service.batching import FilterExecutor, MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    FEATURE_BULK64,
    PROTOCOL_VERSION_BULK64,
    REBALANCE_OPS,
    SUPPORTED_VERSIONS,
    Opcode,
    ProtocolError,
    decode_deadline_body,
    decode_hello_body,
    decode_migrate_apply_body,
    decode_migrate_commit_body,
    decode_repl_snapshot_body,
    decode_replicate_body,
    decode_ring_epoch_set,
    encode_ack_body,
    encode_error_body,
    encode_frame,
    encode_hello_body,
    encode_migrate_read_resp,
    error_code_for,
    format_retry_after,
    pack_bools,
    pack_counts64,
    parse_request,
    read_frame,
)
from repro.service.snapshot import (
    SnapshotManager,
    load_snapshot_bytes,
    with_snapshot_seq,
)
from repro.service.transport import REAL_TRANSPORT, Transport

__all__ = ["FilterServer", "build_admission", "serve"]

logger = get_logger("service.server")


class FilterServer:
    """TCP front-end for one filter instance.

    Parameters
    ----------
    filt:
        Any :class:`~repro.filters.base.FilterBase` or
        :class:`~repro.parallel.ShardedFilterBank`.
    host, port:
        Bind address; port 0 picks an ephemeral port (read it back from
        ``server.port`` after :meth:`start` — tests do).
    max_batch, max_delay_us:
        Coalescer bounds, see :class:`~repro.service.batching.MicroBatcher`.
    fuse_mutations:
        Fuse INSERT/DELETE batches across requests (see
        :class:`~repro.service.batching.FilterExecutor`).
    snapshot_path, snapshot_interval_s:
        Enable on-demand (and optionally periodic) snapshots.
    metrics_port:
        When not None, serve ``/metrics`` (Prometheus text exposition)
        and ``/healthz`` over HTTP on this port (0 picks an ephemeral
        port, read back from ``.metrics_port`` after :meth:`start`).
    wal:
        Optional :class:`~repro.cluster.wal.WriteAheadLog`.  Every
        mutation request then appends a durable record before it is
        applied, and the server answers REPL_STATUS so peers can read
        its offset.
    replication:
        Optional :class:`~repro.cluster.replication.ReplicationManager`
        making this node a primary: acknowledged mutations honour its
        ack mode (async or quorum).  Requires ``wal``.
    read_only:
        Reject client INSERT/DELETE with an UNSUPPORTED error frame —
        the replica role.  Only a read-only node accepts the
        replication write opcodes (REPLICATE / REPL_SNAPSHOT), so a
        primary's WAL sequencing cannot be bypassed or reset by a
        stray client; state transfers additionally require a snapshot
        path, because installing one discards the local WAL.
    snapshot_manager:
        Inject a pre-built manager (e.g. the cluster's WAL-truncating
        :class:`~repro.cluster.node.WalSnapshotManager`) instead of
        building one from ``snapshot_path``.
    rebalance:
        Optional :class:`~repro.rebalance.migrator.RebalanceState`.
        Enables the rebalance opcodes (RING_EPOCH / MIGRATE_*) and
        installs the epoch-fencing gate in front of every client
        operation; cluster nodes always carry one.
    admission:
        Optional :class:`~repro.overload.AdmissionController`.  Every
        keyed client request (INSERT/QUERY/DELETE/BATCH) then passes
        the admission gate before it may queue: past the inflight bound
        or an empty token bucket the request is answered with an
        ``OVERLOADED`` frame carrying a retry-after hint, and past the
        high-water mark the node degrades to reads-only (queries keep
        flowing off the level-1 mirror; mutations shed).  Control,
        replication, and rebalance opcodes bypass the gate — shedding
        a MIGRATE_COMMIT or a replica's catch-up stream would turn an
        overload into an availability incident.
    deadline_default_s:
        Budget assumed for keyed requests that arrive *without* a
        DEADLINE wrapper.  ``None`` (the default) leaves unwrapped
        requests deadline-free, matching pre-overload behaviour.
    transport:
        Connection factory (default: real TCP).  The chaos harness
        passes a :class:`~repro.chaos.network.SimNetwork` so the server
        accepts in-memory simulated connections instead of binding a
        socket.
    executor:
        Shared worker executor for the batcher (see
        :class:`~repro.service.batching.MicroBatcher`); ``None`` lets
        the batcher own a private single worker thread.
    """

    def __init__(
        self,
        filt,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 512,
        max_delay_us: float = 200.0,
        fuse_mutations: bool = False,
        snapshot_path: str | None = None,
        snapshot_interval_s: float | None = None,
        metrics_port: int | None = None,
        wal=None,
        replication=None,
        read_only: bool = False,
        snapshot_manager: SnapshotManager | None = None,
        rebalance=None,
        admission: AdmissionController | None = None,
        deadline_default_s: float | None = None,
        transport: Transport | None = None,
        executor=None,
    ) -> None:
        if replication is not None and wal is None:
            raise ConfigurationError("replication requires a write-ahead log")
        if deadline_default_s is not None and deadline_default_s <= 0:
            raise ConfigurationError(
                f"deadline_default_s must be > 0, got {deadline_default_s}"
            )
        self.filter = filt
        self.host = host
        self.port = port
        self.wal = wal
        self.replication = replication
        self.read_only = read_only
        self.rebalance = rebalance
        self.admission = admission
        self.deadline_default_s = deadline_default_s
        self.transport = transport if transport is not None else REAL_TRANSPORT
        self.metrics = ServiceMetrics()
        if admission is not None and admission.metrics is None:
            admission.metrics = self.metrics
        if wal is not None and wal.metrics is None:
            wal.metrics = self.metrics
        self.executor = FilterExecutor(
            filt,
            fuse_mutations=fuse_mutations,
            wal=wal,
            gate=None if rebalance is None else rebalance.gate,
        )
        self.batcher = MicroBatcher(
            self.executor.apply,
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            metrics=self.metrics,
            executor=executor,
        )
        if snapshot_manager is not None:
            self.snapshots = snapshot_manager
        else:
            self.snapshots = (
                SnapshotManager(
                    filt,
                    snapshot_path,
                    interval_s=snapshot_interval_s,
                    metrics=self.metrics,
                )
                if snapshot_path
                else None
            )
        self.metrics_port = metrics_port
        self.metrics_http = (
            ObservabilityHTTPServer(
                self._render_metrics,
                self._health,
                host=host,
                port=metrics_port,
            )
            if metrics_port is not None
            else None
        )
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._stopped = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- observability ---------------------------------------------------
    def _render_metrics(self) -> str:
        # A hosted RouterBackend contributes the ring/fan-out families;
        # duck-typed on .ring so this module need not import the cluster.
        router = self.filter if hasattr(self.filter, "ring") else None
        return render_metrics(
            self.metrics,
            self.filter,
            self.snapshots,
            wal=self.wal,
            replication=self.replication,
            router=router,
            rebalance=self.rebalance,
            admission=self.admission,
        )

    @property
    def role(self) -> str:
        """``primary`` / ``replica`` / ``router`` / ``single``."""
        if self.replication is not None:
            return "primary"
        if self.read_only:
            return "replica"
        if hasattr(self.filter, "ring"):
            return "router"
        return "single"

    def _health(self) -> dict:
        payload = {
            "status": "draining" if self._draining else "ok",
            "filter": getattr(self.filter, "name", type(self.filter).__name__),
            "uptime_s": round(
                time.monotonic() - self.metrics.started_at, 3
            ),
            "connections_active": self.metrics.connections_active,
            "role": self.role,
        }
        if self.wal is not None:
            payload["wal_last_seq"] = self.wal.last_seq
        if self.admission is not None:
            payload["degraded"] = self.admission.degraded
        return payload

    def _stats_report(self) -> dict:
        """The STATS document (runs on the batcher's worker thread)."""
        report = self.metrics.snapshot(self.filter)
        if self.wal is not None:
            cluster: dict = {"role": self.role, "wal": self.wal.describe()}
            if self.replication is not None:
                cluster["replication"] = self.replication.describe()
            report["cluster"] = cluster
        if hasattr(self.filter, "ring"):
            report["router"] = self.filter.describe()
        if self.rebalance is not None:
            report["rebalance"] = self.rebalance.describe()
        if self.admission is not None:
            report["admission"] = self.admission.describe()
        return report

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind, start the coalescer, metrics endpoint, and snapshots."""
        self.batcher.start()
        self._server = await self.transport.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self.transport.server_port(self._server)
        if self.metrics_http is not None:
            await self.metrics_http.start()
            self.metrics_port = self.metrics_http.port
        if self.snapshots is not None:
            self.snapshots.start_periodic(self.batcher.run)
        if self.replication is not None:
            self.replication.start()
        logger.info(
            "server_started",
            extra={
                "filter": getattr(self.filter, "name", None),
                "host": self.host,
                "port": self.port,
                "metrics_port": self.metrics_port,
            },
        )

    async def stop(self) -> None:
        """Graceful drain: close listener, finish in-flight requests,
        flush the batcher, write a final snapshot."""
        self._draining = True  # /healthz flips to 503 while we drain
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Kick idle connections off their blocking reads; handlers that
        # are mid-request finish writing their response first.
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.snapshots is not None:
            await self.snapshots.stop()
        await self.batcher.stop()
        if self.snapshots is not None:
            self.snapshots.save_now()
        if self.replication is not None:
            await self.replication.stop()
        if self.wal is not None:
            self.wal.close()
        # The metrics endpoint outlives the drain so operators can watch
        # it happen; it is the last thing to go dark.
        if self.metrics_http is not None:
            await self.metrics_http.stop()
        logger.info("server_stopped", extra={"port": self.port})
        self._stopped.set()

    async def abort(self) -> None:
        """Ungraceful shutdown: drop everything on the floor, now.

        The in-process stand-in for ``kill -9`` that the failover and
        crash-recovery tests use — no drain, no final snapshot, no WAL
        flush beyond what the fsync policy already forced.  Real state
        after this is exactly what a crash would have left.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            writer.transport.abort()
        for task in list(self._connections):
            task.cancel()
        self.batcher.abort()
        if self.replication is not None:
            await self.replication.stop()
        if self.snapshots is not None:
            await self.snapshots.stop()
        if self.metrics_http is not None:
            await self.metrics_http.stop()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections_opened += 1
        self.metrics.connections_active += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is broken; answer once and hang up.
                    await self._send_error(writer, exc)
                    break
                except OSError:
                    break  # peer reset / transport aborted mid-read
                if frame is None:
                    break
                opcode, body = frame
                request_id = new_request_id()
                self.metrics.bytes_in += len(body) + 6
                started = time.perf_counter()
                try:
                    response = await self._dispatch(opcode, body, request_id)
                except ProtocolError as exc:
                    # Bad body in a well-framed request: answer, carry on.
                    response = self._error_frame(exc, request_id)
                except ReproError as exc:
                    response = self._error_frame(exc, request_id)
                latency_us = (time.perf_counter() - started) * 1e6
                self.metrics.record_op(opcode.name, latency_us)
                self.metrics.bytes_out += len(response)
                if logger.isEnabledFor(logging.DEBUG):
                    logger.debug(
                        "request",
                        extra={
                            "request_id": request_id,
                            "op": opcode.name,
                            "latency_us": round(latency_us, 1),
                            "bytes_in": len(body) + 6,
                            "bytes_out": len(response),
                        },
                    )
                writer.write(response)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            # abort() cancels handlers mid-read; finishing cleanly keeps
            # asyncio's stream-task callback from logging the cancel.
            pass
        finally:
            self.metrics.connections_active -= 1
            self._writers.discard(writer)
            if task is not None:
                self._connections.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    #: Opcode → admission-cost kind; the controller prices mutations
    #: higher than queries (see :data:`repro.overload.DEFAULT_COSTS`).
    _ADMIT_KINDS = {
        Opcode.INSERT: "insert",
        Opcode.QUERY: "query",
        Opcode.DELETE: "delete",
        # Counting is a read probe; price it like a query.
        Opcode.BULK64_COUNT: "query",
    }

    async def _dispatch(
        self, opcode: Opcode, body: bytes, request_id: str | None = None
    ) -> bytes:
        deadline: Deadline | None = None
        if opcode == Opcode.DEADLINE:
            # Unwrap: the budget is *remaining* microseconds as of the
            # client's send; queue time on this side counts against it.
            budget_us, opcode, body = decode_deadline_body(body)
            deadline = Deadline.after(budget_us / 1e6)
        if opcode == Opcode.PING:
            return encode_frame(Opcode.OK)
        if opcode == Opcode.HELLO:
            # Capability discovery: echo the server's version ceiling
            # and feature bits; the client takes the intersection.
            decode_hello_body(body)
            return encode_frame(
                Opcode.HELLO,
                encode_hello_body(max(SUPPORTED_VERSIONS), FEATURE_BULK64),
            )
        if opcode == Opcode.STATS:
            report = await self.batcher.run(self._stats_report)
            return encode_frame(
                Opcode.JSON, json.dumps(report).encode("utf-8")
            )
        if opcode == Opcode.SNAPSHOT:
            if self.snapshots is None:
                raise ProtocolError("server has no snapshot path configured")
            report = await self.snapshots.save(self.batcher.run)
            self.metrics.snapshots_written += 1
            return encode_frame(
                Opcode.JSON, json.dumps(report).encode("utf-8")
            )
        if opcode in (Opcode.REPLICATE, Opcode.REPL_STATUS, Opcode.REPL_SNAPSHOT):
            return await self._dispatch_replication(opcode, body)
        if opcode in REBALANCE_OPS:
            return await self._dispatch_rebalance(opcode, body)
        with span("protocol_decode", self.metrics):
            # Bulk64 bodies decode to a zero-copy u64 view; legacy
            # bodies pay the per-key slicing here.
            request = parse_request(opcode, body)
        if request.columnar:
            with span("protocol_copy", self.metrics):
                # Materialise the column in native byte order.  On a
                # little-endian host the wire dtype *is* the native
                # dtype, so this is a no-op view — the span keeps the
                # decode-vs-copy split honest on any architecture.
                request.keys = np.asarray(request.keys, dtype=np.uint64)
            self.metrics.record_fastpath(len(request.keys))
        if self.read_only and request.op in (Opcode.INSERT, Opcode.DELETE):
            raise UnsupportedOperationError(
                "this node is a read-only replica; send writes to its primary"
            )
        if deadline is None and self.deadline_default_s is not None:
            deadline = Deadline.after(self.deadline_default_s)
        if deadline is not None and deadline.expired():
            # Arrived already dead (budget burned in transit / upstream
            # queues); shed before charging the bucket a single token.
            self.metrics.record_shed("deadline_arrival")
            raise DeadlineExceededError(
                f"{request.op.name} arrived with an expired deadline; "
                f"no work was applied"
            )
        if self.admission is not None:
            with span("admission_wait", self.metrics):
                self.admission.admit(
                    self._ADMIT_KINDS[request.op], len(request.keys)
                )
        try:
            result = await self.batcher.submit(
                request.op,
                request.keys,
                request_id=request_id,
                deadline=deadline,
            )
            if request.op == Opcode.QUERY:
                if request.single:
                    return encode_frame(Opcode.BOOL, bytes([int(result[0])]))
                return encode_frame(Opcode.BITMAP, pack_bools(result))
            if request.op == Opcode.BULK64_COUNT:
                return encode_frame(
                    Opcode.COUNTS64,
                    pack_counts64(result),
                    version=PROTOCOL_VERSION_BULK64,
                )
            if self.replication is not None:
                # The WAL holds the record (result is its sequence number);
                # the ack mode decides whether holding it locally is enough.
                with span("replication_commit", self.metrics):
                    await self.replication.wait_committed(
                        result if isinstance(result, int) else 0
                    )
            return encode_frame(Opcode.OK)
        finally:
            if self.admission is not None:
                self.admission.release()

    # -- rebalance opcodes ------------------------------------------------
    async def _dispatch_rebalance(self, opcode: Opcode, body: bytes) -> bytes:
        """RING_EPOCH and the MIGRATE_* verbs (coordinator-driven).

        Every state-touching call runs through ``batcher.run`` so it
        serialises with client mutations on the single worker thread —
        fences, epoch installs, and excision can therefore never split
        a coalesced batch.
        """
        def _json_frame(report: dict) -> bytes:
            return encode_frame(Opcode.JSON, json.dumps(report).encode("utf-8"))

        if opcode == Opcode.RING_EPOCH:
            if not body:  # get: reply with the installed epoch blob
                if self.rebalance is not None:
                    blob = await self.batcher.run(self.rebalance.epoch_blob)
                elif hasattr(self.filter, "epoch_blob"):
                    blob = self.filter.epoch_blob()
                else:
                    blob = b""
                return encode_frame(Opcode.RING_EPOCH, blob)
            group, blob = decode_ring_epoch_set(body)
            if self.rebalance is not None:
                report = await self.batcher.run(
                    lambda: self.rebalance.install_epoch(group, blob)
                )
            elif hasattr(self.filter, "install_epoch"):
                # A hosted RouterBackend tracks epochs without a WAL.
                report = self.filter.install_epoch(group, blob)
            else:
                raise UnsupportedOperationError(
                    "this node does not track ring epochs"
                )
            return _json_frame(report)
        if self.rebalance is None:
            raise UnsupportedOperationError(
                "this node has no rebalance engine; migration opcodes "
                "are only served by cluster nodes"
            )
        if self.read_only:
            raise UnsupportedOperationError(
                "migration opcodes go to a shard primary, not a replica"
            )
        if opcode == Opcode.MIGRATE_BEGIN:
            doc = json.loads(body)
            if doc["role"] == "src":
                from repro.rebalance.epochs import KeyRangeSet

                ranges = KeyRangeSet.from_json(doc["ranges"])
                report = await self.batcher.run(
                    lambda: self.rebalance.begin_source(
                        doc["plan"], ranges, int(doc.get("start_seq", 1))
                    )
                )
            else:
                blob = bytes.fromhex(doc.get("epoch_hex", ""))
                report = await self.batcher.run(
                    lambda: self.rebalance.begin_destination(
                        doc["plan"], doc["group"], blob
                    )
                )
            return _json_frame(report)
        if opcode == Opcode.MIGRATE_READ:
            doc = json.loads(body)
            scanned, last_seq, records = await self.batcher.run(
                lambda: self.rebalance.read_records(
                    doc["plan"],
                    int(doc["start_seq"]),
                    int(doc.get("max_records", 256)),
                )
            )
            return encode_frame(
                Opcode.MIGRATE_READ,
                encode_migrate_read_resp(scanned, last_seq, records),
            )
        if opcode == Opcode.MIGRATE_APPLY:
            plan, records = decode_migrate_apply_body(body)
            report = await self.batcher.run(
                lambda: self.rebalance.apply_records(plan, records)
            )
            return _json_frame(report)
        if opcode == Opcode.MIGRATE_FENCE:
            doc = json.loads(body)
            report = await self.batcher.run(
                lambda: self.rebalance.fence(doc["plan"])
            )
            return _json_frame(report)
        # MIGRATE_COMMIT
        meta, blob = decode_migrate_commit_body(body)
        if meta["role"] == "src":
            from repro.rebalance.epochs import KeyRangeSet

            ranges = KeyRangeSet.from_json(meta["ranges"])
            report = await self.batcher.run(
                lambda: self.rebalance.commit_source(
                    meta["plan"],
                    meta["group"],
                    blob,
                    ranges=ranges,
                    excise_through=int(meta["excise_through"]),
                )
            )
        else:
            report = await self.batcher.run(
                lambda: self.rebalance.commit_destination(
                    meta["plan"], meta["group"], blob
                )
            )
        return _json_frame(report)

    # -- replica side of the replication stream --------------------------
    async def _dispatch_replication(self, opcode: Opcode, body: bytes) -> bytes:
        if self.wal is None:
            raise ProtocolError(
                "this server has no WAL; it cannot take part in replication"
            )
        if opcode == Opcode.REPL_STATUS:
            status = {
                "role": self.role,
                "last_seq": self.wal.last_seq,
                "first_seq": self.wal.first_seq,
            }
            return encode_frame(
                Opcode.JSON, json.dumps(status).encode("utf-8")
            )
        # Only the replica role applies replicated writes.  Without this
        # gate any client could inject mutations past a primary's WAL
        # sequencing (REPLICATE) or wipe its log outright (REPL_SNAPSHOT
        # ends in reset_to) — the read_only check in _dispatch only
        # covers parsed client ops, not these frames.
        if not self.read_only:
            raise UnsupportedOperationError(
                f"replication writes are only accepted by a read-only "
                f"replica; this node is a {self.role}"
            )
        if opcode == Opcode.REPLICATE:
            seq, op, keys = decode_replicate_body(body)
            applied = await self.batcher.run(
                lambda: self._apply_replicated(seq, op, keys)
            )
            return encode_frame(Opcode.ACK, encode_ack_body(applied))
        # REPL_SNAPSHOT: install the primary's full state.
        if self.snapshots is None:
            # Installing would leave the transferred state memory-only
            # while reset_to discards the local WAL — a crash before the
            # next snapshot would silently lose it all.
            raise ProtocolError(
                "replica has no snapshot path; refusing state transfer "
                "that could not survive a restart"
            )
        seq, blob = decode_repl_snapshot_body(body)
        await self.batcher.run(
            lambda: self._install_replication_snapshot(seq, blob)
        )
        logger.info(
            "replication_snapshot_installed",
            extra={"seq": seq, "bytes": len(blob)},
        )
        return encode_frame(Opcode.ACK, encode_ack_body(seq))

    _MIG_APPLY_OPS = (
        Opcode.MIG_INSERT,
        Opcode.MIG_DELETE,
        Opcode.MIG_INSERT64,
        Opcode.MIG_DELETE64,
    )

    def _apply_replicated(self, seq: int, op: Opcode, keys) -> int:
        """Apply one replicated record (on the batcher's worker thread).

        Records at or below the local WAL head are duplicates from a
        reconnect replay and are acknowledged without re-applying, which
        makes the stream idempotent.  Columnar records (BULK64_*) carry
        a pre-encoded u64 column and apply without re-hashing, so the
        replica's filter state stays byte-identical to the primary's.
        """
        if seq <= self.wal.last_seq:
            return self.wal.last_seq
        self.wal.append(op, keys, seq=seq)
        self.wal.sync_batch()
        if op in self._MIG_APPLY_OPS:
            # A primary's migration applies flow to its replicas through
            # the ordinary stream.  keys[0] is the plan header; the real
            # keys apply one at a time so a per-key counter error skips
            # the same key the primary skipped.  The *64 flavours carry
            # 8-byte packings of pre-encoded u64 keys.
            insert_like = op in (Opcode.MIG_INSERT, Opcode.MIG_INSERT64)
            packed = op in (Opcode.MIG_INSERT64, Opcode.MIG_DELETE64)
            for key in keys[1:]:
                column = (
                    np.frombuffer(key, dtype="<u8") if packed else [key]
                )
                try:
                    if insert_like:
                        self.filter.insert_many(column)
                    else:
                        self.filter.delete_many(column)
                except ReproError:
                    pass
            return self.wal.last_seq
        try:
            if op in (Opcode.INSERT, Opcode.BULK64_INSERT):
                self.filter.insert_many(keys)
            else:
                self.filter.delete_many(keys)
        except ReproError:
            # Deterministic on replay: the primary hit the same error
            # against the same state and kept the record; skipping keeps
            # the replica byte-identical to the primary.
            pass
        return self.wal.last_seq

    def _install_replication_snapshot(self, seq: int, blob: bytes) -> None:
        filt = load_snapshot_bytes(blob)  # CRC-verified before any effect
        # Persist first: reset_to discards every local WAL segment, so
        # from that point the on-disk snapshot is the only durable copy
        # of the transferred state.  The trailer records seq, so a crash
        # right after the rename recovers to exactly this state and
        # resumes streaming at seq + 1 (see recover_node).
        self.snapshots.install_bytes(with_snapshot_seq(blob, seq))
        self.filter = filt
        self.executor.set_filter(filt)
        self.snapshots.filter = filt
        if self.rebalance is not None:
            self.rebalance.filter = filt
        self.wal.reset_to(seq)

    def _error_frame(self, exc: Exception, request_id: str | None = None) -> bytes:
        code = error_code_for(exc)
        self.metrics.record_error(code.name)
        message = str(exc)
        if isinstance(exc, OverloadedError):
            # The hint rides inside the message so the ERROR body format
            # stays unchanged; clients parse it back out (RemoteError).
            message = format_retry_after(exc.retry_after_s, message)
        logger.info(
            "request_error",
            extra={
                "request_id": request_id,
                "code": code.name,
                "error": str(exc),
            },
        )
        return encode_frame(Opcode.ERROR, encode_error_body(code, message))

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: Exception
    ) -> None:
        with contextlib.suppress(ConnectionError):
            writer.write(self._error_frame(exc))
            await writer.drain()


def build_admission(
    *,
    max_inflight: int | None = None,
    rate: float | None = None,
    burst: float | None = None,
) -> AdmissionController | None:
    """Build an :class:`~repro.overload.AdmissionController` from CLI-ish
    knobs; ``None`` everywhere means "no admission control" and returns
    ``None`` so existing callers keep the unbounded behaviour.
    """
    if max_inflight is None and rate is None:
        return None
    bucket = TokenBucket(rate, burst) if rate is not None else None
    if max_inflight is not None:
        return AdmissionController(max_inflight=max_inflight, bucket=bucket)
    return AdmissionController(bucket=bucket)


async def serve(
    filt,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 512,
    max_delay_us: float = 200.0,
    fuse_mutations: bool = False,
    snapshot_path: str | None = None,
    snapshot_interval_s: float | None = None,
    metrics_port: int | None = None,
    max_inflight: int | None = None,
    admission_rate: float | None = None,
    admission_burst: float | None = None,
    deadline_default_s: float | None = None,
    ready: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run a :class:`FilterServer` until SIGTERM/SIGINT, then drain.

    ``ready`` (if given) is set once the port is bound — callers that
    embed the daemon (tests, benchmarks) use it instead of polling.
    ``max_inflight`` / ``admission_rate`` (tokens per second, priced by
    :data:`repro.overload.DEFAULT_COSTS`) enable admission control;
    both ``None`` leaves the daemon unbounded, as before.
    """
    server = FilterServer(
        filt,
        host=host,
        port=port,
        max_batch=max_batch,
        max_delay_us=max_delay_us,
        fuse_mutations=fuse_mutations,
        snapshot_path=snapshot_path,
        snapshot_interval_s=snapshot_interval_s,
        metrics_port=metrics_port,
        admission=build_admission(
            max_inflight=max_inflight,
            rate=admission_rate,
            burst=admission_burst,
        ),
        deadline_default_s=deadline_default_s,
    )
    await server.start()
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
    print(
        f"repro service: {server.filter.name} listening on "
        f"{server.host}:{server.port}",
        flush=True,
    )
    if server.metrics_http is not None:
        print(
            f"repro service: metrics on "
            f"http://{server.host}:{server.metrics_port}/metrics",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        await stop_requested.wait()
    finally:
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.remove_signal_handler(sig)
        await server.stop()
    print("repro service: drained and stopped", flush=True)
