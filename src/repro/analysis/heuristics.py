"""Sizing heuristics: Eq. (11) ``n_max`` and the improved ``b1``.

The paper sets the per-word element bound with

    n_max = PoissInv(1 − 1/l, n/l)            (Eq. 11)

i.e. the smallest value whose Poisson(n/l) CDF reaches ``1 − 1/l``,
which by a union bound makes the expected number of overflowing words
at most ~1.  For MPCBF-g the word-selection count is ``g·n`` and the
rate becomes ``g·n/l``.  After applying this heuristic the authors
"never observed any word overflow"; the property tests validate the
same for this implementation.
"""

from __future__ import annotations

from scipy import stats

from repro.errors import ConfigurationError
from repro.filters.hcbf_word import improved_first_level_size

__all__ = ["n_max_heuristic", "improved_b1", "words_for_memory"]


def n_max_heuristic(capacity: int, num_words: int, *, g: int = 1) -> int:
    """Per-word element bound via the Poisson inverse CDF (Eq. 11).

    Parameters
    ----------
    capacity:
        Expected total stored elements ``n``.
    num_words:
        Number of words ``l``.
    g:
        Words per key; each insertion selects ``g`` words, so the
        per-word arrival rate is ``g·n/l``.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if num_words < 1:
        raise ConfigurationError(f"num_words must be >= 1, got {num_words}")
    rate = g * capacity / num_words
    quantile = 1.0 - 1.0 / num_words
    n_max = int(stats.poisson.ppf(quantile, rate))
    return max(n_max, 1)


def improved_b1(word_bits: int, k: int, n_max: int, *, g: int = 1) -> int:
    """Maximised first-level size ``b1 = w − ⌈k/g⌉·n_max`` (§III.B.3)."""
    hashes_per_word = -(-k // g)
    return improved_first_level_size(word_bits, hashes_per_word, n_max)


def words_for_memory(memory_bits: int, word_bits: int) -> int:
    """Number of words ``l = M/w`` that fit a memory budget."""
    if memory_bits < word_bits:
        raise ConfigurationError(
            f"memory_bits={memory_bits} smaller than one word ({word_bits})"
        )
    return memory_bits // word_bits
