"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.encoders import KeyEncoder


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def encoder() -> KeyEncoder:
    return KeyEncoder()


@pytest.fixture
def small_keys() -> list[str]:
    """A handful of distinct string keys."""
    return [f"key-{i:04d}" for i in range(200)]


@pytest.fixture
def encoded_keys(small_keys, encoder) -> np.ndarray:
    return encoder.encode_many(small_keys)


@pytest.fixture
def negative_keys(encoder) -> np.ndarray:
    """Keys guaranteed disjoint from ``small_keys``."""
    return encoder.encode_many([f"neg-{i:05d}" for i in range(5000)])
