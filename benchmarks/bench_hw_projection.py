"""Hardware throughput projection (the paper's architectural claim).

Wraps :func:`repro.bench.ablations.hw_projection`; feeds *measured*
access/hash counts into the banked-SRAM pipeline model and checks the
MPCBF-1 speedup over CBF that Fig. 8's software timing cannot show.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.ablations import hw_projection


def test_hw_projection(benchmark, scale, capsys):
    report = run_once(benchmark, hw_projection, scale)
    with capsys.disabled():
        print()
        print(report.render())
    rows = {r["structure"]: r for r in report.rows}
    assert rows["MPCBF-1"]["mops_per_s"] > 1.9 * rows["CBF"]["mops_per_s"]
