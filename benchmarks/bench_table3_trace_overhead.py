"""Table III — processing overhead on IP traces.

Regenerates the rows of the paper's table3 via
:func:`repro.bench.experiments.table3` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_table3(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.table3, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
