"""Unit + property tests for the service metrics primitives.

The Histogram is the daemon's only latency datatype, so its edge cases
(empty, single bucket, exact power-of-two values) and its algebra
(merge == concatenated observation streams, quantile monotone in q)
get the hypothesis treatment here.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import Histogram, ServiceMetrics

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    max_size=200,
)


def hist_of(values) -> Histogram:
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


class TestHistogramEdgeCases:
    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.0
        assert hist.summary()["p99"] == 0.0

    def test_single_observation(self):
        hist = hist_of([5.0])
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 5.0

    def test_single_bucket_sub_one_values(self):
        # All values land in bucket 0; quantiles must report the sub-1
        # max, not a flat 0 (the old behaviour).
        hist = hist_of([0.25, 0.5, 0.75])
        assert hist.quantile(0.99) == 0.75
        assert hist.quantile(0.0) == 0.75  # bucket-0 upper bound, clamped to max

    def test_values_exactly_at_power_of_two_boundaries(self):
        for exponent in (0, 1, 4, 10, 31):
            value = float(2**exponent)
            hist = hist_of([value] * 10)
            assert hist.quantile(0.5) == value
            assert hist.quantile(1.0) == value
            assert hist.max == value

    def test_quantile_clamps_q_outside_unit_interval(self):
        hist = hist_of([1.0, 100.0])
        assert hist.quantile(-1.0) == hist.quantile(0.0)
        assert hist.quantile(2.0) == hist.quantile(1.0)

    def test_zero_values(self):
        hist = hist_of([0.0] * 5)
        assert hist.quantile(0.99) == 0.0
        assert hist.mean == 0.0

    def test_negative_values_clamp_to_zero(self):
        hist = hist_of([-3.0])
        assert hist.count == 1
        assert hist.max == 0.0

    def test_huge_values_clamp_to_last_bucket(self):
        hist = hist_of([1e30])
        assert sum(hist.bucket_counts()) == 1
        assert hist.bucket_counts()[Histogram.NUM_BUCKETS - 1] == 1
        assert hist.quantile(1.0) == 1e30

    def test_bucket_upper_bounds(self):
        assert Histogram.bucket_upper(0) == 1.0
        assert Histogram.bucket_upper(1) == 2.0
        assert Histogram.bucket_upper(10) == 1024.0


class TestHistogramProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=values_strategy, qs=st.lists(st.floats(0, 1), min_size=2, max_size=8))
    def test_quantile_monotone_in_q(self, values, qs):
        hist = hist_of(values)
        estimates = [hist.quantile(q) for q in sorted(qs)]
        assert estimates == sorted(estimates)

    @settings(max_examples=60, deadline=None)
    @given(values=values_strategy.filter(bool), q=st.floats(0, 1))
    def test_quantile_never_below_empirical(self, values, q):
        # The estimate is a bucket upper bound: it must dominate the
        # empirical (ceil-rank) quantile it approximates.
        hist = hist_of(values)
        clamped = sorted(max(0.0, v) for v in values)
        rank = max(1, math.ceil(q * len(clamped)))
        assert hist.quantile(q) >= clamped[rank - 1] or math.isclose(
            hist.quantile(q), clamped[rank - 1]
        )

    @settings(max_examples=60, deadline=None)
    @given(values=values_strategy.filter(bool))
    def test_quantile_one_equals_max(self, values):
        hist = hist_of(values)
        assert hist.quantile(1.0) == hist.max

    @settings(max_examples=60, deadline=None)
    @given(left=values_strategy, right=values_strategy)
    def test_merge_equals_concatenated_stream(self, left, right):
        merged = hist_of(left)
        merged.merge(hist_of(right))
        combined = hist_of(left + right)
        assert merged.bucket_counts() == combined.bucket_counts()
        assert merged.count == combined.count
        assert merged.max == combined.max
        assert merged.total == pytest.approx(combined.total)

    @settings(max_examples=40, deadline=None)
    @given(left=values_strategy, right=values_strategy, q=st.floats(0, 1))
    def test_merge_quantile_bounded_by_parts(self, left, right, q):
        # Merging can only widen the value range: the merged quantile
        # estimate stays within [min, max] of the parts' estimates...
        # for q=1 exactly; in general it never exceeds the larger max.
        merged = hist_of(left)
        merged.merge(hist_of(right))
        assert merged.quantile(q) <= max(
            hist_of(left).max, hist_of(right).max
        ) or (not left and not right)

    def test_merge_into_empty(self):
        target = Histogram()
        target.merge(hist_of([1.0, 8.0]))
        assert target.count == 2
        assert target.quantile(1.0) == 8.0


class TestServiceMetricsSpans:
    def test_observe_span_creates_and_feeds_histograms(self):
        metrics = ServiceMetrics()
        metrics.observe_span("decode", 10.0)
        metrics.observe_span("decode", 20.0)
        metrics.observe_span("execute", 5.0)
        assert metrics.spans["decode"].count == 2
        assert metrics.spans["execute"].count == 1

    def test_snapshot_includes_spans(self):
        metrics = ServiceMetrics()
        metrics.observe_span("decode", 10.0)
        report = metrics.snapshot()
        assert "decode" in report["spans_us"]
        assert report["spans_us"]["decode"]["count"] == 1.0

    def test_snapshot_still_json_serialisable(self):
        import json

        metrics = ServiceMetrics()
        metrics.record_op("QUERY", 12.0)
        metrics.observe_span("coalesce_wait", 3.0)
        json.dumps(metrics.snapshot())
