"""Columnar NumPy update kernels (the batch hot path).

The scalar :class:`~repro.filters.hcbf_word.HCBFWord` stays the oracle
and the per-key API; this package holds the layout that makes bulk
updates run at array speed:

* :mod:`repro.kernels.columnar` — all HCBF words' hierarchies as flat
  ``counts``/``hist``/``used`` columns plus the packed first-level
  mirror, with batch kernels ``bulk_insert``/``bulk_delete``/
  ``bulk_count`` that are observably equivalent to the scalar path
  (membership, counters, saturation, ``AccessStats``; verified by the
  Hypothesis differential suite in ``tests/kernels/``).
* :mod:`repro.kernels.grouped` — bincount-grouped counter updates for
  the flat CBF.
* :mod:`repro.kernels.shmem` — shared-memory packing of the columnar
  arrays so :class:`~repro.parallel.sharded.ShardedFilterBank` can run
  shards on a process pool.

See ``docs/performance.md`` for the layout and equivalence argument.
"""

from repro.kernels.columnar import ColumnarHCBF, KernelOutcome
from repro.kernels.grouped import grouped_decrements, grouped_increments
from repro.kernels.shmem import SharedArrayPack

__all__ = [
    "ColumnarHCBF",
    "KernelOutcome",
    "SharedArrayPack",
    "grouped_decrements",
    "grouped_increments",
]
