"""d-left Counting Bloom Filter (Bonomi et al. [17]) — extension baseline.

A hash-table alternative to the CBF: ``d`` subtables of buckets, each
bucket holding a few (fingerprint, counter) cells.  An element hashes to
one candidate bucket per subtable plus a fingerprint; insertion places
the fingerprint in the least-loaded candidate bucket (leftmost on
ties — the "d-left" rule), or increments the counter of an existing
matching cell.  At the same FPR it needs roughly half the memory of a
CBF, which is why the paper cites it as the compactness baseline (the
paper's own contribution targets *speed*, not compactness).

Simplification vs the original: the original dlCBF derives the d bucket
choices from the fingerprint via permutations so that deletions cannot
be misdirected; here both bucket indices and the fingerprint derive
deterministically from the key's 64-bit encoding, which has the same
property (same key → same candidates) and only differs adversarially.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    CapacityError,
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import CountingFilterBase
from repro.hashing.bit_budget import bits_for_range
from repro.hashing.encoders import KeyEncoder
from repro.hashing.mixers import derive_seeds, splitmix64
from repro.memmodel.accounting import OpKind

__all__ = ["DLeftCBF"]


class DLeftCBF(CountingFilterBase):
    """d-left CBF with fixed-size buckets of (fingerprint, counter) cells.

    Parameters
    ----------
    num_buckets:
        Buckets per subtable.
    d:
        Number of subtables (hash choices).
    cells_per_bucket:
        Cell slots per bucket.
    fingerprint_bits:
        Fingerprint width ``r``; the false positive rate scales like
        ``d·cells·2^{−r}``.
    counter_bits:
        Per-cell counter width.
    """

    def __init__(
        self,
        num_buckets: int,
        *,
        d: int = 4,
        cells_per_bucket: int = 8,
        fingerprint_bits: int = 14,
        counter_bits: int = 2,
        seed: int = 0,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_buckets < 1:
            raise ConfigurationError(f"num_buckets must be >= 1, got {num_buckets}")
        if fingerprint_bits < 1 or fingerprint_bits > 30:
            raise ConfigurationError(
                f"fingerprint_bits must be in [1, 30], got {fingerprint_bits}"
            )
        self.name = "dlCBF"
        self.seed = seed
        self.num_buckets = num_buckets
        self.d = d
        self.cells_per_bucket = cells_per_bucket
        self.fingerprint_bits = fingerprint_bits
        self.counter_bits = counter_bits
        self.counter_limit = (1 << counter_bits) - 1
        seeds = derive_seeds(seed, d + 1)
        self._bucket_seeds = seeds[:d]
        self._fp_seed = seeds[d]
        # fingerprint 0 means "empty cell"; fingerprints are drawn from
        # [1, 2^r) so no sentinel collision is possible.
        self._fingerprints = np.zeros(
            (d, num_buckets, cells_per_bucket), dtype=np.int64
        )
        self._counters = np.zeros_like(self._fingerprints)
        self._bits_per_op = d * bits_for_range(num_buckets) + fingerprint_bits

    @property
    def total_bits(self) -> int:
        cell_bits = self.fingerprint_bits + self.counter_bits
        return self.d * self.num_buckets * self.cells_per_bucket * cell_bits

    @property
    def num_hashes(self) -> int:
        return self.d

    @property
    def load(self) -> int:
        """Number of occupied cells."""
        return int((self._fingerprints != 0).sum())

    def _candidates(self, encoded_key: int) -> tuple[list[int], int]:
        buckets = [
            splitmix64(encoded_key ^ s) % self.num_buckets
            for s in self._bucket_seeds
        ]
        fp_range = (1 << self.fingerprint_bits) - 1
        fingerprint = splitmix64(encoded_key ^ self._fp_seed) % fp_range + 1
        return buckets, fingerprint

    def _find_cell(
        self, buckets: list[int], fingerprint: int
    ) -> tuple[int, int, int] | None:
        for table, bucket in enumerate(buckets):
            cells = self._fingerprints[table, bucket]
            matches = np.nonzero(cells == fingerprint)[0]
            if len(matches):
                return table, bucket, int(matches[0])
        return None

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        buckets, fingerprint = self._candidates(encoded_key)
        found = self._find_cell(buckets, fingerprint)
        if found is not None:
            table, bucket, cell = found
            if self._counters[table, bucket, cell] >= self.counter_limit:
                raise CounterOverflowError(cell, self.counter_limit)
            self._counters[table, bucket, cell] += 1
        else:
            # d-left rule: least-loaded candidate bucket, leftmost on ties.
            loads = [
                int((self._fingerprints[t, b] != 0).sum())
                for t, b in enumerate(buckets)
            ]
            table = int(np.argmin(loads))
            bucket = buckets[table]
            if loads[table] >= self.cells_per_bucket:
                raise CapacityError(
                    f"all candidate buckets full for key (d={self.d}, "
                    f"cells={self.cells_per_bucket})"
                )
            cell = int(np.nonzero(self._fingerprints[table, bucket] == 0)[0][0])
            self._fingerprints[table, bucket, cell] = fingerprint
            self._counters[table, bucket, cell] = 1
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.d),
            hash_bits=self._bits_per_op,
            hash_calls=self.d + 1,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        buckets, fingerprint = self._candidates(encoded_key)
        found = self._find_cell(buckets, fingerprint)
        if found is None:
            raise CounterUnderflowError(-1)
        table, bucket, cell = found
        self._counters[table, bucket, cell] -= 1
        if self._counters[table, bucket, cell] == 0:
            self._fingerprints[table, bucket, cell] = 0
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.d),
            hash_bits=self._bits_per_op,
            hash_calls=self.d + 1,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        buckets, fingerprint = self._candidates(encoded_key)
        found = self._find_cell(buckets, fingerprint)
        accesses = self.d if found is None else found[0] + 1
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._bits_per_op,
            hash_calls=self.d + 1,
        )
        return found is not None

    def count_encoded(self, encoded_key: int) -> int:
        buckets, fingerprint = self._candidates(encoded_key)
        found = self._find_cell(buckets, fingerprint)
        if found is None:
            return 0
        table, bucket, cell = found
        return int(self._counters[table, bucket, cell])

    # -- bulk -----------------------------------------------------------
    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        keys_np = np.asarray(encoded, dtype=np.uint64)
        fp_range = np.uint64((1 << self.fingerprint_bits) - 1)
        from repro.hashing.mixers import splitmix64_array

        with np.errstate(over="ignore"):
            fps = (
                splitmix64_array(keys_np ^ np.uint64(self._fp_seed)) % fp_range
                + np.uint64(1)
            ).astype(np.int64)
            result = np.zeros(len(keys_np), dtype=bool)
            for table, bucket_seed in enumerate(self._bucket_seeds):
                buckets = (
                    splitmix64_array(keys_np ^ np.uint64(bucket_seed))
                    % np.uint64(self.num_buckets)
                ).astype(np.int64)
                cells = self._fingerprints[table, buckets]  # (N, cells)
                result |= (cells == fps[:, None]).any(axis=1)
        self.stats.record(
            OpKind.QUERY,
            count=len(keys_np),
            word_accesses=float(self.d * len(keys_np)),
            hash_bits=self._bits_per_op * len(keys_np),
            hash_calls=(self.d + 1) * len(keys_np),
        )
        return result
