"""Tests for the sizing heuristics (Eq. 11, improved b1)."""

from __future__ import annotations

import pytest
from scipy import stats

from repro.analysis.heuristics import improved_b1, n_max_heuristic, words_for_memory
from repro.errors import ConfigurationError


class TestNMaxHeuristic:
    def test_matches_poisson_inverse(self):
        n, l = 100_000, 62_500
        expected = int(stats.poisson.ppf(1 - 1 / l, n / l))
        assert n_max_heuristic(n, l) == expected

    def test_paper_range(self):
        # §IV.B: "choosing n_max from 10 to 7 in our experiments" for
        # l = 62500 to 250000 at n = 100K (k=3, w=64).
        values = {
            n_max_heuristic(100_000, l) for l in (62_500, 125_000, 250_000)
        }
        assert values <= set(range(6, 11))

    def test_g_scales_rate(self):
        assert n_max_heuristic(10_000, 4096, g=2) > n_max_heuristic(
            10_000, 4096, g=1
        )

    def test_minimum_one(self):
        assert n_max_heuristic(1, 1_000_000) >= 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            n_max_heuristic(0, 100)
        with pytest.raises(ConfigurationError):
            n_max_heuristic(100, 0)


class TestImprovedB1:
    def test_g1(self):
        assert improved_b1(64, 3, 8) == 64 - 24

    def test_g2_uses_ceil_k_over_g(self):
        # k=3, g=2 → ⌈3/2⌉ = 2 hashes per word.
        assert improved_b1(64, 3, 10, g=2) == 64 - 20

    def test_paper_b1_ranges(self):
        # §IV.B: b1 = 34..43 for k=3, w=64 (n_max 10..7); 24..36 for k=4.
        assert {improved_b1(64, 3, nm) for nm in (7, 8, 9, 10)} == {43, 40, 37, 34}
        assert improved_b1(64, 4, 10) == 24
        assert improved_b1(64, 4, 7) == 36

    def test_infeasible(self):
        with pytest.raises(ConfigurationError):
            improved_b1(64, 3, 21)


class TestWordsForMemory:
    def test_floor_division(self):
        assert words_for_memory(1_000_000, 64) == 15_625

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            words_for_memory(32, 64)
