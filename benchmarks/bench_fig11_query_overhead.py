"""Fig. 11 — query overhead at optimal k.

Regenerates the rows of the paper's fig11 via
:func:`repro.bench.experiments.fig11` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig11(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig11, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
