"""Node lifecycle: recovery, WAL-truncating snapshots, and serving.

A cluster node's durable state is ``snapshot + WAL tail``:

1. :func:`recover_node` loads the latest snapshot (if any), reads the
   WAL sequence it covers from the snapshot's own ``MPCS`` trailer
   (falling back to the legacy ``<path>.meta`` JSON sidecar older dumps
   used), and replays every later WAL record onto the filter.  After a
   crash — even a ``kill -9`` mid-batch — this reconstructs exactly the
   state whose records reached stable storage under the configured
   fsync policy.
2. :class:`WalSnapshotManager` extends the daemon's snapshot loop with
   log compaction: each dump embeds the WAL sequence it covers (in the
   snapshot trailer, so state + sequence publish in one atomic rename)
   and then drops WAL segments the snapshot made redundant, so the log
   stays bounded.
3. :func:`serve_node` is the cluster flavour of
   :func:`repro.service.server.serve`: recover, wire up the WAL, an
   optional :class:`~repro.cluster.replication.ReplicationManager`
   (primary role) or read-only flag (replica role), and run until
   signalled.

Replay tolerates per-record :class:`~repro.errors.ReproError` failures
because the primary logs a mutation *before* applying it, including
mutations that then fail (e.g. a delete underflow).  Replaying the same
records against the same starting state deterministically reproduces
the same failures, so skipping them converges on the pre-crash state.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cluster.replication import ReplicationManager
from repro.cluster.wal import FsyncPolicy, WriteAheadLog
from repro.errors import ReproError
from repro.observability.logging import get_logger
from repro.rebalance.migrator import RebalanceState
from repro.service.protocol import Opcode
from repro.service.server import FilterServer, build_admission
from repro.service.snapshot import (
    SnapshotManager,
    load_snapshot_bytes,
    snapshot_bytes,
    snapshot_wal_seq,
    write_snapshot,
)

__all__ = [
    "NodeRecovery",
    "WalSnapshotManager",
    "recover_node",
    "serve_node",
]

logger = get_logger("cluster.node")


def _read_legacy_sidecar_seq(snapshot_path: str | Path) -> int:
    """WAL sequence from the old ``<path>.meta`` sidecar (0 when absent).

    Dumps written before the sequence moved into the snapshot trailer
    recorded it here; kept read-only so those nodes recover correctly.
    """
    try:
        meta = json.loads(
            Path(str(snapshot_path) + ".meta").read_text("utf-8")
        )
    except (FileNotFoundError, ValueError):
        return 0
    return int(meta.get("wal_seq", 0))


class WalSnapshotManager(SnapshotManager):
    """Snapshot manager that compacts the WAL behind each dump.

    Runs on the batcher's worker thread like its base class, which is
    what makes ``wal.last_seq`` at dump time exact: no mutation can be
    mid-apply while the dump runs, so the snapshot covers precisely the
    records up to that sequence.  The sequence is embedded in the dump's
    trailer, so snapshot and sequence can never be observed out of sync
    by a crash between two writes.
    """

    def __init__(self, filt, path, wal: WriteAheadLog, **kwargs) -> None:
        super().__init__(filt, path, **kwargs)
        self.wal = wal
        #: Optional :class:`~repro.rebalance.migrator.RebalanceState`.
        #: While it holds an outgoing migration session the WAL tail is
        #: the migration's source of truth (streams are WAL replays),
        #: so compaction must wait for the plan to commit.
        self.rebalance = None

    def _dump(self) -> dict:
        seq = self.wal.last_seq
        report = write_snapshot(
            self.filter, self.path, wal_seq=seq, storage=self.storage
        )
        report["wal_seq"] = seq
        return report

    def save_now(self) -> dict:
        report = super().save_now()
        if self.rebalance is not None and self.rebalance.holds_wal():
            report["wal_segments_removed"] = 0
            report["wal_truncation_held"] = True
            return report
        report["wal_segments_removed"] = self.wal.truncate_through(
            report["wal_seq"]
        )
        return report


@dataclass
class NodeRecovery:
    """What :func:`recover_node` reconstructed."""

    filter: object
    wal: WriteAheadLog
    snapshot_seq: int
    replayed_records: int
    replay_errors: int

    def describe(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed_records": self.replayed_records,
            "replay_errors": self.replay_errors,
            "last_seq": self.wal.last_seq,
        }


def recover_node(
    build,
    *,
    wal_dir: str | Path,
    snapshot_path: str | Path | None = None,
    segment_bytes: int = 4 * 1024 * 1024,
    fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
    storage=None,
) -> NodeRecovery:
    """Reconstruct a node's filter state from snapshot + WAL replay.

    ``build`` is a zero-arg callable producing a fresh (empty) filter —
    used when no snapshot exists yet.  When ``snapshot_path`` exists,
    the filter restores from it and replay starts at the sequence its
    sidecar records; otherwise replay covers the whole retained log.
    ``storage`` (optional :class:`~repro.service.storage.Storage`) is
    handed to the node's WAL — the chaos harness injects its
    fault-tracking storage here.
    """
    snapshot_seq = 0
    filt = None
    if snapshot_path is not None and Path(snapshot_path).exists():
        data = Path(snapshot_path).read_bytes()
        filt = load_snapshot_bytes(data, source=str(snapshot_path))
        embedded_seq = snapshot_wal_seq(data)
        snapshot_seq = (
            embedded_seq
            if embedded_seq is not None
            else _read_legacy_sidecar_seq(snapshot_path)
        )
    if filt is None:
        filt = build()
    wal = WriteAheadLog(
        wal_dir, segment_bytes=segment_bytes, fsync=fsync, storage=storage
    )
    if snapshot_seq > wal.last_seq:
        # The snapshot is ahead of the entire retained log — the replica
        # crashed after persisting a replication state transfer but
        # before (or during) discarding the history it supersedes.
        # Every local record is covered by the snapshot; dropping them
        # restarts numbering where the primary will resume streaming.
        wal.reset_to(snapshot_seq)
    replayed = 0
    errors = 0
    mig_ops = (
        Opcode.MIG_INSERT,
        Opcode.MIG_DELETE,
        Opcode.MIG_INSERT64,
        Opcode.MIG_DELETE64,
    )
    for record in wal.replay(start_seq=snapshot_seq + 1):
        if record.op in mig_ops:
            # Migration records: keys[0] is the plan header, the real
            # keys applied one at a time — replay skips exactly the
            # per-key errors the live apply skipped.  The *64 flavours
            # carry 8-byte LE packings of pre-encoded u64 keys, applied
            # as columns so they are never re-hashed.
            packed = record.op in (Opcode.MIG_INSERT64, Opcode.MIG_DELETE64)
            insert_like = record.op in (
                Opcode.MIG_INSERT, Opcode.MIG_INSERT64
            )
            for key in list(record.keys)[1:]:
                column = (
                    np.frombuffer(key, dtype="<u8") if packed else [key]
                )
                try:
                    if insert_like:
                        filt.insert_many(column)
                    else:
                        filt.delete_many(column)
                except ReproError:
                    errors += 1
            replayed += 1
            continue
        keys = record.keys
        if not isinstance(keys, np.ndarray):
            keys = list(keys)
        try:
            if record.op in (Opcode.INSERT, Opcode.BULK64_INSERT):
                filt.insert_many(keys)
            else:
                filt.delete_many(keys)
        except ReproError:
            # The primary logged this mutation and then hit the same
            # error against the same state; skipping reproduces it.
            errors += 1
        replayed += 1
    if replayed or snapshot_seq:
        logger.info(
            "node_recovered",
            extra={
                "snapshot_seq": snapshot_seq,
                "replayed_records": replayed,
                "replay_errors": errors,
                "last_seq": wal.last_seq,
            },
        )
    return NodeRecovery(
        filter=filt,
        wal=wal,
        snapshot_seq=snapshot_seq,
        replayed_records=replayed,
        replay_errors=errors,
    )


def build_node_server(
    recovery: NodeRecovery,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    replicas: list[tuple[str, int]] | None = None,
    ack_mode: str = "async",
    read_only: bool = False,
    snapshot_path: str | Path | None = None,
    snapshot_interval_s: float | None = None,
    metrics_port: int | None = None,
    max_batch: int = 512,
    max_delay_us: float = 200.0,
    quorum_timeout_s: float = 5.0,
    group: str | None = None,
    max_inflight: int | None = None,
    admission_rate: float | None = None,
    admission_burst: float | None = None,
    deadline_default_s: float | None = None,
    transport=None,
    executor=None,
    storage=None,
    rng=None,
) -> FilterServer:
    """Assemble a :class:`FilterServer` for a recovered cluster node.

    With ``replicas`` the node is a primary (it streams its WAL to
    them); with ``read_only`` it is a replica (client writes are
    rejected, replicated writes apply).  The replication snapshot
    source and the WAL-truncating snapshot manager are wired through
    the server's batcher so neither can race mutations.

    ``group`` names this node's shard group for epoch fencing; every
    node carries a :class:`~repro.rebalance.migrator.RebalanceState`
    (inert until an epoch is installed), so a standalone node behaves
    exactly as before.

    ``max_inflight`` / ``admission_rate`` / ``admission_burst`` /
    ``deadline_default_s`` configure the node's overload protection
    exactly as for :func:`repro.service.server.serve` — see
    :mod:`repro.overload`.  Replication and rebalance opcodes bypass
    admission, so a shedding node still converges with its primary.

    ``transport`` / ``executor`` / ``storage`` / ``rng`` are the chaos
    harness's simulation seams (in-memory network, shared deterministic
    worker, fault-tracking storage, seeded jitter); all default to the
    production implementations.
    """
    replication = (
        ReplicationManager(
            recovery.wal,
            replicas,
            ack_mode=ack_mode,
            quorum_timeout_s=quorum_timeout_s,
            transport=transport,
            rng=rng,
        )
        if replicas
        else None
    )
    manager = (
        WalSnapshotManager(
            recovery.filter,
            snapshot_path,
            recovery.wal,
            interval_s=snapshot_interval_s,
            storage=storage,
        )
        if snapshot_path
        else None
    )
    rebalance = RebalanceState(recovery.filter, wal=recovery.wal, group=group)
    server = FilterServer(
        recovery.filter,
        host=host,
        port=port,
        max_batch=max_batch,
        max_delay_us=max_delay_us,
        metrics_port=metrics_port,
        wal=recovery.wal,
        replication=replication,
        read_only=read_only,
        snapshot_manager=manager,
        rebalance=rebalance,
        admission=build_admission(
            max_inflight=max_inflight,
            rate=admission_rate,
            burst=admission_burst,
        ),
        deadline_default_s=deadline_default_s,
        transport=transport,
        executor=executor,
    )
    rebalance.metrics = server.metrics
    if manager is not None:
        manager.metrics = server.metrics
        manager.rebalance = rebalance
    if replication is not None:
        async def snapshot_source() -> tuple[int, bytes]:
            def dump() -> tuple[int, bytes]:
                seq = server.wal.last_seq
                return seq, snapshot_bytes(server.filter, wal_seq=seq)

            return await server.batcher.run(dump)

        replication.snapshot_source = snapshot_source
    return server


async def serve_node(
    build,
    *,
    wal_dir: str | Path,
    snapshot_path: str | Path | None = None,
    fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
    ready: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
    **server_kwargs,
) -> None:
    """Recover a node, serve it until SIGTERM/SIGINT, then drain."""
    recovery = recover_node(
        build, wal_dir=wal_dir, snapshot_path=snapshot_path, fsync=fsync
    )
    server = build_node_server(
        recovery, snapshot_path=snapshot_path, **server_kwargs
    )
    await server.start()
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop_requested.set)
    print(
        f"repro cluster node ({server.role}): {server.filter.name} "
        f"listening on {server.host}:{server.port}, "
        f"wal at {recovery.wal.directory} "
        f"(recovered seq {recovery.wal.last_seq})",
        flush=True,
    )
    if server.metrics_http is not None:
        print(
            f"repro cluster node: metrics on "
            f"http://{server.host}:{server.metrics_port}/metrics",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        await stop_requested.wait()
    finally:
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.remove_signal_handler(sig)
        await server.stop()
    print("repro cluster node: drained and stopped", flush=True)
