"""Tests for the reduce-side join, plain and Bloom-filtered (§V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters import CountingBloomFilter, MPCBF
from repro.mapreduce.engine import LocalMapReduceEngine
from repro.mapreduce.join import reduce_side_join
from repro.workloads.patents import make_patent_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_patent_dataset(
        n_keys=500, n_citations=10_000, hit_fraction=0.3, seed=1
    )


@pytest.fixture(scope="module")
def engine():
    return LocalMapReduceEngine(num_map_tasks=4, num_reduce_tasks=2)


@pytest.fixture(scope="module")
def baseline(dataset, engine):
    return reduce_side_join(dataset, None, engine=engine)


def _expected_join_rows(dataset) -> int:
    keys, counts = np.unique(dataset.citations[:, 1], return_counts=True)
    key_set = np.sort(dataset.join_keys)
    pos = np.clip(np.searchsorted(key_set, keys), 0, len(key_set) - 1)
    return int(counts[key_set[pos] == keys].sum())


class TestUnfilteredJoin:
    def test_join_cardinality_exact(self, dataset, baseline):
        assert baseline.joined_rows == _expected_join_rows(dataset)

    def test_join_rows_well_formed(self, dataset, engine):
        rep = reduce_side_join(dataset, None, engine=engine)
        key_set = set(dataset.join_keys.tolist())
        for key, year, citing in rep.result.output[:50]:
            assert key in key_set
            assert 1963 <= year <= 1999

    def test_map_outputs_everything(self, dataset, baseline):
        expected = len(dataset.patents) + len(dataset.citations)
        assert baseline.map_output_records == expected


class TestFilteredJoin:
    def test_cbf_preserves_join_result(self, dataset, engine, baseline):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        rep = reduce_side_join(dataset, cbf, engine=engine)
        assert rep.joined_rows == baseline.joined_rows

    def test_filter_reduces_map_outputs(self, dataset, engine, baseline):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        rep = reduce_side_join(dataset, cbf, engine=engine)
        assert rep.map_output_records < baseline.map_output_records
        assert rep.shuffle_bytes < baseline.shuffle_bytes

    def test_measured_fpr_in_range(self, dataset, engine):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        rep = reduce_side_join(dataset, cbf, engine=engine)
        assert 0.0 < rep.filter_fpr < 1.0

    def test_mpcbf_lower_fpr_than_cbf(self, dataset, engine):
        memory = 8000
        cbf = CountingBloomFilter(memory // 4, 3, seed=2)
        mp = MPCBF(
            memory // 64,
            64,
            3,
            n_max=max(1, round(500 / (memory // 64))),
            seed=2,
            word_overflow="saturate",
        )
        rep_cbf = reduce_side_join(dataset, cbf, engine=engine)
        rep_mp = reduce_side_join(dataset, mp, engine=engine)
        assert rep_mp.filter_fpr < rep_cbf.filter_fpr
        assert rep_mp.joined_rows == rep_cbf.joined_rows

    def test_modelled_time_improves(self, dataset, engine, baseline):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        rep = reduce_side_join(dataset, cbf, engine=engine)
        assert rep.modelled_seconds < baseline.modelled_seconds

    def test_filtered_out_accounting(self, dataset, engine):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        rep = reduce_side_join(dataset, cbf, engine=engine)
        hits = int(dataset.citation_hits().sum())
        survivors = rep.map_output_records - len(dataset.patents)
        assert survivors + rep.filtered_out == len(dataset.citations)
        assert survivors >= hits  # no join row may be dropped

    def test_report_row(self, dataset, engine):
        cbf = CountingBloomFilter(2000, 3, seed=2)
        row = reduce_side_join(dataset, cbf, engine=engine).row()
        assert row["filter"] == "CBF"
        assert {"fpr", "map_output_records", "joined_rows"} <= set(row)
