"""Tests for the mini MapReduce engine."""

from __future__ import annotations

import pytest

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.engine import LocalMapReduceEngine


def word_count_mapper(record, ctx):
    for word in record.split():
        ctx.emit(word, 1)


def sum_reducer(key, values, ctx):
    ctx.emit((key, sum(values)))


class TestWordCount:
    @pytest.fixture
    def engine(self):
        return LocalMapReduceEngine(num_map_tasks=3, num_reduce_tasks=2)

    def test_basic_word_count(self, engine):
        docs = ["a b a", "b c", "a"]
        result = engine.run(docs, word_count_mapper, sum_reducer)
        counts = dict(result.output)
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_counters(self, engine):
        docs = ["a b a", "b c", "a"]
        result = engine.run(docs, word_count_mapper, sum_reducer)
        c = result.counters
        assert c.map_input_records == 3
        assert c.map_output_records == 6
        assert c.shuffle_records == 6
        assert c.reduce_input_groups == 3
        assert c.reduce_input_records == 6
        assert c.reduce_output_records == 3

    def test_combiner_shrinks_shuffle(self):
        engine = LocalMapReduceEngine(num_map_tasks=1, num_reduce_tasks=1)
        docs = ["a a a a", "a a"]

        def combiner(key, values):
            yield sum(values)

        plain = engine.run(docs, word_count_mapper, sum_reducer)
        combined = engine.run(
            docs, word_count_mapper, sum_reducer, combiner=combiner
        )
        assert dict(combined.output) == dict(plain.output)
        assert combined.counters.shuffle_records < plain.counters.shuffle_records

    def test_deterministic_output(self, engine):
        docs = [f"w{i % 7}" for i in range(100)]
        a = engine.run(docs, word_count_mapper, sum_reducer)
        b = engine.run(docs, word_count_mapper, sum_reducer)
        assert a.output == b.output

    def test_results_independent_of_task_counts(self):
        docs = [f"w{i % 13} w{i % 5}" for i in range(200)]
        outputs = []
        for m, r in [(1, 1), (4, 2), (16, 8)]:
            engine = LocalMapReduceEngine(num_map_tasks=m, num_reduce_tasks=r)
            result = engine.run(docs, word_count_mapper, sum_reducer)
            outputs.append(sorted(result.output))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_empty_input(self, engine):
        result = engine.run([], word_count_mapper, sum_reducer)
        assert result.output == []
        assert result.counters.map_input_records == 0

    def test_modelled_time_positive(self, engine):
        result = engine.run(["a b"], word_count_mapper, sum_reducer)
        assert result.modelled_seconds > 0
        assert result.wall_seconds > 0

    def test_cache_reaches_mapper_and_reducer(self):
        cache = DistributedCache()
        cache.put("threshold", 2, size_bytes=8)
        engine = LocalMapReduceEngine()

        def mapper(record, ctx):
            if record >= ctx.cache.get("threshold"):
                ctx.emit("big", record)

        def reducer(key, values, ctx):
            assert "threshold" in ctx.cache
            ctx.emit((key, sorted(values)))

        result = engine.run([1, 2, 3], mapper, reducer, cache=cache)
        assert result.output == [("big", [2, 3])]

    def test_custom_counters(self):
        engine = LocalMapReduceEngine()

        def mapper(record, ctx):
            ctx.counters.increment("seen")
            ctx.emit(record, 1)

        result = engine.run([1, 2, 3], mapper, sum_reducer)
        assert result.counters.get("seen") == 3
        assert result.counters.get("never") == 0

    def test_invalid_task_counts(self):
        with pytest.raises(ValueError):
            LocalMapReduceEngine(num_map_tasks=0)
