"""Standard Counting Bloom Filter (Fan et al. 2000), the paper's baseline.

A vector of ``m`` c-bit counters (``c = 4`` by default, which the paper
notes suffices for most applications).  Memory footprint is ``c·m``
bits — the 4× blow-up over a plain Bloom filter that motivates MPCBF.

Two storage backends: the default ``"fast"`` keeps counters in an
``int32`` NumPy array (``c`` defines the overflow limit and the
reported footprint — the comparison axis of every figure), with bulk
inserts/deletes grouped through one ``np.bincount`` pass
(:mod:`repro.kernels.grouped`) so repeated indices within one batch
accumulate correctly without the scatter bottleneck of
``np.add.at``.  ``"packed"`` stores genuine ``c``-bit fields in 64-bit
limbs (:mod:`repro.memmodel.packed`) for memory-faithful experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import CountingFilterBase, OverflowPolicy
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import HashFamily
from repro.kernels.grouped import grouped_decrements, grouped_increments
from repro.memmodel.accounting import OpKind

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter(CountingFilterBase):
    """Flat CBF with ``m`` counters of ``counter_bits`` bits each.

    Parameters
    ----------
    num_counters:
        Number of counters ``m``.
    k:
        Number of hash functions.
    counter_bits:
        Counter width ``c`` (default 4, per the paper).
    overflow:
        Counter-overflow policy, see
        :class:`~repro.filters.base.OverflowPolicy`.
    storage:
        ``"fast"`` (default) keeps counters in an ``int32`` array —
        the quick simulation representation.  ``"packed"`` stores real
        ``counter_bits``-wide fields in 64-bit limbs
        (:class:`repro.memmodel.packed.PackedCounterArray`), so the
        filter physically occupies the memory it reports; bulk queries
        stay vectorised, bulk updates fall back to per-counter
        read-modify-write (the honest hardware cost).  Requires
        ``counter_bits`` ∈ {1, 2, 4, 8, 16, 32}.
    kernel:
        ``"columnar"`` (default) runs fast-storage bulk updates through
        the grouped bincount kernels; ``"scalar"`` loops the per-key
        reference path instead.  Note the two differ (by design) when a
        batch overflows: the grouped kernel treats the batch as atomic
        (all-or-nothing with the lowest offending counter reported),
        the scalar loop applies a per-key prefix — matching
        ``insert_encoded`` semantics key by key.
    """

    def __init__(
        self,
        num_counters: int,
        k: int,
        *,
        counter_bits: int = 4,
        seed: int = 0,
        overflow: OverflowPolicy | str = OverflowPolicy.RAISE,
        storage: str = "fast",
        kernel: str = "columnar",
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_counters < 1:
            raise ConfigurationError(
                f"num_counters must be >= 1, got {num_counters}"
            )
        if counter_bits < 1:
            raise ConfigurationError(
                f"counter_bits must be >= 1, got {counter_bits}"
            )
        self.name = "CBF"
        self.num_counters = num_counters
        self.k = k
        self.counter_bits = counter_bits
        self.counter_limit = (1 << counter_bits) - 1
        self.overflow = OverflowPolicy(overflow)
        if storage not in ("fast", "packed"):
            raise ConfigurationError(
                f"storage must be 'fast' or 'packed', got {storage!r}"
            )
        self.storage = storage
        if kernel not in ("columnar", "scalar"):
            raise ConfigurationError(
                f"kernel must be 'columnar' or 'scalar', got {kernel!r}"
            )
        self.kernel = kernel
        self.family = HashFamily(num_counters, k, seed=seed)
        if storage == "packed":
            from repro.memmodel.packed import PackedCounterArray

            self._packed = PackedCounterArray(num_counters, counter_bits)
            self._counters = None
        else:
            self._packed = None
            self._counters = np.zeros(num_counters, dtype=np.int32)
        self._budget = HashBitBudget.flat(num_counters, k)
        #: Number of increments clipped by the SATURATE policy.
        self.saturation_events = 0

    @property
    def total_bits(self) -> int:
        if self._packed is not None:
            return self._packed.total_bits
        return self.num_counters * self.counter_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    @property
    def counters(self) -> np.ndarray:
        """Read-only view/copy of the counter vector (tests/analysis)."""
        if self._packed is not None:
            return self._packed.to_array()
        view = self._counters.view()
        view.flags.writeable = False
        return view

    def _get(self, idx: int) -> int:
        if self._packed is not None:
            return self._packed.get(idx)
        return int(self._counters[idx])

    def _add(self, idx: int, delta: int) -> None:
        if self._packed is not None:
            if delta > 0:
                self._packed.increment(idx)
            else:
                self._packed.decrement(idx)
        else:
            self._counters[idx] += delta

    def _gather_positive(self, indices: np.ndarray) -> np.ndarray:
        if self._packed is not None:
            return self._packed.nonzero_mask(indices)
        return self._counters[indices] > 0

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        indices = self.family.indices(encoded_key)
        for idx in indices:
            if self._get(idx) >= self.counter_limit:
                if self.overflow is OverflowPolicy.RAISE:
                    raise CounterOverflowError(idx, self.counter_limit)
                self.saturation_events += 1
            else:
                self._add(idx, 1)
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        indices = self.family.indices(encoded_key)
        # Validate first so a failed delete leaves the filter untouched.
        for idx in indices:
            if self._get(idx) == 0:
                raise CounterUnderflowError(idx)
        for idx in indices:
            self._add(idx, -1)
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        indices = self.family.indices(encoded_key)
        accesses = 0
        result = True
        for idx in indices:
            accesses += 1
            if self._get(idx) == 0:
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget.total_bits / self.k * accesses,
            hash_calls=self._budget.hash_calls,
        )
        return result

    def count_encoded(self, encoded_key: int) -> int:
        indices = self.family.indices(encoded_key)
        return int(min(self._get(idx) for idx in indices))

    def merge(self, other: "CountingBloomFilter") -> None:
        """Add another CBF's counters into this one (multiset union).

        Both filters must share geometry and seed (same hash family),
        the precondition for distributed builds where each worker
        fills a partial filter and a reducer merges them.  Overflow
        follows this filter's policy.
        """
        if (
            not isinstance(other, CountingBloomFilter)
            or other.num_counters != self.num_counters
            or other.k != self.k
            or other.family.seed != self.family.seed
            or other.counter_bits != self.counter_bits
        ):
            raise ConfigurationError(
                "merge requires an identically configured CountingBloomFilter"
            )
        summed = self.counters.astype(np.int64) + other.counters.astype(
            np.int64
        )
        exceeded = summed > self.counter_limit
        if exceeded.any():
            if self.overflow is OverflowPolicy.RAISE:
                raise CounterOverflowError(
                    int(np.argmax(exceeded)), self.counter_limit
                )
            self.saturation_events += int(
                (summed[exceeded] - self.counter_limit).sum()
            )
            summed = np.minimum(summed, self.counter_limit)
        if self._packed is not None:
            self._packed.load_array(summed)
        else:
            self._counters[:] = summed.astype(np.int32)

    # -- bulk -----------------------------------------------------------
    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        if self._packed is not None or self.kernel == "scalar":
            for key in encoded:
                self.insert_encoded(int(key))
            return
        indices = self.family.indices_array(encoded).reshape(-1)
        # Grouped bincount kernel: rolls the whole batch back before
        # raising, so the filter is untouched on failure.
        self.saturation_events += grouped_increments(
            self._counters,
            indices,
            self.counter_limit,
            raise_on_overflow=self.overflow is OverflowPolicy.RAISE,
        )
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )

    def delete_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        if self._packed is not None or self.kernel == "scalar":
            for key in encoded:
                self.delete_encoded(int(key))
            return
        indices = self.family.indices_array(encoded).reshape(-1)
        grouped_decrements(self._counters, indices)
        self.stats.record(
            OpKind.DELETE,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        indices = self.family.indices_array(encoded)
        positive = self._gather_positive(indices)
        member = positive.all(axis=1)
        first_zero = np.where(member, self.k - 1, np.argmin(positive, axis=1))
        accesses = first_zero + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget.total_bits / self.k * total_accesses,
            hash_calls=self._budget.hash_calls * len(encoded),
        )
        return member

    def count_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=np.int64)
        if self._packed is not None or self.kernel == "scalar":
            return super().count_many(encoded)
        indices = self.family.indices_array(encoded)
        return self._counters[indices].min(axis=1).astype(np.int64)
