"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes that the paper's data
structures exhibit (counter overflow in CBFs, word overflow in HCBF
words, deletion of absent elements, and capacity misconfiguration).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "CounterOverflowError",
    "CounterUnderflowError",
    "WordOverflowError",
    "UnsupportedOperationError",
    "ClusterError",
    "ReplicationError",
    "WalCorruptionError",
    "WrongEpochError",
    "MovedError",
    "OverloadedError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError, ValueError):
    """A filter or experiment was constructed with inconsistent parameters.

    Examples: a word size that is not a multiple of 64 bits when the
    vectorised mirror is requested, ``k`` larger than the first-level
    vector, or a memory budget too small for a single word.
    """


class CapacityError(ReproError):
    """An operation exceeded the configured capacity of a structure."""


class CounterOverflowError(CapacityError):
    """A c-bit counter in a counting filter reached its maximum value.

    The standard CBF uses 4-bit counters; the paper notes four bits
    suffice for most applications, so hitting this error usually means
    the filter is severely over capacity or an adversarial key is being
    re-inserted.
    """

    def __init__(self, index: int, limit: int) -> None:
        super().__init__(
            f"counter at index {index} would exceed its maximum value {limit}"
        )
        self.index = index
        self.limit = limit

    def __reduce__(self):
        # Default Exception pickling replays args=(message,) into our
        # two-argument __init__; process-pool workers need the real one.
        return (type(self), (self.index, self.limit))


class CounterUnderflowError(CapacityError):
    """A delete was applied to a counter that is already zero.

    This corresponds to deleting an element that was never inserted —
    an operation that silently corrupts a CBF, so the library refuses it
    by default (policies can downgrade it to a recorded statistic).
    """

    def __init__(self, index: int) -> None:
        super().__init__(f"counter at index {index} is zero; delete would underflow")
        self.index = index

    def __reduce__(self):
        return (type(self), (self.index,))


class WordOverflowError(CapacityError):
    """An HCBF word ran out of hierarchy bits during an insertion.

    The paper bounds the probability of this event (Eq. 6 / Eq. 10) and
    chooses ``n_max`` so that it never occurred in their experiments;
    the library surfaces it explicitly so the bound can be validated.
    """

    def __init__(self, word_index: int, capacity: int) -> None:
        super().__init__(
            f"HCBF word {word_index} overflowed its hierarchy capacity "
            f"({capacity} elements)"
        )
        self.word_index = word_index
        self.capacity = capacity

    def __reduce__(self):
        return (type(self), (self.word_index, self.capacity))


class UnsupportedOperationError(ReproError):
    """The requested operation is not supported by this filter variant.

    For example, deleting from a plain (non-counting) Bloom filter.
    """


class ClusterError(ReproError):
    """A cluster-level operation failed (routing, node unreachable...).

    Raised by the consistent-hash router when every candidate node of a
    shard group is unreachable, or by cluster management paths that hit
    an unrecoverable topology problem.
    """


class ReplicationError(ClusterError):
    """Primary→replica replication could not satisfy the ack policy.

    In quorum ack mode a mutation is acknowledged only once a majority
    of the shard group holds its WAL record; this error surfaces a
    quorum that cannot be reached within the configured timeout.  The
    mutation may still have been applied locally (at-least-once
    semantics) — clients should treat it as "unknown outcome", not
    "not applied".
    """


class WalCorruptionError(ClusterError):
    """A write-ahead-log record failed its CRC or framing check.

    Only raised for corruption *before* the log's tail: a torn final
    record is the expected signature of a crash mid-append and is
    silently treated as the end of the log.
    """


class WrongEpochError(ClusterError):
    """A write raced a live topology change and was fenced.

    Raised while a node's key range is mid-migration (between the
    migration fence and the epoch commit, see :mod:`repro.rebalance`).
    Retryable: back off briefly, refetch the ring epoch, and resend —
    after the epoch bump the new owner accepts the write.
    """


class OverloadedError(ReproError):
    """The request was shed by admission control (or a circuit breaker).

    No effect was applied — sheds happen *before* any WAL record or
    filter mutation exists — so the operation is safe to retry.
    ``retry_after_s`` is the server's honest estimate of when capacity
    returns (token-bucket refill time, breaker cooldown, ...); clients
    should wait at least that long, with jitter, before resending.
    Crosses the wire as the ``OVERLOADED`` error code with the hint
    embedded in the message (see
    :func:`repro.service.protocol.format_retry_after`).
    """

    def __init__(self, message: str, *, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        return (_rebuild_overloaded, (str(self), self.retry_after_s))


def _rebuild_overloaded(message: str, retry_after_s):
    """Unpickle helper: Exception pickling replays positional args only."""
    return OverloadedError(message, retry_after_s=retry_after_s)


class DeadlineExceededError(ReproError):
    """The request's deadline expired before it reached the filter.

    Raised by the coalescer's pre-dispatch shed (the request sat in
    the queue past its budget) or by the admission gate when a request
    arrives already expired.  Like :class:`OverloadedError`, no effect
    was applied; unlike it, retrying with the *same* deadline is
    pointless — the caller must budget a fresh one.
    """


class MovedError(WrongEpochError):
    """The addressed node no longer owns the key's ring range.

    The rebalance analogue of a redirect: the topology committed a new
    epoch and this key's vnode now lives on another shard group.
    Retryable after a topology refetch; clients holding a cached ring
    must invalidate it before resending.
    """
