"""Shared fixtures for the overload unit tests."""

from __future__ import annotations

import pytest


class FakeClock:
    """A monotonic clock advanced by hand, for deterministic time."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()
