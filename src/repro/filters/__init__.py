"""Filter implementations: the paper's contribution and all baselines.

Variants (all comparable at equal memory via
:func:`repro.filters.factory.build_suite`):

* :class:`~repro.filters.bloom.BloomFilter` — standard BF [1].
* :class:`~repro.filters.one_access.OneAccessBloomFilter` — BF-1/BF-g
  (Qiao et al. [11]), the inspiration baseline.
* :class:`~repro.filters.cbf.CountingBloomFilter` — standard CBF [3].
* :class:`~repro.filters.pcbf.PartitionedCBF` — PCBF-1/PCBF-g (§III.A).
* :class:`~repro.filters.hcbf_word.HCBFWord` — the hierarchical
  counting word (§III.B.1, §III.B.3).
* :class:`~repro.filters.mpcbf.MPCBF` — the paper's contribution,
  MPCBF-1/MPCBF-g (§III.B.2, §III.C).
* :class:`~repro.filters.dlcbf.DLeftCBF` — d-left CBF [17] (extension).
* :class:`~repro.filters.vicbf.VariableIncrementCBF` — VI-CBF [23]
  (extension).
* :class:`~repro.filters.spectral.SpectralBloomFilter` — SBF [12]
  (extension).
"""

from repro.filters.base import (
    FilterBase,
    CountingFilterBase,
    OverflowPolicy,
)
from repro.filters.bloom import BloomFilter
from repro.filters.one_access import OneAccessBloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.filters.pcbf import PartitionedCBF
from repro.filters.hcbf_word import HCBFWord, improved_first_level_size
from repro.filters.mpcbf import MPCBF
from repro.filters.dlcbf import DLeftCBF
from repro.filters.spectral import SpectralBloomFilter
from repro.filters.vicbf import VariableIncrementCBF
from repro.filters.factory import FilterSpec, build_filter, build_suite

__all__ = [
    "FilterBase",
    "CountingFilterBase",
    "OverflowPolicy",
    "BloomFilter",
    "OneAccessBloomFilter",
    "CountingBloomFilter",
    "PartitionedCBF",
    "HCBFWord",
    "improved_first_level_size",
    "MPCBF",
    "DLeftCBF",
    "SpectralBloomFilter",
    "VariableIncrementCBF",
    "FilterSpec",
    "build_filter",
    "build_suite",
]
