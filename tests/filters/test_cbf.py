"""Tests for the standard Counting Bloom Filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import OverflowPolicy
from repro.filters.cbf import CountingBloomFilter


class TestCBFBasics:
    def test_insert_query_delete_cycle(self):
        cbf = CountingBloomFilter(1024, 3, seed=1)
        cbf.insert("alice")
        assert cbf.query("alice")
        cbf.delete("alice")
        assert not cbf.query("alice")

    def test_no_false_negatives(self, small_keys):
        cbf = CountingBloomFilter(4096, 3)
        cbf.insert_many(small_keys)
        assert cbf.query_many(small_keys).all()

    def test_count_tracks_multiplicity(self):
        cbf = CountingBloomFilter(1024, 3)
        for _ in range(5):
            cbf.insert("dup")
        assert cbf.count("dup") == 5
        cbf.delete("dup")
        assert cbf.count("dup") == 4

    def test_count_of_absent_is_zero_whp(self):
        cbf = CountingBloomFilter(4096, 3)
        cbf.insert("present")
        assert cbf.count("definitely-absent-key") == 0

    def test_total_bits_uses_counter_width(self):
        cbf = CountingBloomFilter(1000, 3, counter_bits=4)
        assert cbf.total_bits == 4000

    def test_deleting_one_of_two_colliding_keys_keeps_other(self, small_keys):
        cbf = CountingBloomFilter(256, 3)  # small: collisions likely
        cbf.insert_many(small_keys)
        cbf.delete(small_keys[0])
        # All remaining keys must still be present (counting property).
        assert cbf.query_many(small_keys[1:]).all()


class TestCBFOverflow:
    def test_overflow_raises(self):
        cbf = CountingBloomFilter(64, 1, counter_bits=2, seed=0)
        for _ in range(3):
            cbf.insert("same")
        with pytest.raises(CounterOverflowError):
            cbf.insert("same")

    def test_overflow_saturates(self):
        cbf = CountingBloomFilter(
            64, 1, counter_bits=2, overflow=OverflowPolicy.SATURATE
        )
        for _ in range(10):
            cbf.insert("same")
        assert cbf.saturation_events == 7
        assert cbf.count("same") == 3  # pinned at limit

    def test_bulk_overflow_raises_and_rolls_back(self):
        cbf = CountingBloomFilter(64, 1, counter_bits=2, seed=0)
        keys = np.full(5, cbf.encoder.encode("same"), dtype=np.uint64)
        with pytest.raises(CounterOverflowError):
            cbf.insert_many(keys)
        assert cbf.count("same") == 0  # rollback left it untouched

    def test_bulk_overflow_saturates(self):
        cbf = CountingBloomFilter(
            64, 1, counter_bits=2, overflow="saturate", seed=0
        )
        keys = np.full(5, cbf.encoder.encode("same"), dtype=np.uint64)
        cbf.insert_many(keys)
        assert cbf.count("same") == 3
        assert cbf.saturation_events == 2


class TestCBFUnderflow:
    def test_delete_absent_raises(self):
        cbf = CountingBloomFilter(1024, 3)
        with pytest.raises(CounterUnderflowError):
            cbf.delete("ghost")

    def test_failed_delete_leaves_filter_intact(self):
        cbf = CountingBloomFilter(1024, 3)
        cbf.insert("real")
        before = cbf.counters.copy()
        with pytest.raises(CounterUnderflowError):
            cbf.delete("ghost")
        np.testing.assert_array_equal(cbf.counters, before)

    def test_bulk_delete_underflow_rolls_back(self, small_keys):
        cbf = CountingBloomFilter(4096, 3)
        cbf.insert_many(small_keys)
        before = cbf.counters.copy()
        bad = np.append(
            cbf.encoder.encode_many(small_keys[:5]),
            np.uint64(cbf.encoder.encode("ghost")),
        )
        with pytest.raises(CounterUnderflowError):
            cbf.delete_many(bad)
        np.testing.assert_array_equal(cbf.counters, before)


class TestCBFBulkScalarAgreement:
    def test_insert_many_matches_scalar(self, small_keys):
        a = CountingBloomFilter(2048, 3, seed=5)
        b = CountingBloomFilter(2048, 3, seed=5)
        a.insert_many(small_keys)
        for key in small_keys:
            b.insert(key)
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_delete_many_matches_scalar(self, small_keys):
        a = CountingBloomFilter(2048, 3, seed=5)
        b = CountingBloomFilter(2048, 3, seed=5)
        a.insert_many(small_keys)
        b.insert_many(small_keys)
        a.delete_many(small_keys[:50])
        for key in small_keys[:50]:
            b.delete(key)
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_query_many_matches_scalar(self, small_keys, negative_keys):
        cbf = CountingBloomFilter(2048, 3, seed=5)
        cbf.insert_many(small_keys)
        bulk = cbf.query_many(negative_keys[:500])
        scalar = np.array(
            [cbf.query_encoded(int(k)) for k in negative_keys[:500]]
        )
        np.testing.assert_array_equal(bulk, scalar)

    def test_duplicates_in_one_batch_accumulate(self):
        cbf = CountingBloomFilter(1024, 3, seed=2)
        key = cbf.encoder.encode("dup")
        cbf.insert_many(np.full(4, key, dtype=np.uint64))
        assert cbf.count("dup") == 4


class TestCBFStats:
    def test_query_access_early_exit(self, small_keys, negative_keys):
        cbf = CountingBloomFilter(1 << 15, 3)
        cbf.insert_many(small_keys)
        cbf.reset_stats()
        cbf.query_many(negative_keys)
        # Nearly empty filter: negative queries stop at ~first counter.
        assert 1.0 <= cbf.stats.query.mean_accesses < 1.2

    def test_member_query_costs_k_accesses(self, small_keys):
        cbf = CountingBloomFilter(1 << 15, 3)
        cbf.insert_many(small_keys)
        cbf.reset_stats()
        cbf.query_many(small_keys)
        assert cbf.stats.query.mean_accesses == pytest.approx(3.0)

    def test_update_stats(self, small_keys):
        cbf = CountingBloomFilter(4096, 4)
        cbf.insert_many(small_keys)
        cbf.delete_many(small_keys[:10])
        upd = cbf.stats.update
        assert upd.operations == len(small_keys) + 10
        assert upd.mean_accesses == 4.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CountingBloomFilter(0, 3)
        with pytest.raises(ConfigurationError):
            CountingBloomFilter(10, 3, counter_bits=0)
