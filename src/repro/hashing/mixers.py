"""64-bit avalanche mixers, scalar and NumPy-vectorised.

Two classic finalisers are provided:

* ``splitmix64`` — the output function of the SplitMix64 generator
  (Steele, Lea & Flood 2014).  Cheap, excellent avalanche behaviour,
  and trivially seedable by adding a per-hash-function constant before
  mixing, which is how :class:`repro.hashing.families.HashFamily`
  derives independent hash functions from one encoded key.
* ``murmur_fmix64`` — the MurmurHash3 64-bit finaliser (Appleby 2011),
  used as an independent second mixer for double hashing.

The scalar versions operate on Python ints masked to 64 bits and are
used by the per-operation (non-bulk) filter paths and by tests as the
reference implementation.  The ``*_array`` versions operate elementwise
on ``uint64`` arrays; NumPy wraps arithmetic modulo 2**64 natively, so
they are exact counterparts (property-tested in
``tests/hashing/test_mixers.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MASK64",
    "splitmix64",
    "splitmix64_array",
    "murmur_fmix64",
    "murmur_fmix64_array",
    "derive_seeds",
]

MASK64 = (1 << 64) - 1

_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB

_MM_MUL1 = 0xFF51AFD7ED558CCD
_MM_MUL2 = 0xC4CEB9FE1A85EC53


def splitmix64(x: int) -> int:
    """Mix a 64-bit integer with the SplitMix64 finaliser.

    Parameters
    ----------
    x:
        Any Python int; only its low 64 bits participate.

    Returns
    -------
    int
        A well-mixed value in ``[0, 2**64)``.
    """
    x = (x + _SM_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & MASK64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a ``uint64`` array.

    NumPy integer arithmetic wraps modulo 2**64 for ``uint64``, so the
    sequence of operations matches the scalar version bit-for-bit.
    Overflow warnings are intentional behaviour and suppressed locally.
    """
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + np.uint64(_SM_GAMMA)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_SM_MUL1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_SM_MUL2)
        return x ^ (x >> np.uint64(31))


def murmur_fmix64(x: int) -> int:
    """Mix a 64-bit integer with the MurmurHash3 ``fmix64`` finaliser."""
    x &= MASK64
    x = ((x ^ (x >> 33)) * _MM_MUL1) & MASK64
    x = ((x ^ (x >> 33)) * _MM_MUL2) & MASK64
    return x ^ (x >> 33)


def murmur_fmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`murmur_fmix64` over a ``uint64`` array."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(33))) * np.uint64(_MM_MUL1)
        x = (x ^ (x >> np.uint64(33))) * np.uint64(_MM_MUL2)
        return x ^ (x >> np.uint64(33))


def derive_seeds(master_seed: int, count: int) -> tuple[int, ...]:
    """Derive ``count`` independent 64-bit seeds from ``master_seed``.

    Seeds are produced by iterating SplitMix64, the construction its
    authors recommend for seeding families of generators.  Used by
    :class:`~repro.hashing.families.HashFamily` so an entire filter is
    reproducible from a single integer.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = []
    state = master_seed & MASK64
    for _ in range(count):
        state = (state + _SM_GAMMA) & MASK64
        seeds.append(splitmix64(state))
    return tuple(seeds)
