"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
    ReproError,
    UnsupportedOperationError,
    WordOverflowError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            CapacityError,
            CounterOverflowError,
            CounterUnderflowError,
            WordOverflowError,
            UnsupportedOperationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_is_value_error(self):
        # So sloppy callers catching ValueError still see config bugs.
        assert issubclass(ConfigurationError, ValueError)

    def test_capacity_family(self):
        for exc in (CounterOverflowError, CounterUnderflowError, WordOverflowError):
            assert issubclass(exc, CapacityError)


class TestMessages:
    def test_counter_overflow_carries_context(self):
        err = CounterOverflowError(17, 15)
        assert err.index == 17
        assert err.limit == 15
        assert "17" in str(err) and "15" in str(err)

    def test_counter_underflow(self):
        err = CounterUnderflowError(3)
        assert err.index == 3
        assert "underflow" in str(err)

    def test_word_overflow(self):
        err = WordOverflowError(9, 24)
        assert err.word_index == 9
        assert err.capacity == 24
        assert "word 9" in str(err)

    def test_single_except_catches_everything(self):
        for exc in (
            ConfigurationError("x"),
            CounterOverflowError(0, 1),
            WordOverflowError(0, 1),
        ):
            try:
                raise exc
            except ReproError:
                pass
