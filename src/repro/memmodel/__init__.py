"""Memory-access modelling substrate.

The paper's "processing overhead" metric is the number of memory words
an operation touches plus the hash bits it consumes (access bandwidth).
This package provides:

* :class:`~repro.memmodel.accounting.AccessStats` — per-filter running
  counters of operations, word accesses, bandwidth bits, and hash
  calls, with per-operation averages (the numbers in Tables I–III).
* :class:`~repro.memmodel.memory.WordMemory` — a simulated
  word-addressable memory that stores word payloads and counts
  reads/writes, used by the scalar filter paths so that the empirical
  access counts are observed rather than assumed.
"""

from repro.memmodel.accounting import AccessStats, OpKind
from repro.memmodel.memory import WordMemory
from repro.memmodel.banked import (
    BankedSimResult,
    lookup_bank_requests,
    simulate_lookup_stream,
)
from repro.memmodel.packed import PackedCounterArray
from repro.memmodel.pipeline import SramPipelineModel, ThroughputEstimate

__all__ = [
    "AccessStats",
    "OpKind",
    "WordMemory",
    "PackedCounterArray",
    "BankedSimResult",
    "lookup_bank_requests",
    "simulate_lookup_stream",
    "SramPipelineModel",
    "ThroughputEstimate",
]
