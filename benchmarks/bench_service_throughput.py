"""Daemon throughput: ops/s vs client concurrency, coalescing on/off.

The service's performance claim mirrors the paper's: amortise a fixed
per-operation cost over a batch.  This bench starts the daemon
in-process on an ephemeral port and measures single-key QUERY
throughput at 1-, 8-, and 64-way client concurrency, once with the
coalescer enabled (200 us window) and once disabled (``max_delay_us=0``
— every request dispatches alone, the per-op baseline).  At one client
there is nothing to coalesce and the two configurations tie; at 64-way
concurrency the coalesced daemon must win, because each dispatch then
carries many keys down the vectorised ``query_many`` path.

A second grid measures single-key INSERT throughput at 64-way
concurrency with mutation fusing off (default: each request rides its
own ``insert_many`` call) and on (``fuse_mutations=True``: the whole
coalesced batch flattens into one call, so the columnar update kernels
see the full micro-batch at once).  Fusing requires overflow policies
that saturate, which the benched bank uses.

Writes ``results/service-throughput.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.filters.factory import FilterSpec
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient
from repro.service.server import FilterServer

CONCURRENCY_LEVELS = (1, 8, 64)
RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"


def _make_bank(members: int):
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=max(members, 1000),
            seed=3,
            extra={"word_overflow": "saturate"},
        ),
        num_shards=4,
    )
    bank.insert_many([b"member-%d" % i for i in range(members)])
    return bank


async def _drive(server: FilterServer, clients: int, ops_per_client: int):
    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for i in range(ops_per_client):
                await client.query(b"member-%d" % ((c * ops_per_client + i) % 1000))
        return ops_per_client

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure(
    members: int, clients: int, ops_per_client: int, coalesce: bool
) -> dict:
    async def main():
        server = FilterServer(
            _make_bank(members),
            port=0,
            max_delay_us=200.0 if coalesce else 0.0,
        )
        await server.start()
        total, elapsed = await _drive(server, clients, ops_per_client)
        mean_batch = server.metrics.mean_batch_size
        await server.stop()
        return total, elapsed, mean_batch

    total, elapsed, mean_batch = asyncio.run(main())
    return {
        "op": "query",
        "clients": clients,
        "coalescing": coalesce,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "mean_batch_requests": round(mean_batch, 2),
    }


async def _drive_inserts(server: FilterServer, clients: int, ops_per_client: int):
    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for i in range(ops_per_client):
                await client.insert(b"fused-%d-%d" % (c, i))
        return ops_per_client

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure_inserts(
    members: int, clients: int, ops_per_client: int, fused: bool
) -> dict:
    async def main():
        server = FilterServer(
            _make_bank(members),
            port=0,
            max_delay_us=200.0,
            fuse_mutations=fused,
        )
        await server.start()
        total, elapsed = await _drive_inserts(server, clients, ops_per_client)
        mean_batch = server.metrics.mean_batch_size
        await server.stop()
        return total, elapsed, mean_batch

    total, elapsed, mean_batch = asyncio.run(main())
    return {
        "op": "insert",
        "clients": clients,
        "fused": fused,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "mean_batch_requests": round(mean_batch, 2),
    }


def service_throughput(scale) -> list[dict]:
    # ~1/20th of the synthetic query volume keeps the 6-config grid
    # inside a CI-friendly wall-clock budget at every scale.
    ops_total = max(1000, scale.synth_queries // 20)
    members = min(scale.synth_members, 1000)
    rows = [
        _measure(members, clients, max(20, ops_total // clients), coalesce)
        for coalesce in (True, False)
        for clients in CONCURRENCY_LEVELS
    ]
    # Fused-kernel rows: 64-way single-key INSERTs, batcher window on,
    # with and without cross-request mutation fusing.
    rows += [
        _measure_inserts(members, 64, max(20, ops_total // 64), fused)
        for fused in (False, True)
    ]
    return rows


def test_service_throughput(benchmark, scale, capsys):
    rows = run_once(benchmark, service_throughput, scale)
    RESULTS_PATH.mkdir(exist_ok=True)
    out = RESULTS_PATH / "service-throughput.json"
    out.write_text(json.dumps({"scale": scale.name, "rows": rows}, indent=2))
    with capsys.disabled():
        print()
        header = (
            f"{'op':>7} {'clients':>8} {'mode':>10} {'ops/s':>12} "
            f"{'mean batch':>11}"
        )
        print(header)
        for row in rows:
            mode = (
                f"coalesce={row['coalescing']}"
                if row["op"] == "query"
                else f"fused={row['fused']}"
            )
            print(
                f"{row['op']:>7} {row['clients']:>8} {mode:>10} "
                f"{row['ops_per_s']:>12.0f} {row['mean_batch_requests']:>11.2f}"
            )
    by_key = {
        (r["clients"], r["coalescing"]): r for r in rows if r["op"] == "query"
    }
    # The acceptance shape: coalescing wins at 64-way concurrency.
    assert (
        by_key[(64, True)]["ops_per_s"] > by_key[(64, False)]["ops_per_s"]
    ), "coalesced daemon must beat per-op dispatch at 64-way concurrency"
    # And it really coalesced: mean batch size well above one request.
    assert by_key[(64, True)]["mean_batch_requests"] > 1.5
    # Fused mutations flatten the batch into one kernel call, removing
    # the per-request insert_many dispatch; at 64-way that must win.
    inserts = {r["fused"]: r for r in rows if r["op"] == "insert"}
    assert inserts[True]["ops_per_s"] > inserts[False]["ops_per_s"], (
        "fused mutation batches must beat per-request applies at 64-way"
    )
