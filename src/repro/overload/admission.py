"""Server-side admission control: bounded queues + cost-aware buckets.

The daemon used to accept unbounded work — every connection could park
requests on the coalescer queue forever, so a retry storm turned into
queue growth, which turned into latency, which turned into more
retries.  Admission control inverts that: work is *priced and bounded
at the door*, and the excess is rejected immediately with
:class:`~repro.errors.OverloadedError` (an ``OVERLOADED`` wire frame
with a retry-after hint) while the door itself stays fast.

Two mechanisms compose:

- a hard **inflight bound** (``max_inflight`` admitted requests not
  yet answered) — the memory backstop.  Past it everything sheds.
- an optional cost-aware :class:`TokenBucket` — the *rate* backstop.
  Mutations cost more tokens per key than queries (they touch counters
  and the WAL, not just the level-1 mirror), mirroring the paper's
  update-vs-query access asymmetry (Tables I–II), so a write-heavy
  storm is throttled earlier than a read-heavy one.

Between the two sits **degraded-read mode**: past the high-water mark
(a fraction of ``max_inflight``) the controller keeps admitting
membership queries — which the MPCBF answers from its packed level-1
mirror, the cheapest path it has — while shedding mutations.  The
mode clears at the low-water mark (hysteresis, so the daemon does not
flap at the boundary).  Shed accounting flows into
:class:`~repro.service.metrics.ServiceMetrics` and is exported as the
``repro_shed_total`` / ``repro_admission_*`` Prometheus families.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable

from repro.errors import ConfigurationError, OverloadedError

__all__ = [
    "TokenBucket",
    "AdmissionController",
    "DEFAULT_COSTS",
    "DEFAULT_MAX_INFLIGHT",
]

#: Tokens one key costs, by operation kind.  Mutations are priced at
#: 4x a query: they touch every hash position read-modify-write (and,
#: on cluster nodes, append a WAL record), where a query is a read-only
#: probe of the packed mirror.
DEFAULT_COSTS: dict[str, float] = {"query": 1.0, "insert": 4.0, "delete": 4.0}

#: Inflight bound when the operator does not set one.  Far above any
#: healthy working set (the coalescer drains hundreds of requests per
#: dispatch) but a real memory backstop against pathological pile-ups.
DEFAULT_MAX_INFLIGHT = 4096


class TokenBucket:
    """Classic token bucket with fractional tokens and a lazy refill.

    ``rate`` tokens accrue per second up to ``burst`` capacity.
    :meth:`try_acquire` either debits the full cost or debits nothing;
    :meth:`wait_time` turns a shortfall into the retry-after hint shed
    responses carry, so clients back off for a *useful* interval
    instead of a guessed one.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"token rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ConfigurationError(f"burst must be > 0, got {burst}")
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (refills before reading)."""
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Debit ``cost`` tokens if available; all-or-nothing."""
        self._refill()
        if cost <= self._tokens:
            self._tokens -= cost
            return True
        return False

    def wait_time(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accrued (0 if now).

        Costs above ``burst`` can never be satisfied in one acquire;
        the wait for a full bucket is reported, which is the honest
        "try again with a smaller batch" hint.
        """
        self._refill()
        shortfall = min(cost, self.burst) - self._tokens
        if shortfall <= 0:
            return 0.0
        return shortfall / self.rate


class AdmissionController:
    """Decides, per request, between *admit now* and *shed with a hint*.

    Thread-model: the server calls :meth:`admit` / :meth:`release` from
    the event loop only, so plain counters suffice.  The Prometheus
    exporter reads the public attributes from its scrape thread; they
    are single ints/floats, so a torn read is impossible.

    Parameters
    ----------
    max_inflight:
        Hard bound on admitted-but-unanswered requests.
    bucket:
        Optional :class:`TokenBucket` pricing admitted keys.  ``None``
        disables rate limiting (the inflight bound still applies).
    costs:
        Per-key token cost by op kind; defaults to :data:`DEFAULT_COSTS`.
    high_water, low_water:
        Degraded-mode hysteresis, as fractions of ``max_inflight``.
        At or above high water mutations shed (queries still admit);
        below low water full service resumes.
    metrics:
        Optional :class:`~repro.service.metrics.ServiceMetrics`; shed
        events are mirrored into its ``shed`` counter so STATS and the
        ``repro_shed_total`` family see them.
    """

    def __init__(
        self,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        bucket: TokenBucket | None = None,
        costs: dict[str, float] | None = None,
        high_water: float = 0.8,
        low_water: float = 0.5,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if not 0.0 < low_water <= high_water <= 1.0:
            raise ConfigurationError(
                f"need 0 < low_water <= high_water <= 1, got "
                f"{low_water}/{high_water}"
            )
        self.max_inflight = max_inflight
        self.bucket = bucket
        self.costs = dict(DEFAULT_COSTS if costs is None else costs)
        self.high_water = high_water
        self.low_water = low_water
        self.metrics = metrics
        self._clock = clock
        self.inflight = 0
        self.degraded = False
        self.admitted_total = 0
        self.shed: Counter[str] = Counter()

    # -- bookkeeping -----------------------------------------------------
    def _shed(self, reason: str, message: str, retry_after_s: float):
        self.shed[reason] += 1
        if self.metrics is not None:
            self.metrics.record_shed(reason)
        return OverloadedError(message, retry_after_s=retry_after_s)

    def _update_degraded(self) -> None:
        if not self.degraded:
            if self.inflight >= self.high_water * self.max_inflight:
                self.degraded = True
        elif self.inflight <= self.low_water * self.max_inflight:
            self.degraded = False

    # -- the decision ----------------------------------------------------
    def admit(self, kind: str, n_keys: int) -> None:
        """Admit one ``kind`` request carrying ``n_keys`` keys, or raise.

        Raises :class:`~repro.errors.OverloadedError` (never applies
        partial effects) when the request must shed; on return the
        request is admitted and the caller owes one :meth:`release`.
        """
        self._update_degraded()
        if self.inflight >= self.max_inflight:
            # Queue-full sheds hint half an RTT through the queue: the
            # backlog drains batch-by-batch, so "soon" is honest.
            raise self._shed(
                "queue_full",
                f"admission queue is full ({self.inflight} inflight, "
                f"limit {self.max_inflight})",
                retry_after_s=0.05,
            )
        if self.degraded and kind != "query":
            raise self._shed(
                "degraded_write",
                f"node is past its high-water mark "
                f"({self.inflight}/{self.max_inflight} inflight): serving "
                f"reads only, {kind} rejected",
                retry_after_s=0.1,
            )
        if self.bucket is not None:
            cost = max(1, n_keys) * self.costs.get(kind, 1.0)
            if not self.bucket.try_acquire(cost):
                raise self._shed(
                    "rate_limited",
                    f"token bucket empty for {kind} of {n_keys} key(s)",
                    retry_after_s=max(0.001, self.bucket.wait_time(cost)),
                )
        self.inflight += 1
        self.admitted_total += 1

    def release(self) -> None:
        """Mark one admitted request answered (success or error)."""
        if self.inflight > 0:
            self.inflight -= 1
        self._update_degraded()

    # -- introspection ---------------------------------------------------
    def describe(self) -> dict:
        """Plain-dict report for STATS / the operator runbook."""
        out = {
            "max_inflight": self.max_inflight,
            "inflight": self.inflight,
            "degraded": self.degraded,
            "admitted_total": self.admitted_total,
            "shed": dict(self.shed),
            "high_water": self.high_water,
            "low_water": self.low_water,
        }
        if self.bucket is not None:
            out["bucket"] = {
                "rate": self.bucket.rate,
                "burst": self.bucket.burst,
                "tokens": round(self.bucket.tokens, 3),
            }
        return out
