"""Daemon throughput: ops/s vs client concurrency, coalescing on/off.

The service's performance claim mirrors the paper's: amortise a fixed
per-operation cost over a batch.  This bench starts the daemon
in-process on an ephemeral port and measures single-key QUERY
throughput at 1-, 8-, and 64-way client concurrency, once with the
coalescer enabled (200 us window) and once disabled (``max_delay_us=0``
— every request dispatches alone, the per-op baseline).  At one client
there is nothing to coalesce and the two configurations tie; at 64-way
concurrency the coalesced daemon must win, because each dispatch then
carries many keys down the vectorised ``query_many`` path.

A second grid measures single-key INSERT throughput at 64-way
concurrency with mutation fusing off (default: each request rides its
own ``insert_many`` call) and on (``fuse_mutations=True``: the whole
coalesced batch flattens into one call, so the columnar update kernels
see the full micro-batch at once).  Fusing requires overflow policies
that saturate, which the benched bank uses.

A third grid measures the columnar fastpath: 8 concurrent clients each
shipping 64-key batches, once as legacy ``BATCH`` frames (per-key
length-prefixed bytes, per-key server-side parse and encode) and once
as ``BULK64`` frames (client-side vectorised key encoding, packed u64
columns, zero-copy ``np.frombuffer`` decode).  Both paths answer the
same queries against the same bank; bulk64 must clear a 2x keys/s
floor over legacy at this batching depth.

Writes ``results/service-throughput.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.filters.factory import FilterSpec
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient, _encode_keys64
from repro.service.server import FilterServer

CONCURRENCY_LEVELS = (1, 8, 64)
RESULTS_PATH = Path(__file__).resolve().parents[1] / "results"


def _make_bank(members: int):
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=64 * 8192,
            k=3,
            capacity=max(members, 1000),
            seed=3,
            extra={"word_overflow": "saturate"},
        ),
        num_shards=4,
    )
    bank.insert_many([b"member-%d" % i for i in range(members)])
    return bank


async def _drive(server: FilterServer, clients: int, ops_per_client: int):
    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for i in range(ops_per_client):
                await client.query(b"member-%d" % ((c * ops_per_client + i) % 1000))
        return ops_per_client

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure(
    members: int, clients: int, ops_per_client: int, coalesce: bool
) -> dict:
    async def main():
        server = FilterServer(
            _make_bank(members),
            port=0,
            max_delay_us=200.0 if coalesce else 0.0,
        )
        await server.start()
        total, elapsed = await _drive(server, clients, ops_per_client)
        mean_batch = server.metrics.mean_batch_size
        await server.stop()
        return total, elapsed, mean_batch

    total, elapsed, mean_batch = asyncio.run(main())
    return {
        "op": "query",
        "clients": clients,
        "coalescing": coalesce,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "mean_batch_requests": round(mean_batch, 2),
    }


async def _drive_inserts(server: FilterServer, clients: int, ops_per_client: int):
    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for i in range(ops_per_client):
                await client.insert(b"fused-%d-%d" % (c, i))
        return ops_per_client

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure_inserts(
    members: int, clients: int, ops_per_client: int, fused: bool
) -> dict:
    async def main():
        server = FilterServer(
            _make_bank(members),
            port=0,
            max_delay_us=200.0,
            fuse_mutations=fused,
        )
        await server.start()
        total, elapsed = await _drive_inserts(server, clients, ops_per_client)
        mean_batch = server.metrics.mean_batch_size
        await server.stop()
        return total, elapsed, mean_batch

    total, elapsed, mean_batch = asyncio.run(main())
    return {
        "op": "insert",
        "clients": clients,
        "fused": fused,
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "mean_batch_requests": round(mean_batch, 2),
    }


async def _drive_batches(
    server: FilterServer,
    clients: int,
    calls_per_client: int,
    batch: int,
    bulk64: bool,
):
    keys = [b"member-%d" % (i % 1000) for i in range(batch)]
    # The fastpath's contract: encode the working set once client-side,
    # then ship the u64 column on every call.  Legacy frames must ship
    # (and server-side re-encode) the raw bytes every time.
    column = _encode_keys64(keys)

    async def one_client(c: int) -> int:
        async with AsyncFilterClient(port=server.port) as client:
            for _ in range(calls_per_client):
                if bulk64:
                    await client.query_many64(column)
                else:
                    await client.query_many(keys)
        return calls_per_client * batch

    started = time.perf_counter()
    counts = await asyncio.gather(*[one_client(c) for c in range(clients)])
    elapsed = time.perf_counter() - started
    return sum(counts), elapsed


def _measure_batches(
    members: int,
    clients: int,
    calls_per_client: int,
    batch: int,
    bulk64: bool,
) -> dict:
    async def main():
        server = FilterServer(_make_bank(members), port=0, max_delay_us=200.0)
        await server.start()
        total, elapsed = await _drive_batches(
            server, clients, calls_per_client, batch, bulk64
        )
        frames = server.metrics.fastpath_frames
        await server.stop()
        return total, elapsed, frames

    total, elapsed, frames = asyncio.run(main())
    return {
        "op": "batch_query",
        "clients": clients,
        "batch": batch,
        "wire": "bulk64" if bulk64 else "legacy",
        "ops": total,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total / elapsed, 1),
        "fastpath_frames": frames,
    }


def service_throughput(scale) -> list[dict]:
    # ~1/20th of the synthetic query volume keeps the 6-config grid
    # inside a CI-friendly wall-clock budget at every scale.
    ops_total = max(1000, scale.synth_queries // 20)
    members = min(scale.synth_members, 1000)
    rows = [
        _measure(members, clients, max(20, ops_total // clients), coalesce)
        for coalesce in (True, False)
        for clients in CONCURRENCY_LEVELS
    ]
    # Fused-kernel rows: 64-way single-key INSERTs, batcher window on,
    # with and without cross-request mutation fusing.
    rows += [
        _measure_inserts(members, 64, max(20, ops_total // 64), fused)
        for fused in (False, True)
    ]
    # Columnar fastpath rows: 8 clients shipping 64- and 256-key
    # columns, legacy BATCH frames vs BULK64 columns over the same
    # keys.  The per-key wire cost legacy pays (length-prefixed parse +
    # server-side re-encode) grows with column width; the fastpath's
    # stays flat, so the speedup widens with the batch.
    for batch in (64, 256, 512):
        calls = max(30, ops_total // (8 * batch) * 4)
        pair = [
            _measure_batches(members, 8, calls, batch, bulk64)
            for bulk64 in (False, True)
        ]
        pair[1]["speedup_vs_legacy"] = round(
            pair[1]["ops_per_s"] / pair[0]["ops_per_s"], 2
        )
        rows += pair
    return rows


def test_service_throughput(benchmark, scale, capsys):
    rows = run_once(benchmark, service_throughput, scale)
    RESULTS_PATH.mkdir(exist_ok=True)
    out = RESULTS_PATH / "service-throughput.json"
    out.write_text(json.dumps({"scale": scale.name, "rows": rows}, indent=2))
    with capsys.disabled():
        print()
        header = (
            f"{'op':>11} {'clients':>8} {'mode':>14} {'ops/s':>12} "
            f"{'batch':>11}"
        )
        print(header)
        for row in rows:
            if row["op"] == "query":
                mode = f"coalesce={row['coalescing']}"
            elif row["op"] == "insert":
                mode = f"fused={row['fused']}"
            else:
                mode = row["wire"]
            batch = row.get("mean_batch_requests", row.get("batch", 0))
            print(
                f"{row['op']:>11} {row['clients']:>8} {mode:>14} "
                f"{row['ops_per_s']:>12.0f} {batch:>11.2f}"
            )
    by_key = {
        (r["clients"], r["coalescing"]): r for r in rows if r["op"] == "query"
    }
    # The acceptance shape: coalescing wins at 64-way concurrency.
    assert (
        by_key[(64, True)]["ops_per_s"] > by_key[(64, False)]["ops_per_s"]
    ), "coalesced daemon must beat per-op dispatch at 64-way concurrency"
    # And it really coalesced: mean batch size well above one request.
    assert by_key[(64, True)]["mean_batch_requests"] > 1.5
    # Fused mutations flatten the batch into one kernel call, removing
    # the per-request insert_many dispatch; at 64-way that must win.
    inserts = {r["fused"]: r for r in rows if r["op"] == "insert"}
    assert inserts[True]["ops_per_s"] > inserts[False]["ops_per_s"], (
        "fused mutation batches must beat per-request applies at 64-way"
    )
    # The columnar fastpath's acceptance floors: bulk64 must beat
    # legacy at 64-key columns and at least double it at 256-key
    # columns (the 3x target is recorded in the JSON for full runs).
    wires = {
        (r["batch"], r["wire"]): r for r in rows if r["op"] == "batch_query"
    }
    assert wires[(64, "bulk64")]["fastpath_frames"] > 0
    assert (
        wires[(64, "bulk64")]["ops_per_s"]
        > wires[(64, "legacy")]["ops_per_s"]
    ), "bulk64 must beat legacy BATCH frames at 64-key columns"
    speedup = wires[(256, "bulk64")]["speedup_vs_legacy"]
    assert speedup >= 2.0, (
        f"bulk64 must clear 2x legacy at 256-key columns, got {speedup:.2f}x"
    )
