"""Filter serialisation: stable byte encodings for every variant.

The §V pipeline ships a filter to every map node through
DistributedCache — which in real Hadoop means *bytes on the wire*.
This module provides versioned, self-describing encodings for all
filter variants so the broadcast cost is the real payload size and a
filter can round-trip across processes (or into files) without pickle.

Format: an 8-byte magic+version header, a JSON config block (length
prefixed) describing the variant and its geometry, then the raw state
arrays.  Integers are little-endian; NumPy arrays are dumped with an
explicit dtype/shape in the config so the reader never guesses.

Only filter *state* is serialised — hash seeds travel in the config, so
the reconstructed filter answers queries identically (tested
byte-for-byte in ``tests/test_serialize.py``).
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import FilterBase
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.filters.dlcbf import DLeftCBF
from repro.filters.mpcbf import MPCBF
from repro.filters.one_access import OneAccessBloomFilter
from repro.filters.pcbf import PartitionedCBF
from repro.filters.spectral import SpectralBloomFilter
from repro.filters.vicbf import VariableIncrementCBF

__all__ = [
    "dump_filter",
    "load_filter",
    "dump_bank",
    "load_bank",
    "serialized_size",
]

_MAGIC = b"MPCB"
_BANK_MAGIC = b"MPBK"
_VERSION = 1


def _write_array(buf: io.BytesIO, arr: np.ndarray) -> dict:
    """Append an array's raw bytes; return its descriptor."""
    data = np.ascontiguousarray(arr)
    raw = data.tobytes()
    offset = buf.tell()
    buf.write(raw)
    return {
        "dtype": str(data.dtype),
        "shape": list(data.shape),
        "offset": offset,
        "nbytes": len(raw),
    }


def _read_array(payload: bytes, desc: dict) -> np.ndarray:
    raw = payload[desc["offset"] : desc["offset"] + desc["nbytes"]]
    return np.frombuffer(raw, dtype=desc["dtype"]).reshape(desc["shape"]).copy()


def dump_filter(filt: FilterBase) -> bytes:
    """Serialise a filter to bytes.

    Supported: BloomFilter, OneAccessBloomFilter (BF-g),
    CountingBloomFilter, PartitionedCBF, VariableIncrementCBF, MPCBF,
    DLeftCBF, SpectralBloomFilter — every variant the factory builds,
    so the serving daemon can snapshot whatever it hosts.
    """
    state = io.BytesIO()
    family = getattr(filt, "family", None)
    config: dict = {"seed": getattr(filt, "seed", getattr(family, "seed", 0))}

    if isinstance(filt, BloomFilter):
        config.update(
            variant="BF", num_bits=filt.num_bits, k=filt.k,
            bits=_write_array(state, filt._bits),
        )
    elif isinstance(filt, VariableIncrementCBF):
        config.update(
            variant="VI-CBF",
            num_counters=filt.num_counters,
            k=filt.k,
            L=filt.L,
            counter_bits=filt.counter_bits,
            counters=_write_array(state, filt._counters),
        )
    elif isinstance(filt, PartitionedCBF):
        config.update(
            variant="PCBF",
            num_words=filt.num_words,
            word_bits=filt.word_bits,
            k=filt.k,
            g=filt.g,
            counter_bits=filt.counter_bits,
            overflow=filt.overflow.value,
            counters=_write_array(state, filt._counters),
        )
    elif isinstance(filt, CountingBloomFilter):
        # `.counters` unpacks both storage backends identically.
        config.update(
            variant="CBF",
            num_counters=filt.num_counters,
            k=filt.k,
            counter_bits=filt.counter_bits,
            overflow=filt.overflow.value,
            storage=filt.storage,
            counters=_write_array(state, np.asarray(filt.counters)),
        )
    elif isinstance(filt, OneAccessBloomFilter):
        config.update(
            variant="BF-g",
            num_words=filt.num_words,
            word_bits=filt.word_bits,
            k=filt.k,
            g=filt.g,
            mirror=_write_array(state, filt._mirror),
        )
    elif isinstance(filt, DLeftCBF):
        config.update(
            variant="dlCBF",
            num_buckets=filt.num_buckets,
            d=filt.d,
            cells_per_bucket=filt.cells_per_bucket,
            fingerprint_bits=filt.fingerprint_bits,
            counter_bits=filt.counter_bits,
            fingerprints=_write_array(state, filt._fingerprints),
            counters=_write_array(state, filt._counters),
        )
    elif isinstance(filt, SpectralBloomFilter):
        config.update(
            variant="SBF",
            num_counters=filt.num_counters,
            k=filt.k,
            counter_bits=filt.counter_bits,
            recurring_minimum=filt.recurring_minimum,
            counters=_write_array(state, filt._counters),
        )
        if filt.recurring_minimum:
            config["secondary"] = _write_array(state, filt._secondary)
    elif isinstance(filt, MPCBF):
        config.update(
            variant="MPCBF",
            num_words=filt.num_words,
            word_bits=filt.word_bits,
            k=filt.k,
            g=filt.g,
            n_max=filt.n_max,
            first_level_bits=filt.first_level_bits,
            word_overflow=filt.word_overflow,
            # dump_level_state() is kernel-independent and saturated is
            # sorted, so columnar and scalar backends holding the same
            # contents serialise to identical bytes (the kernel choice
            # itself is a runtime concern and is deliberately omitted).
            words=filt.dump_level_state(),
            saturated={
                str(i): hex(v) for i, v in sorted(filt._saturated.items())
            },
            mirror=_write_array(state, filt._mirror),
        )
    else:
        raise ConfigurationError(
            f"cannot serialise filter type {type(filt).__name__}"
        )

    config_bytes = json.dumps(config).encode("utf-8")
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(struct.pack("<I", _VERSION))
    out.write(struct.pack("<I", len(config_bytes)))
    out.write(config_bytes)
    out.write(state.getvalue())
    return out.getvalue()


def load_filter(data: bytes) -> FilterBase:
    """Reconstruct a filter serialised by :func:`dump_filter`."""
    if data[:4] != _MAGIC:
        raise ConfigurationError("not a serialised repro filter (bad magic)")
    (version,) = struct.unpack_from("<I", data, 4)
    if version != _VERSION:
        raise ConfigurationError(f"unsupported filter format version {version}")
    (config_len,) = struct.unpack_from("<I", data, 8)
    config = json.loads(data[12 : 12 + config_len].decode("utf-8"))
    payload = data[12 + config_len :]
    seed = config["seed"]
    variant = config["variant"]

    if variant == "BF":
        filt = BloomFilter(config["num_bits"], config["k"], seed=seed)
        filt._bits = _read_array(payload, config["bits"]).astype(bool)
        return filt
    if variant == "VI-CBF":
        filt = VariableIncrementCBF(
            config["num_counters"],
            config["k"],
            L=config["L"],
            counter_bits=config["counter_bits"],
            seed=seed,
        )
        filt._counters = _read_array(payload, config["counters"])
        return filt
    if variant == "PCBF":
        filt = PartitionedCBF(
            config["num_words"],
            config["word_bits"],
            config["k"],
            g=config["g"],
            counter_bits=config["counter_bits"],
            overflow=config["overflow"],
            seed=seed,
        )
        filt._counters = _read_array(payload, config["counters"])
        return filt
    if variant == "CBF":
        filt = CountingBloomFilter(
            config["num_counters"],
            config["k"],
            counter_bits=config["counter_bits"],
            overflow=config["overflow"],
            storage=config.get("storage", "fast"),
            seed=seed,
        )
        values = _read_array(payload, config["counters"])
        if filt._packed is not None:
            filt._packed.load_array(values)
        else:
            filt._counters = values.astype(np.int32)
        return filt
    if variant == "BF-g":
        filt = OneAccessBloomFilter(
            config["num_words"],
            config["word_bits"],
            config["k"],
            g=config["g"],
            seed=seed,
        )
        mirror = _read_array(payload, config["mirror"]).astype(np.uint64)
        filt._mirror[...] = mirror
        # The WordMemory is authoritative for scalar paths; rebuild each
        # word's Python int from its mirror limbs.
        for word_index in range(filt.num_words):
            value = 0
            for limb in range(mirror.shape[1]):
                value |= int(mirror[word_index, limb]) << (64 * limb)
            filt.memory.poke(word_index, value)
        return filt
    if variant == "dlCBF":
        filt = DLeftCBF(
            config["num_buckets"],
            d=config["d"],
            cells_per_bucket=config["cells_per_bucket"],
            fingerprint_bits=config["fingerprint_bits"],
            counter_bits=config["counter_bits"],
            seed=seed,
        )
        filt._fingerprints = _read_array(payload, config["fingerprints"])
        filt._counters = _read_array(payload, config["counters"])
        return filt
    if variant == "SBF":
        filt = SpectralBloomFilter(
            config["num_counters"],
            config["k"],
            counter_bits=config["counter_bits"],
            recurring_minimum=config["recurring_minimum"],
            seed=seed,
        )
        filt._counters = _read_array(payload, config["counters"])
        if config["recurring_minimum"]:
            filt._secondary = _read_array(payload, config["secondary"])
        return filt
    if variant == "MPCBF":
        # Reconstruct from b1: exact for both the improved layout
        # (b1 = w − ⌈k/g⌉·n_max, so n_max round-trips) and the basic
        # fixed-b1 layout.
        filt = MPCBF(
            config["num_words"],
            config["word_bits"],
            config["k"],
            g=config["g"],
            first_level_bits=config["first_level_bits"],
            word_overflow=config["word_overflow"],
            seed=seed,
        )
        if filt.n_max != config["n_max"]:
            raise ConfigurationError(
                "geometry mismatch reconstructing MPCBF "
                f"(n_max {filt.n_max} != {config['n_max']})"
            )
        filt.load_level_state(config["words"])
        filt._saturated = {
            int(i): int(v, 16) for i, v in config["saturated"].items()
        }
        mirror = _read_array(payload, config["mirror"]).astype(np.uint64)
        filt._mirror[...] = mirror
        return filt
    raise ConfigurationError(f"unknown serialised variant {variant!r}")


def dump_bank(bank) -> bytes:
    """Serialise a :class:`~repro.parallel.ShardedFilterBank`.

    The bank header records the per-shard :class:`FilterSpec` (so the
    routing seed and shard seeds re-derive deterministically) followed
    by each shard's :func:`dump_filter` blob.
    """
    spec = bank.spec
    shard_blobs = [dump_filter(shard) for shard in bank.shards]
    offsets = []
    pos = 0
    for blob in shard_blobs:
        offsets.append({"offset": pos, "nbytes": len(blob)})
        pos += len(blob)
    config = {
        "num_shards": bank.num_shards,
        "max_workers": bank.max_workers,
        "executor": getattr(bank, "executor", "thread"),
        "spec": {
            "variant": spec.variant,
            "memory_bits": spec.memory_bits,
            "k": spec.k,
            "word_bits": spec.word_bits,
            "counter_bits": spec.counter_bits,
            "capacity": spec.capacity,
            "n_max": spec.n_max,
            "seed": spec.seed,
            "extra": dict(spec.extra),
        },
        "shards": offsets,
    }
    config_bytes = json.dumps(config).encode("utf-8")
    out = io.BytesIO()
    out.write(_BANK_MAGIC)
    out.write(struct.pack("<I", _VERSION))
    out.write(struct.pack("<I", len(config_bytes)))
    out.write(config_bytes)
    for blob in shard_blobs:
        out.write(blob)
    return out.getvalue()


def load_bank(data: bytes):
    """Reconstruct a bank serialised by :func:`dump_bank`."""
    from repro.filters.factory import FilterSpec
    from repro.parallel.sharded import ShardedFilterBank

    if data[:4] != _BANK_MAGIC:
        raise ConfigurationError("not a serialised filter bank (bad magic)")
    (version,) = struct.unpack_from("<I", data, 4)
    if version != _VERSION:
        raise ConfigurationError(f"unsupported bank format version {version}")
    (config_len,) = struct.unpack_from("<I", data, 8)
    config = json.loads(data[12 : 12 + config_len].decode("utf-8"))
    payload = data[12 + config_len :]
    spec_cfg = config["spec"]
    spec = FilterSpec(
        variant=spec_cfg["variant"],
        memory_bits=spec_cfg["memory_bits"],
        k=spec_cfg["k"],
        word_bits=spec_cfg["word_bits"],
        counter_bits=spec_cfg["counter_bits"],
        capacity=spec_cfg["capacity"],
        n_max=spec_cfg["n_max"],
        seed=spec_cfg["seed"],
        extra=dict(spec_cfg["extra"]),
    )
    bank = ShardedFilterBank(
        spec,
        config["num_shards"],
        max_workers=config["max_workers"],
        executor=config.get("executor", "thread"),
    )
    bank.shards = [
        load_filter(payload[d["offset"] : d["offset"] + d["nbytes"]])
        for d in config["shards"]
    ]
    return bank


def serialized_size(filt: FilterBase) -> int:
    """Byte size of the filter's serialised form (broadcast payload)."""
    return len(dump_filter(filt))
