"""Legacy setup shim.

Kept so ``pip install -e .`` works on offline environments without the
``wheel`` package (pip falls back to ``setup.py develop`` when PEP 517
editable builds are unavailable).  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
