"""Cross-variant property-based tests.

Two oracles:

* a *multiset* oracle — every counting filter must answer ``True`` for
  every key currently in the multiset (no false negatives), under
  arbitrary interleavings of inserts and deletes;
* a *pairwise equivalence* oracle — bulk and scalar paths must leave
  identical observable state.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.cbf import CountingBloomFilter
from repro.filters.mpcbf import MPCBF
from repro.filters.pcbf import PartitionedCBF
from repro.filters.vicbf import VariableIncrementCBF


def _make_filters(seed: int):
    """Comparable counting filters, generously sized for tiny key sets."""
    # MPCBF words are 256 bits with large n_max so that even highly
    # adversarial interleavings (hypothesis loves hammering one key)
    # cannot exhaust a word's hierarchy budget.
    return [
        CountingBloomFilter(4096, 3, seed=seed),
        PartitionedCBF(64, 64, 3, seed=seed),
        PartitionedCBF(64, 64, 3, g=2, seed=seed),
        MPCBF(64, 256, 3, n_max=60, seed=seed),
        MPCBF(64, 256, 3, g=2, n_max=64, seed=seed),
        VariableIncrementCBF(4096, 3, seed=seed),
    ]


@st.composite
def _op_sequences(draw):
    """Random interleavings over a small key universe.

    Deletes are only generated for keys currently present, so the
    sequence is always legal.
    """
    n_ops = draw(st.integers(1, 60))
    ops = []
    live: Counter = Counter()
    for _ in range(n_ops):
        key = draw(st.integers(0, 19))
        if live[key] > 0 and draw(st.booleans()):
            ops.append(("delete", key))
            live[key] -= 1
        elif live[key] < 4:  # cap multiplicity: 4-bit CBF counters
            ops.append(("insert", key))
            live[key] += 1
    return ops


class TestNoFalseNegativesProperty:
    @settings(max_examples=60, deadline=None)
    @given(_op_sequences(), st.integers(0, 3))
    def test_all_variants(self, ops, seed):
        filters = _make_filters(seed)
        live: Counter = Counter()
        for op, key in ops:
            for filt in filters:
                getattr(filt, op)(f"key-{key}")
            live[key] += 1 if op == "insert" else -1
        for key, count in live.items():
            if count > 0:
                for filt in filters:
                    assert filt.query(f"key-{key}"), (
                        f"{filt.name} false negative on key-{key} "
                        f"(multiplicity {count})"
                    )

    @settings(max_examples=40, deadline=None)
    @given(_op_sequences())
    def test_counts_are_upper_bounds(self, ops):
        filters = _make_filters(0)
        live: Counter = Counter()
        for op, key in ops:
            for filt in filters:
                getattr(filt, op)(f"key-{key}")
            live[key] += 1 if op == "insert" else -1
        for key, count in live.items():
            for filt in filters:
                assert filt.count(f"key-{key}") >= count, (
                    f"{filt.name} undercounts key-{key}"
                )


class TestEmptyAfterFullDeletion:
    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 200), min_size=1, max_size=40))
    def test_full_cycle_restores_empty(self, keys):
        for filt in _make_filters(1):
            names = [f"k-{k}" for k in keys]
            filt.insert_many(names)
            filt.delete_many(names)
            assert not filt.query_many(names).any(), filt.name
            if isinstance(filt, MPCBF):
                filt.check_invariants()
                assert filt.stored_hash_bits == 0


class TestBulkScalarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=50),
        st.integers(0, 2),
    )
    def test_query_results_identical(self, keys, seed):
        probe = [f"p-{i}" for i in range(40)]
        names = [f"k-{k}" for k in keys]
        for filt in _make_filters(seed):
            filt.insert_many(names)
            bulk = filt.query_many(probe)
            scalar = np.array([filt.query(p) for p in probe])
            np.testing.assert_array_equal(bulk, scalar, err_msg=filt.name)


class TestMPCBFStructuralInvariants:
    @settings(max_examples=40, deadline=None)
    @given(_op_sequences(), st.integers(1, 2))
    def test_invariants_hold_throughout(self, ops, g):
        filt = MPCBF(32, 256, 3, g=g, n_max=60, seed=2)
        for op, key in ops:
            getattr(filt, op)(f"key-{key}")
            filt.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(_op_sequences())
    def test_hierarchy_bits_equal_k_times_live_hashes(self, ops):
        filt = MPCBF(32, 256, 3, n_max=60, seed=2)
        live = 0
        for op, key in ops:
            getattr(filt, op)(f"key-{key}")
            live += 1 if op == "insert" else -1
        # Exactly k hierarchy bits per live insertion (§III.B.3's
        # accounting, the basis of b1 = w − k·n_max).
        assert filt.stored_hash_bits == 3 * live
