"""Hashing substrate: mixers, key encoders, and indexed hash families.

Every filter in :mod:`repro.filters` draws its randomness from this
package.  The design separates three concerns:

* :mod:`repro.hashing.mixers` — 64-bit avalanche mixers (splitmix64 and
  the MurmurHash3 finaliser), each available both as a scalar function
  on Python ints and as a vectorised function on ``numpy`` ``uint64``
  arrays.  The vectorised forms are the hot path of every bulk filter
  operation (guide idiom: vectorise the inner loop).
* :mod:`repro.hashing.encoders` — deterministic conversion of user keys
  (bytes, str, int, tuples such as IP flow 2-tuples) into ``uint64``
  seeds, scalar and bulk.
* :mod:`repro.hashing.families` — :class:`HashFamily`, which turns one
  encoded key into ``k`` indices in a range, a word index plus in-word
  offsets (the partitioned layout of PCBF/MPCBF), with optional
  Kirsch–Mitzenmacher double hashing.
* :mod:`repro.hashing.bit_budget` — the hash-bit accounting primitives
  used for the paper's "access bandwidth" metric.
"""

from repro.hashing.mixers import (
    splitmix64,
    splitmix64_array,
    murmur_fmix64,
    murmur_fmix64_array,
    derive_seeds,
)
from repro.hashing.encoders import (
    encode_key,
    encode_bytes,
    encode_int,
    encode_flow,
    encode_str_array,
    encode_int_array,
    encode_flow_arrays,
    KeyEncoder,
)
from repro.hashing.families import HashFamily, PartitionedHashFamily
from repro.hashing.tabulation import TabulationHash, TabulationHashFamily
from repro.hashing.bit_budget import bits_for_range, HashBitBudget

__all__ = [
    "splitmix64",
    "splitmix64_array",
    "murmur_fmix64",
    "murmur_fmix64_array",
    "derive_seeds",
    "encode_key",
    "encode_bytes",
    "encode_int",
    "encode_flow",
    "encode_str_array",
    "encode_int_array",
    "encode_flow_arrays",
    "KeyEncoder",
    "HashFamily",
    "PartitionedHashFamily",
    "TabulationHash",
    "TabulationHashFamily",
    "bits_for_range",
    "HashBitBudget",
]
