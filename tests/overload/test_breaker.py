"""CircuitBreaker state machine: trip, cooldown, half-open probing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, OverloadedError
from repro.overload.breaker import BreakerState, CircuitBreaker


def make(clock, threshold=3, cooldown=1.0, probes=1):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_s=cooldown,
        half_open_probes=probes,
        clock=clock,
    )


class TestConstruction:
    def test_rejects_zero_threshold(self, clock):
        with pytest.raises(ConfigurationError):
            make(clock, threshold=0)

    def test_rejects_nonpositive_cooldown(self, clock):
        with pytest.raises(ConfigurationError):
            make(clock, cooldown=0.0)

    def test_rejects_zero_probes(self, clock):
        with pytest.raises(ConfigurationError):
            make(clock, probes=0)


class TestTripping:
    def test_stays_closed_below_threshold(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # must not raise

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_trips_at_threshold(self, clock):
        breaker = make(clock, threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1


class TestOpen:
    def test_rejects_with_remaining_cooldown_hint(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        with pytest.raises(OverloadedError) as exc_info:
            breaker.allow()
        assert exc_info.value.retry_after_s == pytest.approx(1.0)
        clock.advance(0.4)
        with pytest.raises(OverloadedError) as exc_info:
            breaker.allow()
        assert exc_info.value.retry_after_s == pytest.approx(0.6)
        assert breaker.rejections == 2

    def test_transitions_to_half_open_after_cooldown(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()  # the probe is admitted
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpen:
    def open_and_cool(self, clock, probes=1):
        breaker = make(clock, threshold=1, cooldown=1.0, probes=probes)
        breaker.record_failure()
        clock.advance(1.0)
        return breaker

    def test_probe_budget_bounds_admissions(self, clock):
        breaker = self.open_and_cool(clock, probes=2)
        breaker.allow()
        breaker.allow()
        with pytest.raises(OverloadedError) as exc_info:
            breaker.allow()
        assert exc_info.value.retry_after_s == pytest.approx(0.5)  # cooldown/2
        assert breaker.rejections == 1

    def test_probe_success_closes(self, clock):
        breaker = self.open_and_cool(clock)
        breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # full service resumed

    def test_probe_failure_reopens_with_fresh_cooldown(self, clock):
        breaker = self.open_and_cool(clock)
        breaker.allow()
        clock.advance(0.3)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        with pytest.raises(OverloadedError) as exc_info:
            breaker.allow()
        # The cooldown restarted at the probe failure, not the first trip.
        assert exc_info.value.retry_after_s == pytest.approx(1.0)


class TestIntrospection:
    def test_state_code_tracks_transitions(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        assert breaker.state_code == BreakerState.CLOSED.value
        breaker.record_failure()
        assert breaker.state_code == BreakerState.OPEN.value
        # An expired cooldown reports HALF_OPEN before any traffic, so
        # dashboards see recovery begin on an idle client.
        clock.advance(1.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.state_code == BreakerState.HALF_OPEN.value

    def test_describe(self, clock):
        breaker = make(clock, threshold=2)
        breaker.record_failure()
        report = breaker.describe()
        assert report["state"] == "CLOSED"
        assert report["consecutive_failures"] == 1
        assert report["trips"] == 0
