"""Injectable storage seam for durable writes (WAL segments, snapshots).

The write-ahead log and the snapshot writer open their files and force
them to stable storage through a :class:`Storage` instance instead of
calling ``open``/``os.fsync`` directly.  The default :data:`REAL_STORAGE`
is a trivial pass-through; the chaos harness substitutes a
:class:`repro.chaos.storage.FaultyStorage` that tracks which bytes have
actually been fsynced and can inject torn tails, failed fsyncs, and
ENOSPC at chosen write offsets — without the WAL or snapshot code
knowing it is being simulated.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO, Union

__all__ = ["Storage", "RealStorage", "REAL_STORAGE"]


class Storage:
    """Abstract factory for durable file handles.

    ``open`` mirrors the builtin and returns a binary file object;
    ``fsync`` forces a handle's written bytes to stable storage;
    ``fsync_path`` does the same for a path (used for directory fsyncs
    after a rename).  Implementations may wrap the returned handles to
    observe or perturb writes.
    """

    def open(self, path: Union[str, Path], mode: str) -> BinaryIO:
        raise NotImplementedError

    def fsync(self, handle: BinaryIO) -> None:
        raise NotImplementedError

    def fsync_path(self, path: Union[str, Path]) -> None:
        raise NotImplementedError


class RealStorage(Storage):
    """The production storage: plain files, real fsync."""

    def open(self, path: Union[str, Path], mode: str) -> BinaryIO:
        return open(path, mode)

    def fsync(self, handle: BinaryIO) -> None:
        os.fsync(handle.fileno())

    def fsync_path(self, path: Union[str, Path]) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: Shared production storage; stateless, safe to reuse everywhere.
REAL_STORAGE = RealStorage()
