"""Lightweight timer spans feeding the power-of-two histograms.

Not a distributed tracer — a wall-clock stopwatch whose observations
land in the same :class:`~repro.service.metrics.Histogram` machinery the
request path already uses, so span durations show up in STATS and on
``/metrics`` as ``repro_span_duration_seconds{span="..."}`` next to the
request latencies they decompose.  The daemon instruments four spans:
``protocol_decode`` (frame body → request), ``coalesce_wait`` (enqueue →
dispatch, the latency the batcher *adds*), ``filter_execute`` (bulk
filter work on the worker thread) and ``snapshot_write``.

Two ways in: ``with span("name", sink): ...`` for a block, or
``@spanned("name")`` on a method of an object carrying a sink attribute
(sync or async).  A *sink* is either a callable ``(name, micros)`` or
anything with an ``observe_span`` method — :class:`ServiceMetrics` is
the usual one.  A ``None`` sink times but records nowhere, so
instrumented code never needs a metrics-is-enabled branch.
"""

from __future__ import annotations

import functools
import inspect
import time
from typing import Callable

__all__ = ["Span", "span", "spanned"]


def _as_sink(sink) -> Callable[[str, float], None] | None:
    if sink is None:
        return None
    observe = getattr(sink, "observe_span", None)
    if observe is not None:
        return observe
    if callable(sink):
        return sink
    raise TypeError(
        f"span sink must be callable or have .observe_span, got {type(sink).__name__}"
    )


class Span:
    """Context manager timing one block; see :func:`span`."""

    __slots__ = ("name", "_sink", "_started", "elapsed_us")

    def __init__(self, name: str, sink=None) -> None:
        self.name = name
        self._sink = _as_sink(sink)
        self._started: float | None = None
        #: Duration of the last completed block, microseconds.
        self.elapsed_us: float = 0.0

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._started is not None
        self.elapsed_us = (time.perf_counter() - self._started) * 1e6
        if self._sink is not None:
            self._sink(self.name, self.elapsed_us)
        return False  # exceptions propagate; the failed attempt is still timed


def span(name: str, sink=None) -> Span:
    """Time a ``with`` block and record its duration (µs) into ``sink``.

    >>> metrics_like = []
    >>> with span("demo", lambda n, us: metrics_like.append(n)):
    ...     pass
    >>> metrics_like
    ['demo']
    """
    return Span(name, sink)


def spanned(name: str, *, sink_attr: str = "metrics"):
    """Decorate a method so every call is timed as ``name``.

    The sink is resolved per call from ``getattr(self, sink_attr)``
    (``None`` is fine — the call is still timed, just unrecorded), so
    the decorator works on objects whose metrics registry is optional
    or attached after construction.  Supports sync and async methods.
    """

    def decorate(fn):
        if inspect.iscoroutinefunction(fn):

            @functools.wraps(fn)
            async def async_wrapper(self, *args, **kwargs):
                with span(name, getattr(self, sink_attr, None)):
                    return await fn(self, *args, **kwargs)

            return async_wrapper

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            with span(name, getattr(self, sink_attr, None)):
                return fn(self, *args, **kwargs)

        return wrapper

    return decorate
