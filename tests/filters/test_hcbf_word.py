"""Tests for the HCBF word — the paper's core data structure.

The key property: an HCBF word must behave exactly like an array of
``b1`` unbounded counters (bounded only by the shared hierarchy budget),
with the structural invariants of §III.B.1 holding after every
operation.  The hypothesis test drives random insert/delete sequences
against a plain-list reference model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    ConfigurationError,
    CounterUnderflowError,
    WordOverflowError,
)
from repro.filters.hcbf_word import HCBFWord, improved_first_level_size


class TestImprovedFirstLevelSize:
    def test_paper_example(self):
        # §III.B.3: w=16, k=3, n_max=2 → b1 = 16 − 6 = 10.
        assert improved_first_level_size(16, 3, 2) == 10

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            improved_first_level_size(16, 3, 5)  # b1 = 1 < k


class TestHCBFWordBasics:
    def test_construction(self):
        word = HCBFWord(64, 40)
        assert word.hierarchy_capacity_bits == 24
        assert word.hierarchy_bits_used == 0
        assert word.depth == 1
        assert word.level_sizes() == (40,)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            HCBFWord(64, 0)
        with pytest.raises(ConfigurationError):
            HCBFWord(64, 65)

    def test_single_insert(self):
        word = HCBFWord(64, 40)
        depth, _bits = word.insert_bit(5)
        assert depth == 1
        assert word.count(5) == 1
        assert word.query_bit(5)
        assert not word.query_bit(6)
        assert word.hierarchy_bits_used == 1
        word.check_invariants()

    def test_repeated_insert_deepens_counter(self):
        word = HCBFWord(64, 40)
        for expected_depth in (1, 2, 3, 4):
            depth, _ = word.insert_bit(7)
            assert depth == expected_depth
        assert word.count(7) == 4
        assert word.hierarchy_bits_used == 4
        word.check_invariants()

    def test_paper_fig3_example(self):
        # Fig. 3(a): w=16, b1=8, insert x0 at {0,2,4} then x5 at {7,4,2}.
        word = HCBFWord(16, 8)
        for pos in (0, 2, 4):
            word.insert_bit(pos)
        assert word.level_sizes() == (8, 3)
        for pos in (7, 4, 2):
            word.insert_bit(pos)
        # After x5: level 2 has 4 slots, level 3 has 2 (bits 2 and 4 now
        # have counter 2).
        assert word.level_sizes() == (8, 4, 2)
        assert word.count(0) == 1
        assert word.count(2) == 2
        assert word.count(4) == 2
        assert word.count(7) == 1
        word.check_invariants()

    def test_delete_reverses_insert(self):
        word = HCBFWord(64, 40)
        word.insert_bit(3)
        word.insert_bit(3)
        remaining, _ = word.delete_bit(3)
        assert remaining == 1
        assert word.count(3) == 1
        remaining, _ = word.delete_bit(3)
        assert remaining == 0
        assert not word.query_bit(3)
        assert word.hierarchy_bits_used == 0
        assert word.depth == 1
        word.check_invariants()

    def test_delete_absent_raises(self):
        word = HCBFWord(64, 40)
        with pytest.raises(CounterUnderflowError):
            word.delete_bit(3)

    def test_overflow(self):
        word = HCBFWord(16, 12)  # 4 hierarchy bits
        for pos in range(4):
            word.insert_bit(pos)
        assert word.bits_free == 0
        with pytest.raises(WordOverflowError):
            word.insert_bit(5)
        # The failed insert must not have altered anything.
        word.check_invariants()
        assert word.hierarchy_bits_used == 4

    def test_position_bounds(self):
        word = HCBFWord(64, 40)
        with pytest.raises(ValueError):
            word.insert_bit(40)
        with pytest.raises(ValueError):
            word.count(-1)

    def test_interleaved_counters_stay_independent(self):
        word = HCBFWord(128, 64)
        word.insert_bit(10)
        word.insert_bit(20)
        word.insert_bit(10)
        word.insert_bit(30)
        word.insert_bit(20)
        word.insert_bit(10)
        assert word.count(10) == 3
        assert word.count(20) == 2
        assert word.count(30) == 1
        assert word.count(11) == 0
        word.delete_bit(20)
        assert word.count(20) == 1
        assert word.count(10) == 3  # neighbours untouched
        assert word.count(30) == 1
        word.check_invariants()

    def test_first_level_value_matches_queries(self):
        word = HCBFWord(64, 32)
        for pos in (0, 5, 31):
            word.insert_bit(pos)
        value = word.first_level_value()
        for pos in range(32):
            assert bool((value >> pos) & 1) == word.query_bit(pos)

    def test_stored_hashes_tracks_insertions(self):
        word = HCBFWord(64, 40)
        for i in range(6):
            word.insert_bit(i % 3)
        assert word.stored_hashes == 6
        word.delete_bit(0)
        assert word.stored_hashes == 5


class _ReferenceCounters:
    """Plain-list counter model used as the hypothesis oracle."""

    def __init__(self, size: int, budget: int) -> None:
        self.counts = [0] * size
        self.budget = budget

    @property
    def used(self) -> int:
        return sum(self.counts)

    def insert(self, pos: int) -> int:
        if self.used >= self.budget:
            raise WordOverflowError(0, self.budget)
        self.counts[pos] += 1
        return self.counts[pos]

    def delete(self, pos: int) -> int:
        if self.counts[pos] == 0:
            raise CounterUnderflowError(pos)
        self.counts[pos] -= 1
        return self.counts[pos]


@st.composite
def _operations(draw):
    b1 = draw(st.integers(4, 48))
    budget = draw(st.integers(1, 40))
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, b1 - 1)),
            max_size=120,
        )
    )
    return b1, budget, ops


class TestHCBFWordProperties:
    @settings(max_examples=300, deadline=None)
    @given(_operations())
    def test_matches_reference_counters(self, scenario):
        b1, budget, ops = scenario
        word = HCBFWord(b1 + budget, b1)
        ref = _ReferenceCounters(b1, budget)
        for op, pos in ops:
            if op == "insert":
                try:
                    expected = ref.insert(pos)
                except WordOverflowError:
                    with pytest.raises(WordOverflowError):
                        word.insert_bit(pos)
                    continue
                depth, _ = word.insert_bit(pos)
                assert depth == expected
            else:
                try:
                    expected = ref.delete(pos)
                except CounterUnderflowError:
                    with pytest.raises(CounterUnderflowError):
                        word.delete_bit(pos)
                    continue
                remaining, _ = word.delete_bit(pos)
                assert remaining == expected
            word.check_invariants()
            assert word.hierarchy_bits_used == ref.used
            # Full counter state must match the oracle.
            for p in range(b1):
                assert word.count(p) == ref.counts[p], (
                    f"counter {p} diverged after {op}@{pos}"
                )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 19), min_size=1, max_size=30))
    def test_insert_then_delete_everything_restores_empty(self, positions):
        word = HCBFWord(20 + len(positions), 20)
        for pos in positions:
            word.insert_bit(pos)
        for pos in reversed(positions):
            word.delete_bit(pos)
        assert word.hierarchy_bits_used == 0
        assert word.depth == 1
        assert word.first_level_value() == 0
        word.check_invariants()
