"""CAIDA-like IPv4 flow trace generator (§IV.D substitution).

The paper replays anonymised Equinix-Chicago 2011 backbone traces:
5,585,633 IPv4 flow observations over 292,363 unique flows (a flow is
the 2-tuple of source and destination address), inserts 200K randomly
chosen unique flows into the filters, and feeds the whole observation
stream as the query set.  We cannot redistribute CAIDA data, so this
module synthesises a trace with the same *shape*: per-flow observation
counts drawn from a Zipf-like power law calibrated to reproduce the
total/unique ratio (~19.1 observations per flow on average, heavy
tail), with uniformly random distinct address pairs.

What matters for the reproduced figures is only (a) the key
multiplicity distribution of the query stream (it weights per-key FPR
and access counts) and (b) the member/non-member mix — both preserved
here.  See DESIGN.md, substitution #1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.encoders import encode_flow_arrays

__all__ = ["FlowTrace", "make_trace_workload"]

#: Scale of the real CAIDA trace used in the paper.
PAPER_TOTAL_FLOWS = 5_585_633
PAPER_UNIQUE_FLOWS = 292_363
PAPER_INSERTED_FLOWS = 200_000


@dataclass
class FlowTrace:
    """A synthetic flow trace and its filter workload roles.

    Attributes
    ----------
    flows:
        ``(unique, 2)`` uint32 array of distinct (src, dst) pairs.
    stream:
        Indices into ``flows`` for every observation, in arrival order.
    members_mask:
        Which unique flows are inserted into the filters.
    """

    flows: np.ndarray
    stream: np.ndarray
    members_mask: np.ndarray
    seed: int

    @property
    def n_unique(self) -> int:
        return len(self.flows)

    @property
    def n_observations(self) -> int:
        return len(self.stream)

    def encoded_flows(self) -> np.ndarray:
        """Encoded unique flows (uint64)."""
        return encode_flow_arrays(self.flows[:, 0], self.flows[:, 1])

    def member_keys(self) -> np.ndarray:
        """Encoded keys of the inserted flows."""
        return self.encoded_flows()[self.members_mask]

    def query_keys(self) -> np.ndarray:
        """Encoded keys of the full observation stream (the query set)."""
        return self.encoded_flows()[self.stream]

    def query_is_member(self) -> np.ndarray:
        """Ground-truth membership of every observation."""
        return self.members_mask[self.stream]


def _power_law_counts(
    n_unique: int, total: int, rng: np.random.Generator, alpha: float
) -> np.ndarray:
    """Integer per-flow counts ≥ 1 summing to ``total``, Zipf-ish tail."""
    ranks = np.arange(1, n_unique + 1, dtype=float)
    weights = ranks**-alpha
    weights /= weights.sum()
    extra = total - n_unique  # every flow appears at least once
    counts = np.ones(n_unique, dtype=np.int64)
    if extra > 0:
        counts += rng.multinomial(extra, weights)
    rng.shuffle(counts)
    return counts


def make_trace_workload(
    *,
    n_unique: int = PAPER_UNIQUE_FLOWS,
    n_observations: int = PAPER_TOTAL_FLOWS,
    n_inserted: int = PAPER_INSERTED_FLOWS,
    alpha: float = 1.1,
    seed: int = 0,
) -> FlowTrace:
    """Build a CAIDA-shaped flow trace.

    Defaults match the paper's trace exactly in unique/total/inserted
    counts; pass smaller values for quick runs (the ratios are what
    matter, so scale all three together).
    """
    if n_inserted > n_unique:
        raise ConfigurationError(
            f"n_inserted={n_inserted} exceeds n_unique={n_unique}"
        )
    if n_observations < n_unique:
        raise ConfigurationError(
            f"n_observations={n_observations} < n_unique={n_unique}"
        )
    rng = np.random.default_rng(seed)
    # Distinct (src, dst) pairs: draw 64-bit packed values, dedupe with
    # top-up rounds (collisions are ~birthday-rare at 2^64).
    packed = np.unique(rng.integers(0, 2**63, size=n_unique, dtype=np.int64))
    while len(packed) < n_unique:
        extra = rng.integers(0, 2**63, size=n_unique, dtype=np.int64)
        packed = np.unique(np.concatenate([packed, extra]))
    packed = packed[:n_unique].astype(np.uint64)
    rng.shuffle(packed)
    src = (packed >> np.uint64(32)).astype(np.uint32)
    dst = (packed & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    flows = np.stack([src, dst], axis=1)
    counts = _power_law_counts(n_unique, n_observations, rng, alpha)
    stream = np.repeat(np.arange(n_unique, dtype=np.int64), counts)
    rng.shuffle(stream)
    members_mask = np.zeros(n_unique, dtype=bool)
    members_mask[rng.choice(n_unique, size=n_inserted, replace=False)] = True
    return FlowTrace(flows=flows, stream=stream, members_mask=members_mask, seed=seed)
