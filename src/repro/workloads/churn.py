"""Long-run churn driver: sustained insert/delete cycles over epochs.

The paper's update period (delete 20%, insert 20%, once) is a single
churn step.  Real deployments — flow tables, cache summaries — churn
*continuously*, and that changes the failure analysis: the Eq. 11 bound
controls a single occupancy snapshot, but over many epochs a word's
occupancy performs a random walk and the probability that it *ever*
crosses ``n_max`` grows with time (a first-passage event).  The library
surfaced this in practice (see ``examples/dynamic_cache_sharing.py``);
this module makes the phenomenon measurable:

* :func:`run_churn` drives a counting filter through ``epochs`` steps
  of delete-`rate`/insert-`rate` at a constant population, recording
  the FPR and (for MPCBF) saturation state after each epoch.
* :func:`first_saturation_epoch` reports when the first word overflow
  happened, the statistic that quantifies how conservative ``n_max``
  must be for a given deployment lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import CountingFilterBase
from repro.filters.mpcbf import MPCBF
from repro.hashing.mixers import splitmix64_array

__all__ = ["ChurnResult", "run_churn", "first_saturation_epoch"]


@dataclass
class ChurnResult:
    """Per-epoch trajectory of one churn run."""

    epochs: int
    population: int
    churn_per_epoch: int
    fpr_by_epoch: list[float] = field(default_factory=list)
    saturated_words_by_epoch: list[int] = field(default_factory=list)
    skipped_deletes: int = 0

    @property
    def final_fpr(self) -> float:
        return self.fpr_by_epoch[-1] if self.fpr_by_epoch else 0.0

    @property
    def ever_saturated(self) -> bool:
        return any(self.saturated_words_by_epoch)


def _fresh_keys(counter: int, count: int) -> tuple[np.ndarray, int]:
    """``count`` never-before-used encoded keys from a running counter."""
    keys = splitmix64_array(
        np.arange(counter, counter + count, dtype=np.uint64)
    )
    return keys, counter + count


def run_churn(
    filter_obj: CountingFilterBase,
    *,
    population: int,
    churn_fraction: float = 0.2,
    epochs: int = 20,
    probe_count: int = 20_000,
    seed: int = 0,
) -> ChurnResult:
    """Drive a filter through sustained churn at constant population.

    Each epoch deletes ``churn_fraction`` of the live set (uniformly at
    random) and inserts the same number of fresh keys, then measures
    the FPR against never-inserted probes.  For MPCBF the per-epoch
    count of saturated words is recorded (0 under the ``raise`` policy
    — it would have thrown instead).
    """
    if not 0.0 < churn_fraction <= 1.0:
        raise ConfigurationError(
            f"churn_fraction must be in (0, 1], got {churn_fraction}"
        )
    rng = np.random.default_rng(seed)
    key_counter = 1
    live, key_counter = _fresh_keys(key_counter, population)
    filter_obj.insert_many(live)
    # Probes come from a disjoint stretch of the key space.
    probes = splitmix64_array(
        np.arange(2**48, 2**48 + probe_count, dtype=np.uint64)
    )
    result = ChurnResult(
        epochs=epochs,
        population=population,
        churn_per_epoch=int(round(churn_fraction * population)),
    )
    for _ in range(epochs):
        n_churn = result.churn_per_epoch
        victims_idx = rng.choice(len(live), size=n_churn, replace=False)
        victims = live[victims_idx]
        filter_obj.delete_many(victims)
        fresh, key_counter = _fresh_keys(key_counter, n_churn)
        filter_obj.insert_many(fresh)
        live = np.concatenate([np.delete(live, victims_idx), fresh])
        result.fpr_by_epoch.append(
            float(filter_obj.query_many(probes).mean())
        )
        if isinstance(filter_obj, MPCBF):
            result.saturated_words_by_epoch.append(len(filter_obj._saturated))
    if isinstance(filter_obj, MPCBF):
        result.skipped_deletes = filter_obj.skipped_deletes
    return result


def first_saturation_epoch(result: ChurnResult) -> int | None:
    """Epoch index of the first word saturation, or None if none."""
    for epoch, count in enumerate(result.saturated_words_by_epoch):
        if count > 0:
            return epoch
    return None
