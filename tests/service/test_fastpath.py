"""Columnar fastpath acceptance: negotiation, differential oracle.

The bulk64 wire path must be an *optimisation*, never a semantic fork:
a workload driven entirely over BULK64 frames, entirely over legacy
frames, or mixed across both on one server must leave byte-identical
filter state and give identical answers.  Client-side key encoding
makes that non-trivial — the tests here pin that the client's encoder
agrees with the server's, end to end over a real socket.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.filters.factory import FilterSpec, build_filter
from repro.parallel.sharded import ShardedFilterBank
from repro.service.client import AsyncFilterClient, FilterClient
from repro.service.protocol import FEATURE_BULK64, PROTOCOL_VERSION_BULK64
from repro.service.server import FilterServer
from repro.service.snapshot import snapshot_bytes


def make_bank(num_shards=4, seed=11):
    spec = FilterSpec(
        variant="MPCBF-1",
        memory_bits=64 * 8192,
        k=3,
        capacity=4000,
        seed=seed,
        extra={"word_overflow": "saturate"},
    )
    return ShardedFilterBank(spec, num_shards)


async def start_server(filt, **kwargs) -> FilterServer:
    server = FilterServer(filt, port=0, **kwargs)
    await server.start()
    return server


def run(coro):
    return asyncio.run(coro)


KEYS = [b"fp-key-%d" % i for i in range(200)]
DEAD = KEYS[150:]
ABSENT = [b"fp-missing-%d" % i for i in range(200)]


class TestNegotiation:
    def test_hello_reports_bulk64(self):
        async def main():
            server = await start_server(make_bank())
            try:
                with FilterClient(port=server.port) as client:
                    version, features = await asyncio.to_thread(client.hello)
                    supported = await asyncio.to_thread(client.bulk64_supported)
            finally:
                await server.stop()
            return version, features, supported

        version, features, supported = run(main())
        assert version == PROTOCOL_VERSION_BULK64
        assert features & FEATURE_BULK64
        assert supported

    def test_async_hello_reports_bulk64(self):
        async def main():
            server = await start_server(make_bank())
            try:
                async with AsyncFilterClient(port=server.port) as client:
                    version, features = await client.hello()
                    supported = await client.bulk64_supported()
            finally:
                await server.stop()
            return version, features, supported

        version, features, supported = run(main())
        assert version == PROTOCOL_VERSION_BULK64
        assert features & FEATURE_BULK64
        assert supported

    def test_downgrade_falls_back_to_legacy_frames(self):
        """A client that negotiated no bulk64 still serves byte keys."""

        async def main():
            server = await start_server(make_bank())
            try:
                with FilterClient(port=server.port) as client:
                    client._bulk64 = False  # simulate a v1-only server
                    await asyncio.to_thread(client.insert_many64, KEYS[:10])
                    hits = await asyncio.to_thread(
                        client.query_many64, KEYS[:10]
                    )
            finally:
                await server.stop()
            return hits

        assert np.asarray(run(main()), dtype=bool).all()

    def test_downgrade_rejects_preencoded_columns(self):
        """u64 columns cannot be replayed as byte keys — fail loudly."""

        async def main():
            server = await start_server(make_bank())
            try:
                with FilterClient(port=server.port) as client:
                    client._bulk64 = False
                    column = np.arange(4, dtype=np.uint64)
                    try:
                        await asyncio.to_thread(client.insert_many64, column)
                    except UnsupportedOperationError:
                        return True
                    return False
            finally:
                await server.stop()

        assert run(main())


class TestDifferentialOracle:
    """Same workload, different wire paths, identical filter state."""

    def _drive_legacy(self, port):
        with FilterClient(port=port) as client:
            client.insert_many(KEYS)
            client.insert_many(KEYS[:50])  # duplicates: counter depth
            client.delete_many(DEAD)
            members = client.query_many(KEYS[:150])
            ghosts = client.query_many(ABSENT)
        return np.asarray(members, bool), np.asarray(ghosts, bool)

    def _drive_bulk64(self, port):
        with FilterClient(port=port) as client:
            assert client.bulk64_supported()
            client.insert_many64(KEYS)
            client.insert_many64(KEYS[:50])
            client.delete_many64(DEAD)
            members = client.query_many64(KEYS[:150])
            ghosts = client.query_many64(ABSENT)
        return np.asarray(members, bool), np.asarray(ghosts, bool)

    def test_bulk64_and_legacy_state_byte_identical(self):
        async def main():
            legacy_server = await start_server(make_bank())
            bulk_server = await start_server(make_bank())
            try:
                legacy = await asyncio.to_thread(
                    self._drive_legacy, legacy_server.port
                )
                bulk = await asyncio.to_thread(
                    self._drive_bulk64, bulk_server.port
                )
                blobs = (
                    snapshot_bytes(legacy_server.filter),
                    snapshot_bytes(bulk_server.filter),
                )
                stats = await asyncio.to_thread(
                    lambda: FilterClient(port=bulk_server.port).stats()
                )
            finally:
                await legacy_server.stop()
                await bulk_server.stop()
            return legacy, bulk, blobs, stats

        (legacy, bulk, (legacy_blob, bulk_blob), stats) = run(main())
        assert np.array_equal(legacy[0], bulk[0])
        assert np.array_equal(legacy[1], bulk[1])
        assert legacy[0].all()  # no false negatives on either path
        assert legacy_blob == bulk_blob  # zero state divergence
        assert stats["fastpath"]["frames"] > 0
        assert stats["fastpath"]["keys"] >= len(KEYS)

    def test_mixed_clients_one_server_match_legacy_oracle(self):
        """Legacy and bulk64 clients interleaved on one server converge
        on the same state a legacy-only server reaches."""

        async def main():
            mixed_server = await start_server(make_bank())
            oracle_server = await start_server(make_bank())
            try:
                def mixed_traffic(port):
                    with FilterClient(port=port) as legacy_client, \
                            FilterClient(port=port) as bulk_client:
                        legacy_client.insert_many(KEYS[:100])
                        bulk_client.insert_many64(KEYS[100:])
                        bulk_client.delete_many64(DEAD[:25])
                        legacy_client.delete_many(DEAD[25:])
                        a = legacy_client.query_many(KEYS[:150])
                        b = bulk_client.query_many64(KEYS[:150])
                    return np.asarray(a, bool), np.asarray(b, bool)

                def oracle_traffic(port):
                    with FilterClient(port=port) as client:
                        client.insert_many(KEYS)
                        client.delete_many(DEAD)
                        return np.asarray(client.query_many(KEYS[:150]), bool)

                mixed = await asyncio.to_thread(
                    mixed_traffic, mixed_server.port
                )
                oracle = await asyncio.to_thread(
                    oracle_traffic, oracle_server.port
                )
                blobs = (
                    snapshot_bytes(mixed_server.filter),
                    snapshot_bytes(oracle_server.filter),
                )
            finally:
                await mixed_server.stop()
                await oracle_server.stop()
            return mixed, oracle, blobs

        (legacy_view, bulk_view), oracle, (mixed_blob, oracle_blob) = run(
            main()
        )
        assert np.array_equal(legacy_view, bulk_view)
        assert np.array_equal(legacy_view, oracle)
        assert mixed_blob == oracle_blob

    def test_count_many64_tracks_multiplicity(self):
        async def main():
            filt = build_filter(
                FilterSpec(
                    variant="CBF",
                    memory_bits=64 * 4096,
                    k=3,
                    capacity=2000,
                    seed=5,
                )
            )
            server = await start_server(filt)
            try:
                def traffic(port):
                    with FilterClient(port=port) as client:
                        client.insert_many64(KEYS[:20])
                        client.insert_many64(KEYS[:10])
                        client.insert_many64(KEYS[:5])
                        return client.count_many64(KEYS[:20] + ABSENT[:5])

                counts = await asyncio.to_thread(traffic, server.port)
            finally:
                await server.stop()
            return counts

        counts = np.asarray(run(main()), dtype=np.uint64)
        # CBF count estimates never under-count.
        assert (counts[:5] >= 3).all()
        assert (counts[5:10] >= 2).all()
        assert (counts[10:20] >= 1).all()

    def test_async_bulk64_round_trip(self):
        async def main():
            server = await start_server(make_bank())
            try:
                async with AsyncFilterClient(port=server.port) as client:
                    await client.insert_many64(KEYS[:40])
                    await client.delete_many64(KEYS[30:40])
                    hits = await client.query_many64(KEYS[:30])
            finally:
                await server.stop()
            return hits

        assert np.asarray(run(main()), bool).all()
