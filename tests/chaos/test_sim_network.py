"""SimNetwork: in-memory streams with injectable faults."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.chaos import SimEventLoop, SimNetwork


def run_sim(coro):
    loop = SimEventLoop()
    try:
        result = loop.run_until_complete(coro)
        # Retire leftover server handlers before closing the loop.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        return result
    finally:
        loop.close()


async def start_echo(net: SimNetwork, name: str = "server"):
    """An echo server on <name>:1 that also counts its connections."""
    state = {"conns": 0}

    async def handler(reader, writer):
        state["conns"] += 1
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await net.endpoint(name).start_server(handler, name, 1)
    return server, state


class TestConnectivity:
    def test_echo_roundtrip(self):
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            writer.write(b"hello")
            await writer.drain()
            echoed = await reader.readexactly(5)
            writer.close()
            return echoed

        assert run_sim(main()) == b"hello"

    def test_dial_unknown_endpoint_refused(self):
        async def main():
            net = SimNetwork()
            with pytest.raises(ConnectionRefusedError):
                await net.endpoint("client").open_connection("nowhere", 1)

        run_sim(main())

    def test_graceful_close_delivers_eof_not_reset(self):
        # FIN semantics: data queued before close still arrives, then a
        # clean EOF — the peer's read() returns b"", it does not raise.
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            writer.write(b"bye")
            await writer.drain()
            echoed = await reader.readexactly(3)
            writer.close()
            await writer.wait_closed()
            return echoed

        assert run_sim(main()) == b"bye"

    def test_delay_is_simulated_time(self):
        async def main():
            net = SimNetwork(default_delay_s=0.5)
            await start_echo(net, "server")
            loop = asyncio.get_running_loop()
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            started = loop.time()
            writer.write(b"x")
            await writer.drain()
            await reader.readexactly(1)
            elapsed = loop.time() - started
            writer.close()
            return elapsed

        # One client->server hop plus one server->client hop.
        assert run_sim(main()) >= 1.0


class TestFaults:
    def test_partition_refuses_new_dials_until_heal(self):
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            net.partition("client", "server")
            with pytest.raises(ConnectionRefusedError):
                await net.endpoint("client").open_connection("server", 1)
            net.heal("client", "server")
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            writer.write(b"ok")
            await writer.drain()
            echoed = await reader.readexactly(2)
            writer.close()
            return echoed

        assert run_sim(main()) == b"ok"

    def test_partition_stalls_inflight_data_heal_releases_it(self):
        # Chunks sent into a partition are parked, not lost: TCP would
        # retransmit, so the sim must deliver them after the heal.
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            net.partition("client", "server")
            writer.write(b"parked")
            await writer.drain()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(reader.readexactly(6), timeout=5.0)
            net.heal_all()
            echoed = await asyncio.wait_for(reader.readexactly(6), timeout=5.0)
            writer.close()
            return echoed

        assert run_sim(main()) == b"parked"

    def test_reset_endpoint_poisons_open_connections(self):
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            assert net.connections_of("server") == 1
            killed = net.reset_endpoint("server")
            assert killed == 1
            with pytest.raises(ConnectionResetError):
                await reader.readexactly(1)

        run_sim(main())

    def test_drop_all_loses_chunks(self):
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            net.set_link_faults(
                "client", "server", drop=1.0, rng=random.Random(1)
            )
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            writer.write(b"gone")
            await writer.drain()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(reader.readexactly(4), timeout=5.0)
            writer.close()

        run_sim(main())

    def test_duplicate_delivers_twice(self):
        async def main():
            net = SimNetwork()
            await start_echo(net, "server")
            net.set_link_faults(
                "client", "server", duplicate=1.0, rng=random.Random(1)
            )
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            writer.write(b"AB")
            await writer.drain()
            echoed = await asyncio.wait_for(reader.readexactly(4), timeout=5.0)
            writer.close()
            return echoed

        assert run_sim(main()) == b"ABAB"


class TestDeterminism:
    def test_identical_seeds_identical_transcript(self):
        async def scenario():
            net = SimNetwork()
            await start_echo(net, "server")
            net.set_link_faults(
                "client",
                "server",
                drop=0.3,
                duplicate=0.2,
                reorder=0.05,
                rng=random.Random(99),
            )
            reader, writer = await net.endpoint("client").open_connection(
                "server", 1
            )
            for i in range(20):
                writer.write(b"%02d" % i)
            await writer.drain()
            writer.close()
            got = bytearray()
            try:
                while True:
                    chunk = await asyncio.wait_for(
                        reader.read(4096), timeout=2.0
                    )
                    if not chunk:
                        break
                    got.extend(chunk)
            except asyncio.TimeoutError:
                pass
            return bytes(got)

        first = run_sim(scenario())
        second = run_sim(scenario())
        assert first == second
