"""Sharded filter bank: hash-routed parallel filters.

A :class:`ShardedFilterBank` splits one logical set across ``s``
independent filter shards.  Keys route to shards by an independent
hash (never one of the shards' own hashes, so routing does not bias
the per-shard distributions), exactly how multi-pipeline packet
processors spread flow state across per-port filters.

Bulk operations are vectorised end-to-end: the whole key batch is
routed, stably grouped by shard with one ``argsort``, handed to each
shard's own bulk path, and results scattered back into input order.
Shard execution can optionally run on a thread pool
(``max_workers > 1``).  Measure before enabling it: NumPy's gathers do
release the GIL, but at the batch sizes typical here the Python-side
orchestration dominates and threads add overhead (a 2M-probe bulk query
over 8 MPCBF shards measures ~2× *slower* at ``max_workers=4`` on
CPython 3.11).  The option exists for deployments with genuinely heavy
per-shard kernels and for free-threaded Python builds; the default is
sequential.

Semantics are identical to a single filter of ``s``× the memory with
the caveat that per-shard load imbalance (binomial, like the words of
an MPCBF) slightly raises the effective load of the fullest shard.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.filters.base import CountingFilterBase, FilterBase
from repro.filters.factory import FilterSpec, build_filter
from repro.hashing.encoders import KeyEncoder
from repro.hashing.mixers import derive_seeds, splitmix64, splitmix64_array
from repro.memmodel.accounting import AccessStats

__all__ = ["ShardedFilterBank"]


class ShardedFilterBank:
    """``s`` hash-routed filter shards behaving as one filter.

    Parameters
    ----------
    spec:
        Per-shard filter specification (each shard gets ``spec`` with a
        distinct derived seed; ``spec.memory_bits`` is the *per-shard*
        budget).
    num_shards:
        Number of shards ``s``.
    max_workers:
        Thread-pool width for bulk operations; ``1`` (default) runs
        shards sequentially.
    """

    def __init__(
        self,
        spec: FilterSpec,
        num_shards: int,
        *,
        max_workers: int = 1,
        encoder: KeyEncoder | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        self.spec = spec
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.encoder = encoder or KeyEncoder()
        seeds = derive_seeds(spec.seed ^ 0x5348415244, num_shards + 1)
        self._route_seed = seeds[0]
        self.shards: list[FilterBase] = []
        for i in range(num_shards):
            shard_spec = FilterSpec(
                variant=spec.variant,
                memory_bits=spec.memory_bits,
                k=spec.k,
                word_bits=spec.word_bits,
                counter_bits=spec.counter_bits,
                capacity=(
                    max(1, spec.capacity // num_shards)
                    if spec.capacity is not None
                    else None
                ),
                n_max=spec.n_max,
                seed=seeds[i + 1],
                extra=dict(spec.extra),
            )
            self.shards.append(build_filter(shard_spec, encoder=self.encoder))
        self.name = f"{self.shards[0].name}x{num_shards}"

    # -- sizing ----------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Aggregate memory across shards."""
        return sum(shard.total_bits for shard in self.shards)

    @property
    def num_hashes(self) -> int:
        return self.shards[0].num_hashes

    @property
    def supports_deletion(self) -> bool:
        return isinstance(self.shards[0], CountingFilterBase)

    # -- routing ----------------------------------------------------------
    def shard_of(self, key: object) -> int:
        """Shard index a key routes to."""
        encoded = self.encoder.encode(key)
        return splitmix64(encoded ^ self._route_seed) % self.num_shards

    def _route_array(self, encoded: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = splitmix64_array(encoded ^ np.uint64(self._route_seed))
        return (mixed % np.uint64(self.num_shards)).astype(np.int64)

    def _encode_bulk(self, keys: object) -> np.ndarray:
        if isinstance(keys, np.ndarray) and keys.dtype == np.uint64:
            return keys
        return self.encoder.encode_many(keys)

    # -- scalar API ---------------------------------------------------------
    def insert(self, key: object) -> None:
        """Insert one key into its shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        self.shards[shard].insert_encoded(encoded)

    def query(self, key: object) -> bool:
        """Query one key against its shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        return self.shards[shard].query_encoded(encoded)

    def __contains__(self, key: object) -> bool:
        return self.query(key)

    def delete(self, key: object) -> None:
        """Delete one key from its shard (counting variants only)."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        filt = self.shards[shard]
        if not isinstance(filt, CountingFilterBase):
            raise UnsupportedOperationError(f"{self.name} cannot delete")
        filt.delete_encoded(encoded)

    def count(self, key: object) -> int:
        """Multiplicity estimate from the owning shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        filt = self.shards[shard]
        if not isinstance(filt, CountingFilterBase):
            raise UnsupportedOperationError(f"{self.name} cannot count")
        return filt.count_encoded(encoded)

    # -- bulk API -------------------------------------------------------------
    def _dispatch(
        self,
        encoded: np.ndarray,
        op: Callable[[FilterBase, np.ndarray], np.ndarray | None],
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Group keys by shard, run ``op`` per shard (maybe threaded).

        Returns ``(positions, result)`` per shard, where ``positions``
        are the original indices of that shard's keys.
        """
        routes = self._route_array(encoded)
        order = np.argsort(routes, kind="stable")
        sorted_routes = routes[order]
        bounds = np.searchsorted(
            sorted_routes, np.arange(self.num_shards + 1)
        )
        jobs = []
        for shard_index in range(self.num_shards):
            lo, hi = bounds[shard_index], bounds[shard_index + 1]
            if lo == hi:
                continue
            positions = order[lo:hi]
            jobs.append((shard_index, positions, encoded[positions]))
        if self.max_workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    (positions, pool.submit(op, self.shards[i], chunk))
                    for i, positions, chunk in jobs
                ]
                return [(pos, fut.result()) for pos, fut in futures]
        return [
            (positions, op(self.shards[i], chunk))
            for i, positions, chunk in jobs
        ]

    def insert_many(self, keys: object) -> None:
        """Bulk insert, routed and executed per shard."""
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        self._dispatch(encoded, lambda filt, chunk: filt.insert_many(chunk))

    def delete_many(self, keys: object) -> None:
        """Bulk delete (counting variants only)."""
        if not self.supports_deletion:
            raise UnsupportedOperationError(f"{self.name} cannot delete")
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        self._dispatch(encoded, lambda filt, chunk: filt.delete_many(chunk))

    def query_many(self, keys: object) -> np.ndarray:
        """Bulk query; results in input order."""
        encoded = self._encode_bulk(keys)
        result = np.zeros(len(encoded), dtype=bool)
        if len(encoded) == 0:
            return result
        for positions, answers in self._dispatch(
            encoded, lambda filt, chunk: filt.query_many(chunk)
        ):
            result[positions] = answers
        return result

    # -- stats -----------------------------------------------------------------
    @property
    def stats(self) -> AccessStats:
        """Aggregated access statistics across shards."""
        combined = AccessStats()
        for shard in self.shards:
            combined.merge(shard.stats)
        return combined

    def reset_stats(self) -> None:
        for shard in self.shards:
            shard.reset_stats()

    def shard_loads(self, keys: Sequence) -> np.ndarray:
        """Histogram of how a key batch routes across shards."""
        encoded = self._encode_bulk(keys)
        return np.bincount(self._route_array(encoded), minlength=self.num_shards)

    def __repr__(self) -> str:
        return (
            f"<ShardedFilterBank {self.name} shards={self.num_shards} "
            f"bits={self.total_bits}>"
        )
