"""Tests for filter serialisation round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters import (
    BloomFilter,
    CountingBloomFilter,
    DLeftCBF,
    MPCBF,
    OneAccessBloomFilter,
    PartitionedCBF,
    SpectralBloomFilter,
    VariableIncrementCBF,
)
from repro.serialize import (
    dump_bank,
    dump_filter,
    load_bank,
    load_filter,
    serialized_size,
)


def _fill(filt, n=300):
    keys = [f"ser-{i}" for i in range(n)]
    filt.insert_many(keys)
    return keys


def _assert_equivalent(original, restored, keys):
    probes = [f"probe-{i}" for i in range(2000)]
    np.testing.assert_array_equal(
        original.query_many(keys), restored.query_many(keys)
    )
    np.testing.assert_array_equal(
        original.query_many(probes), restored.query_many(probes)
    )


class TestRoundTrips:
    def test_bloom(self):
        bf = BloomFilter(4096, 3, seed=7)
        keys = _fill(bf)
        restored = load_filter(dump_filter(bf))
        _assert_equivalent(bf, restored, keys)

    def test_cbf(self):
        cbf = CountingBloomFilter(4096, 3, seed=7)
        keys = _fill(cbf)
        restored = load_filter(dump_filter(cbf))
        _assert_equivalent(cbf, restored, keys)
        # Counting state survives too.
        assert restored.count(keys[0]) == cbf.count(keys[0])
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_pcbf(self):
        pcbf = PartitionedCBF(128, 64, 3, g=2, seed=7)
        keys = _fill(pcbf)
        restored = load_filter(dump_filter(pcbf))
        _assert_equivalent(pcbf, restored, keys)
        np.testing.assert_array_equal(restored.counters, pcbf.counters)

    def test_vicbf(self):
        vi = VariableIncrementCBF(4096, 3, seed=7)
        keys = _fill(vi)
        restored = load_filter(dump_filter(vi))
        _assert_equivalent(vi, restored, keys)

    def test_mpcbf(self):
        mp = MPCBF(256, 64, 3, capacity=300, seed=7)
        keys = _fill(mp)
        restored = load_filter(dump_filter(mp))
        _assert_equivalent(mp, restored, keys)
        restored.check_invariants()
        # Hierarchy state survives: deletions still work.
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_mpcbf_with_saturated_words(self):
        mp = MPCBF(1, 64, 3, n_max=2, word_overflow="saturate", seed=1)
        keys = [f"s{i}" for i in range(8)]
        for key in keys:
            mp.insert(key)
        assert mp.overflow_events > 0
        restored = load_filter(dump_filter(mp))
        restored.check_invariants()
        assert all(restored.query(k) for k in keys)

    def test_byte_identical_reserialisation(self):
        cbf = CountingBloomFilter(1024, 3, seed=2)
        _fill(cbf, 50)
        blob = dump_filter(cbf)
        assert dump_filter(load_filter(blob)) == blob

    def test_one_access_bf(self):
        bf1 = OneAccessBloomFilter(256, 64, 3, g=1, seed=7)
        keys = _fill(bf1)
        restored = load_filter(dump_filter(bf1))
        _assert_equivalent(bf1, restored, keys)
        # Scalar path (WordMemory) and bulk path (mirror) both restored.
        assert all(restored.query(k) for k in keys[:20])

    def test_one_access_bf_g_multiword(self):
        bfg = OneAccessBloomFilter(64, 128, 6, g=3, seed=9)
        keys = _fill(bfg)
        restored = load_filter(dump_filter(bfg))
        _assert_equivalent(bfg, restored, keys)
        assert dump_filter(restored) == dump_filter(bfg)

    def test_dlcbf(self):
        dl = DLeftCBF(256, seed=4)
        keys = _fill(dl)
        restored = load_filter(dump_filter(dl))
        _assert_equivalent(dl, restored, keys)
        assert restored.count(keys[0]) == dl.count(keys[0])
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_spectral(self):
        sbf = SpectralBloomFilter(4096, 3, seed=6)
        keys = _fill(sbf)
        sbf.insert(keys[0])  # multiplicity 2 exercises the RM estimator
        restored = load_filter(dump_filter(sbf))
        _assert_equivalent(sbf, restored, keys)
        assert restored.count(keys[0]) == sbf.count(keys[0])

    def test_spectral_without_recurring_minimum(self):
        sbf = SpectralBloomFilter(2048, 3, seed=6, recurring_minimum=False)
        keys = _fill(sbf, 100)
        restored = load_filter(dump_filter(sbf))
        _assert_equivalent(sbf, restored, keys)
        assert not restored.recurring_minimum


class TestFormat:
    def test_magic_check(self):
        with pytest.raises(ConfigurationError):
            load_filter(b"NOPE" + b"\x00" * 32)

    def test_version_check(self):
        blob = bytearray(dump_filter(BloomFilter(64, 2)))
        blob[4] = 99
        with pytest.raises(ConfigurationError):
            load_filter(bytes(blob))

    def test_unsupported_type(self):
        from repro.filters.base import FilterBase

        with pytest.raises(ConfigurationError):
            dump_filter(FilterBase())

    def test_serialized_size_tracks_state(self):
        small = BloomFilter(512, 3)
        large = BloomFilter(1 << 16, 3)
        assert serialized_size(large) > serialized_size(small)

    def test_empty_filter_round_trip(self):
        mp = MPCBF(32, 64, 3, n_max=5, seed=0)
        restored = load_filter(dump_filter(mp))
        assert not restored.query("anything")
        restored.check_invariants()


class TestSerializationProperties:
    """Hypothesis: round-trips preserve observable state under random ops."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 30)),
            max_size=60,
        ),
        st.sampled_from(["CBF", "PCBF", "MPCBF", "VI-CBF"]),
    )
    def test_round_trip_after_random_ops(self, ops, variant):
        from collections import Counter

        if variant == "CBF":
            filt = CountingBloomFilter(2048, 3, seed=1)
        elif variant == "PCBF":
            filt = PartitionedCBF(64, 64, 3, seed=1)
        elif variant == "VI-CBF":
            filt = VariableIncrementCBF(2048, 3, seed=1)
        else:
            filt = MPCBF(32, 256, 3, n_max=60, seed=1)
        live: Counter = Counter()
        for op, key in ops:
            name = f"k{key}"
            if op == "delete":
                if live[name] == 0:
                    continue
                filt.delete(name)
                live[name] -= 1
            elif live[name] < 4:
                filt.insert(name)
                live[name] += 1
        restored = load_filter(dump_filter(filt))
        probes = [f"k{i}" for i in range(40)] + [f"p{i}" for i in range(40)]
        np.testing.assert_array_equal(
            filt.query_many(probes), restored.query_many(probes)
        )
        for name, count in live.items():
            if count:
                assert restored.count(name) >= count


class TestBankRoundTrips:
    def _bank(self, variant="MPCBF-1", num_shards=4):
        from repro.filters.factory import FilterSpec
        from repro.parallel.sharded import ShardedFilterBank

        spec = FilterSpec(
            variant=variant,
            memory_bits=32 * 8192,
            k=3,
            capacity=2000,
            seed=13,
            extra=(
                {"word_overflow": "saturate"}
                if variant.startswith("MPCBF")
                else {}
            ),
        )
        return ShardedFilterBank(spec, num_shards)

    @pytest.mark.parametrize("variant", ["MPCBF-1", "CBF", "BF"])
    def test_bank_round_trip(self, variant):
        bank = self._bank(variant)
        keys = _fill(bank)
        restored = load_bank(dump_bank(bank))
        assert restored.num_shards == bank.num_shards
        assert restored.name == bank.name
        _assert_equivalent(bank, restored, keys)
        # Routing survives: per-shard loads match exactly.
        np.testing.assert_array_equal(
            restored.shard_loads(keys), bank.shard_loads(keys)
        )

    def test_bank_deletion_after_restore(self):
        bank = self._bank("CBF")
        keys = _fill(bank)
        restored = load_bank(dump_bank(bank))
        restored.delete(keys[0])
        assert not restored.query(keys[0])

    def test_bank_byte_identical_reserialisation(self):
        bank = self._bank()
        _fill(bank, 100)
        blob = dump_bank(bank)
        assert dump_bank(load_bank(blob)) == blob

    def test_bank_bad_magic(self):
        with pytest.raises(ConfigurationError):
            load_bank(b"NOPE" + b"\x00" * 16)

    def test_filter_and_bank_magics_are_disjoint(self):
        bank = self._bank()
        with pytest.raises(ConfigurationError):
            load_filter(dump_bank(bank))
        with pytest.raises(ConfigurationError):
            load_bank(dump_filter(bank.shards[0]))


class TestStorageLayoutRoundTrips:
    def test_packed_cbf_round_trip(self):
        packed = CountingBloomFilter(2048, 3, seed=1, storage="packed")
        for key in ("a", "a", "b"):
            packed.insert(key)
        restored = load_filter(dump_filter(packed))
        assert restored.storage == "packed"
        assert restored.count("a") == 2
        restored.delete("b")
        assert not restored.query("b")

    def test_fast_and_packed_serialise_equivalent_state(self, small_keys):
        fast = CountingBloomFilter(2048, 3, seed=1)
        packed = CountingBloomFilter(2048, 3, seed=1, storage="packed")
        fast.insert_many(small_keys)
        packed.insert_many(small_keys)
        a = load_filter(dump_filter(fast))
        b = load_filter(dump_filter(packed))
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_basic_layout_mpcbf_round_trip(self):
        basic = MPCBF(64, 64, 3, first_level_bits=32, seed=2)
        basic.insert("x")
        restored = load_filter(dump_filter(basic))
        assert restored.first_level_bits == 32
        assert restored.query("x")
        restored.delete("x")
        assert not restored.query("x")
        restored.check_invariants()
