"""Tests for the 64-bit mixers: scalar/vector agreement and avalanche."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.mixers import (
    MASK64,
    derive_seeds,
    murmur_fmix64,
    murmur_fmix64_array,
    splitmix64,
    splitmix64_array,
)

U64 = st.integers(min_value=0, max_value=MASK64)


class TestSplitmix64:
    def test_known_vector(self):
        # Reference values from the canonical SplitMix64 C implementation
        # (seed state 0 → first output).
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_range(self):
        for x in [0, 1, MASK64, 123456789]:
            assert 0 <= splitmix64(x) <= MASK64

    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000  # no collisions on small range

    @given(U64)
    def test_scalar_matches_array(self, x):
        arr = splitmix64_array(np.array([x], dtype=np.uint64))
        assert int(arr[0]) == splitmix64(x)

    def test_array_bulk_matches_scalar(self):
        xs = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
        arr = splitmix64_array(xs)
        for i in (0, 1, 500, 999):
            assert int(arr[i]) == splitmix64(int(xs[i]))

    def test_avalanche(self):
        # Flipping one input bit flips ~half the output bits.
        base = splitmix64(0xDEADBEEF)
        flipped = splitmix64(0xDEADBEEF ^ 1)
        hamming = (base ^ flipped).bit_count()
        assert 16 <= hamming <= 48

    def test_high_bits_well_mixed(self):
        # The shared-first-hash trick uses the upper 32 bits as a word
        # index; they must be uniform.
        highs = [(splitmix64(i) >> 32) % 97 for i in range(20_000)]
        counts = np.bincount(highs, minlength=97)
        assert counts.min() > 100  # expected ~206 each


class TestMurmurFmix64:
    def test_range_and_determinism(self):
        assert murmur_fmix64(7) == murmur_fmix64(7)
        assert 0 <= murmur_fmix64(MASK64) <= MASK64

    def test_zero_maps_to_zero(self):
        # fmix64(0) == 0 is a known fixed point of the finaliser.
        assert murmur_fmix64(0) == 0

    @given(U64)
    def test_scalar_matches_array(self, x):
        arr = murmur_fmix64_array(np.array([x], dtype=np.uint64))
        assert int(arr[0]) == murmur_fmix64(x)

    def test_differs_from_splitmix(self):
        # The two mixers must be distinct functions (used as independent
        # hash sources for double hashing).
        diffs = sum(
            1 for i in range(1, 100) if splitmix64(i) != murmur_fmix64(i)
        )
        assert diffs == 99


class TestDeriveSeeds:
    def test_count_and_determinism(self):
        seeds = derive_seeds(123, 8)
        assert len(seeds) == 8
        assert seeds == derive_seeds(123, 8)

    def test_distinct_within_and_across_masters(self):
        a = derive_seeds(1, 16)
        b = derive_seeds(2, 16)
        assert len(set(a)) == 16
        assert set(a).isdisjoint(set(b))

    def test_zero_count(self):
        assert derive_seeds(5, 0) == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(5, -1)

    def test_masks_master_seed(self):
        # Master seeds differing only above bit 64 are equivalent.
        assert derive_seeds(1, 3) == derive_seeds(1 + (1 << 64), 3)
