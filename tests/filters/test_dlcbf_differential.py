"""dlCBF differential properties against a dict-multiset oracle.

The d-left fingerprint table has exact-count semantics (one cell per
distinct key, a counter for multiplicity), so unlike the array CBFs its
``count`` must *equal* the oracle multiplicity whenever no fingerprint
collision occurred — and with 14-bit fingerprints over a 16-key
universe, collisions do not occur at these sizes.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CounterOverflowError, CounterUnderflowError
from repro.filters.dlcbf import DLeftCBF


def make_filter(seed: int = 0, counter_bits: int = 8) -> DLeftCBF:
    return DLeftCBF(64, counter_bits=counter_bits, seed=seed)


@st.composite
def op_sequences(draw):
    """Arbitrary legal interleavings over a small key universe."""
    n_ops = draw(st.integers(1, 80))
    ops = []
    live: Counter = Counter()
    for _ in range(n_ops):
        key = draw(st.integers(0, 15))
        if live[key] > 0 and draw(st.booleans()):
            ops.append(("delete", key))
            live[key] -= 1
        else:
            ops.append(("insert", key))
            live[key] += 1
    return ops


class TestMultisetDifferential:
    @settings(max_examples=80, deadline=None)
    @given(op_sequences(), st.integers(0, 3))
    def test_membership_tracks_oracle_exactly(self, ops, seed):
        filt = make_filter(seed)
        oracle: Counter = Counter()
        for op, key_id in ops:
            key = f"dk-{key_id}"
            getattr(filt, op)(key)
            oracle[key] += 1 if op == "insert" else -1
            assert filt.query(key) == (oracle[key] > 0)
        for key, count in oracle.items():
            assert filt.query(key) == (count > 0)

    @settings(max_examples=40, deadline=None)
    @given(op_sequences())
    def test_count_equals_oracle_multiplicity(self, ops):
        filt = make_filter()
        oracle: Counter = Counter()
        for op, key_id in ops:
            key = f"dk-{key_id}"
            getattr(filt, op)(key)
            oracle[key] += 1 if op == "insert" else -1
        for key, count in oracle.items():
            assert filt.count(key) == count
        assert filt.load == sum(1 for c in oracle.values() if c > 0)

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 100), min_size=1, max_size=30))
    def test_query_many_agrees_with_scalar(self, key_ids):
        filt = make_filter(3)
        keys = [f"dk-{k}" for k in sorted(key_ids)]
        present = keys[:: 2]
        filt.insert_many(present)
        bulk = filt.query_many(keys)
        for key, answer in zip(keys, bulk):
            assert bool(answer) == filt.query(key)


class TestOverflow:
    def test_cell_counter_overflow_raises(self):
        # 2-bit counters: a fourth copy of the same key cannot be
        # represented in the cell.
        filt = make_filter(counter_bits=2)
        for _ in range(3):
            filt.insert("hot-key")
        with pytest.raises(CounterOverflowError):
            filt.insert("hot-key")

    def test_overflow_leaves_count_at_limit(self):
        filt = make_filter(counter_bits=2)
        for _ in range(3):
            filt.insert("hot-key")
        with pytest.raises(CounterOverflowError):
            filt.insert("hot-key")
        assert filt.count("hot-key") == 3
        # The failed insert must not have corrupted delete bookkeeping.
        for _ in range(3):
            filt.delete("hot-key")
        assert not filt.query("hot-key")


class TestDeleteOfAbsent:
    def test_delete_from_empty_filter_underflows(self):
        with pytest.raises(CounterUnderflowError):
            make_filter().delete("never-inserted")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6))
    def test_one_delete_too_many_underflows(self, copies):
        filt = make_filter()
        for _ in range(copies):
            filt.insert("only-key")
        for _ in range(copies):
            filt.delete("only-key")
        assert not filt.query("only-key")
        with pytest.raises(CounterUnderflowError):
            filt.delete("only-key")

    def test_delete_of_absent_key_among_others_underflows(self):
        filt = make_filter()
        filt.insert_many([f"dk-{i}" for i in range(20)])
        with pytest.raises(CounterUnderflowError):
            filt.delete("absent-key")
        # No bystander cell was decremented by the failed delete.
        assert all(filt.query(f"dk-{i}") for i in range(20))
