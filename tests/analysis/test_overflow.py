"""Tests for the word-overflow probability models (Eq. 6 / 10)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.overflow import (
    any_word_overflow_probability,
    word_overflow_bound,
    word_overflow_probability,
)
from repro.errors import ConfigurationError


class TestExactTail:
    def test_monotone_decreasing_in_n_max(self):
        probs = [
            word_overflow_probability(100_000, 62_500, n_max)
            for n_max in range(1, 12)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_increasing_in_g(self):
        p1 = word_overflow_probability(10_000, 4096, 6, g=1)
        p2 = word_overflow_probability(10_000, 4096, 6, g=2)
        assert p2 > p1

    def test_zero_when_n_max_exceeds_n(self):
        assert word_overflow_probability(10, 100, 10) == 0.0
        assert word_overflow_probability(10, 100, 11) == 0.0

    def test_any_word_is_union_bound(self):
        per = word_overflow_probability(10_000, 1000, 15)
        any_ = any_word_overflow_probability(10_000, 1000, 15)
        assert any_ == pytest.approx(min(1.0, 1000 * per))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            word_overflow_probability(100, 0, 5)


class TestChernoffBound:
    def test_bounds_the_exact_tail(self):
        # Eq. 6 is an upper bound on P(E >= n_max) >= P(E > n_max).
        for n_max in range(3, 15):
            exact = word_overflow_probability(100_000, 62_500, n_max)
            bound = word_overflow_bound(100_000, 62_500, n_max)
            assert bound >= exact

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1000, 200_000),
        l=st.integers(100, 100_000),
        n_max=st.integers(1, 30),
    )
    def test_bound_property(self, n, l, n_max):
        exact = word_overflow_probability(n, l, n_max)
        bound = word_overflow_bound(n, l, n_max)
        assert 0.0 <= exact <= 1.0
        assert exact <= bound <= 1.0

    def test_clamped_to_one(self):
        assert word_overflow_bound(100_000, 10, 1) == 1.0


class TestHeuristicValidation:
    def test_eq11_keeps_per_word_tail_below_1_over_l(self):
        # Eq. 11 chooses n_max so the per-word tail is ≲ 1/l.
        from repro.analysis.heuristics import n_max_heuristic

        for n, l in [(100_000, 62_500), (10_000, 6_250), (200_000, 125_000)]:
            n_max = n_max_heuristic(n, l)
            assert word_overflow_probability(n, l, n_max) <= 1.5 / l

    def test_montecarlo_occupancy_tail(self, rng):
        # Simulated word occupancies must match the binomial tail.
        n, l, n_max = 20_000, 2048, 14
        trials = 50
        exceed = 0
        for _ in range(trials):
            words = rng.integers(0, l, size=n)
            counts = np.bincount(words, minlength=l)
            exceed += int((counts > n_max).sum())
        observed_rate = exceed / (trials * l)
        predicted = word_overflow_probability(n, l, n_max)
        assert observed_rate == pytest.approx(predicted, rel=0.5, abs=1e-5)
