"""Coalescer unit tests: batch bounds, delay bound, error isolation."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import CounterUnderflowError, UnsupportedOperationError
from repro.filters.bloom import BloomFilter
from repro.filters.cbf import CountingBloomFilter
from repro.service.batching import FilterExecutor, MicroBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import Opcode


def run(coro):
    return asyncio.run(coro)


class RecordingApply:
    """Stand-in dispatch function that records every batch it receives."""

    def __init__(self, fail_on: bytes | None = None):
        self.batches: list[tuple[Opcode, list[list[bytes]]]] = []
        self.fail_on = fail_on

    def __call__(self, op, key_lists):
        self.batches.append((op, [list(keys) for keys in key_lists]))
        results = []
        for keys in key_lists:
            if self.fail_on is not None and self.fail_on in keys:
                results.append(CounterUnderflowError(7))
            else:
                results.append(len(keys))
        return results


class TestBatchBounds:
    def test_concurrent_submissions_coalesce(self):
        apply = RecordingApply()
        metrics = ServiceMetrics()

        async def main():
            batcher = MicroBatcher(
                apply, max_batch=1000, max_delay_us=20_000, metrics=metrics
            )
            batcher.start()
            results = await asyncio.gather(
                *[batcher.submit(Opcode.INSERT, [b"k%d" % i]) for i in range(20)]
            )
            await batcher.stop()
            return results

        results = run(main())
        assert results == [1] * 20
        # 20 concurrent single-key requests in far fewer dispatches.
        assert len(apply.batches) < 20
        assert metrics.mean_batch_size > 1.0

    def test_max_batch_key_bound(self):
        apply = RecordingApply()

        async def main():
            batcher = MicroBatcher(apply, max_batch=8, max_delay_us=50_000)
            batcher.start()
            await asyncio.gather(
                *[batcher.submit(Opcode.INSERT, [b"a", b"b", b"c"]) for _ in range(10)]
            )
            await batcher.stop()

        run(main())
        for _, key_lists in apply.batches:
            total = sum(len(keys) for keys in key_lists)
            # 8-key bound with 3-key requests: a batch closes at >= 8,
            # so it never exceeds the bound by more than one request.
            assert total <= 8 + 3

    def test_zero_delay_dispatches_immediately(self):
        apply = RecordingApply()

        async def main():
            batcher = MicroBatcher(apply, max_batch=100, max_delay_us=0)
            batcher.start()
            for i in range(5):
                await batcher.submit(Opcode.QUERY, [b"k%d" % i])
            await batcher.stop()

        run(main())
        # Sequential awaited submissions with no delay window: one each.
        assert len(apply.batches) == 5

    def test_op_kind_change_splits_batch(self):
        apply = RecordingApply()

        async def main():
            batcher = MicroBatcher(apply, max_batch=100, max_delay_us=20_000)
            batcher.start()
            inserts = [batcher.submit(Opcode.INSERT, [b"i%d" % i]) for i in range(3)]
            queries = [batcher.submit(Opcode.QUERY, [b"q%d" % i]) for i in range(3)]
            await asyncio.gather(*inserts, *queries)
            await batcher.stop()

        run(main())
        for op, key_lists in apply.batches:
            kinds = {op}
            assert len(kinds) == 1  # no mixed-op batch
        ops = [op for op, _ in apply.batches]
        assert Opcode.INSERT in ops and Opcode.QUERY in ops
        # Arrival order preserved across the op switch.
        assert ops.index(Opcode.INSERT) < ops.index(Opcode.QUERY)

    def test_delay_bound_caps_added_latency(self):
        apply = RecordingApply()

        async def main():
            batcher = MicroBatcher(apply, max_batch=10_000, max_delay_us=5_000)
            batcher.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            await batcher.submit(Opcode.QUERY, [b"solo"])
            elapsed = loop.time() - started
            await batcher.stop()
            return elapsed

        elapsed = run(main())
        # A lone request must not wait for max_batch to fill — only for
        # the delay window (plus scheduling noise).
        assert elapsed < 1.0


class TestErrorIsolation:
    def test_failing_request_does_not_poison_batch(self):
        apply = RecordingApply(fail_on=b"bad")

        async def main():
            batcher = MicroBatcher(apply, max_batch=100, max_delay_us=20_000)
            batcher.start()
            good1 = batcher.submit(Opcode.INSERT, [b"ok-1"])
            bad = batcher.submit(Opcode.INSERT, [b"bad"])
            good2 = batcher.submit(Opcode.INSERT, [b"ok-2"])
            results = await asyncio.gather(good1, bad, good2, return_exceptions=True)
            await batcher.stop()
            return results

        results = run(main())
        assert results[0] == 1
        assert isinstance(results[1], CounterUnderflowError)
        assert results[2] == 1

    def test_executor_isolates_underflow_per_request(self):
        cbf = CountingBloomFilter(4096, 3, seed=1)
        cbf.insert(b"present")
        executor = FilterExecutor(cbf)
        results = executor.apply(
            Opcode.DELETE, [[b"present"], [b"never-inserted"]]
        )
        assert results[0] is None
        assert isinstance(results[1], CounterUnderflowError)
        # The present key really was deleted despite its neighbour failing.
        assert not cbf.query(b"present")

    def test_executor_rejects_delete_on_plain_bloom(self):
        executor = FilterExecutor(BloomFilter(1024, 3))
        results = executor.apply(Opcode.DELETE, [[b"x"], [b"y"]])
        assert all(isinstance(r, UnsupportedOperationError) for r in results)

    def test_fused_mutations_fail_whole_batch(self):
        cbf = CountingBloomFilter(4096, 3, seed=1)
        executor = FilterExecutor(cbf, fuse_mutations=True)
        results = executor.apply(Opcode.DELETE, [[b"a"], [b"b"]])
        assert all(isinstance(r, CounterUnderflowError) for r in results)

    def test_fused_mutations_reject_a_wal(self, tmp_path):
        # A fused apply is all-or-nothing, but the WAL replays records
        # one by one — mixing them would let recovery diverge from the
        # pre-crash state, so the combination must not construct.
        from repro.cluster.wal import WriteAheadLog
        from repro.errors import ConfigurationError

        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(ConfigurationError, match="fuse_mutations"):
            FilterExecutor(
                CountingBloomFilter(4096, 3, seed=1),
                fuse_mutations=True,
                wal=wal,
            )
        wal.close()


class TestExecutorQueries:
    def test_query_results_slice_back_per_request(self):
        cbf = CountingBloomFilter(8192, 3, seed=3)
        cbf.insert_many([b"m1", b"m2", b"m3"])
        executor = FilterExecutor(cbf)
        results = executor.apply(
            Opcode.QUERY, [[b"m1", b"u1"], [b"m2"], [b"u2", b"m3", b"u3"]]
        )
        assert [len(r) for r in results] == [2, 1, 3]
        assert results[0].tolist() == [True, False] or results[0][0]
        np.testing.assert_array_equal(
            np.concatenate(results),
            cbf.query_many([b"m1", b"u1", b"m2", b"u2", b"m3", b"u3"]),
        )


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            batcher = MicroBatcher(RecordingApply())
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit(Opcode.QUERY, [b"x"])

        run(main())

    def test_stop_drains_queued_work(self):
        apply = RecordingApply()

        async def main():
            batcher = MicroBatcher(apply, max_batch=4, max_delay_us=50_000)
            batcher.start()
            futures = [
                asyncio.ensure_future(batcher.submit(Opcode.INSERT, [b"k%d" % i]))
                for i in range(25)
            ]
            # One loop iteration: every submission enqueues ahead of the
            # stop sentinel, so stop() must drain all 25.
            await asyncio.sleep(0)
            await batcher.stop()
            return await asyncio.gather(*futures)

        results = run(main())
        assert results == [1] * 25

    def test_submit_after_stop_began_fails_fast(self):
        async def main():
            batcher = MicroBatcher(RecordingApply())
            batcher.start()
            await batcher.stop()
            with pytest.raises(RuntimeError):
                await batcher.submit(Opcode.INSERT, [b"late"])

        run(main())

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingApply(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingApply(), max_delay_us=-1)
