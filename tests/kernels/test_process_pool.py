"""Process-pool sharded execution over shared-memory columnar state.

Small geometries and 2 workers keep this fast; the point is semantic
equivalence with the sequential bank, error transport across the
process boundary, and clean arena lifecycle (close/reopen/idempotence).
The dispatch threshold is monkeypatched down so tiny test batches
actually exercise the pool.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.sharded as sharded_mod
from repro.errors import ConfigurationError, CounterUnderflowError
from repro.filters.factory import FilterSpec
from repro.parallel.sharded import ShardedFilterBank
from repro.serialize import dump_bank, load_bank


def _spec(**overrides) -> FilterSpec:
    base = dict(
        variant="MPCBF-2",
        memory_bits=64 * 1024,
        k=4,
        word_bits=64,
        capacity=2000,
        seed=11,
        extra={"word_overflow": "saturate"},
    )
    base.update(overrides)
    return FilterSpec(**base)


@pytest.fixture
def small_batches(monkeypatch):
    monkeypatch.setattr(sharded_mod, "PROCESS_MIN_BATCH", 64)


def test_process_bank_matches_sequential(small_batches):
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**63, size=2000, dtype=np.uint64)
    ref = ShardedFilterBank(_spec(), 4)
    with ShardedFilterBank(_spec(), 4, max_workers=2, executor="process") as bank:
        bank.insert_many(keys)
        ref.insert_many(keys)
        members = bank.query_many(keys)
        assert members.all()
        assert np.array_equal(members, ref.query_many(keys))
        assert np.array_equal(bank.count_many(keys), ref.count_many(keys))
        bank.delete_many(keys[:1000])
        ref.delete_many(keys[:1000])
        assert np.array_equal(bank.query_many(keys), ref.query_many(keys))
        assert np.array_equal(bank.count_many(keys), ref.count_many(keys))
        # Worker stat deltas fold into the parent shards exactly.
        s1, s2 = bank.stats, ref.stats
        assert s1.insert.operations == s2.insert.operations
        assert s1.insert.word_accesses == s2.insert.word_accesses
        assert s1.delete.operations == s2.delete.operations
        assert s1.query.word_accesses == s2.query.word_accesses
        # Scalar calls on the parent hit the same shared arrays.
        bank.insert("mixed-mode")
        ref.insert("mixed-mode")
        assert bank.query("mixed-mode")
        for sh1, sh2 in zip(bank.shards, ref.shards):
            assert np.array_equal(sh1.columns.counts, sh2.columns.counts)
            assert np.array_equal(sh1.columns.mirror, sh2.columns.mirror)
            assert sh1.overflow_events == sh2.overflow_events
            assert sh1.skipped_deletes == sh2.skipped_deletes


def test_error_transport_and_all_shards_applied(small_batches):
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 2**63, size=400, dtype=np.uint64)
    absent = rng.integers(0, 2**63, size=400, dtype=np.uint64)
    ref = ShardedFilterBank(_spec(), 4)
    with ShardedFilterBank(_spec(), 4, max_workers=2, executor="process") as bank:
        bank.insert_many(keys)
        ref.insert_many(keys)
        with pytest.raises(CounterUnderflowError) as via_pool:
            bank.delete_many(absent)
        with pytest.raises(CounterUnderflowError):
            ref.delete_many(absent)
        assert isinstance(via_pool.value.index, int)  # __reduce__ round trip
        # Pool mode ran every shard's chunk; each shard preserved its
        # own partial-application semantics, so columnar state matches a
        # per-shard replay (not asserted against `ref`, whose sequential
        # dispatch stopped at the first failing shard).
        bank.insert_many(keys)  # the bank remains fully usable


def test_small_batches_run_inline(monkeypatch):
    # Below the crossover threshold no pool should ever be created.
    bank = ShardedFilterBank(_spec(), 2, executor="process")
    keys = np.arange(100, dtype=np.uint64)
    bank.insert_many(keys)
    assert bank.query_many(keys).all()
    assert bank._pool is None and bank._arena is None
    bank.close()  # no-op


def test_close_is_idempotent_and_bank_survives(small_batches):
    keys = np.arange(70000, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    bank = ShardedFilterBank(
        _spec(capacity=200000, memory_bits=64 * 65536),
        2,
        max_workers=2,
        executor="process",
    )
    bank.insert_many(keys[:1000])
    assert bank._pool is not None
    bank.close()
    bank.close()
    assert bank._pool is None and bank._arena is None
    # Still queryable (inline) after close, and the pool reopens lazily.
    assert bank.query_many(keys[:1000]).all()
    bank.insert_many(keys[1000:2000])
    assert bank._pool is not None
    bank.close()


def test_process_executor_requires_columnar_shards(small_batches):
    spec = _spec(extra={"word_overflow": "saturate", "kernel": "scalar"})
    bank = ShardedFilterBank(spec, 2, executor="process")
    with pytest.raises(ConfigurationError, match="columnar"):
        bank.insert_many(np.arange(200, dtype=np.uint64))


def test_executor_validation():
    with pytest.raises(ConfigurationError):
        ShardedFilterBank(_spec(), 2, executor="fibers")


def test_bank_serialization_preserves_executor():
    bank = ShardedFilterBank(_spec(), 2, max_workers=2, executor="process")
    keys = np.arange(500, dtype=np.uint64)
    bank.insert_many(keys)  # inline (below threshold)
    blob = dump_bank(bank)
    loaded = load_bank(blob)
    assert loaded.executor == "process"
    assert loaded.max_workers == 2
    assert np.array_equal(loaded.query_many(keys), bank.query_many(keys))
    bank.close()
    loaded.close()
