#!/usr/bin/env python3
"""A multi-pipeline line card: sharded MPCBF bank + hardware projection.

The paper's introduction motivates MPCBF with routers that run multiple
CBFs in parallel across ports/pipelines [4-10].  This example builds
that architecture in software: an 8-shard :class:`ShardedFilterBank` of
MPCBF-1 filters tracking monitored flows, classifies a packet stream,
and then projects the design onto a banked-SRAM pipeline model to show
the line rate the architecture sustains versus a standard-CBF line
card at the same total memory.

Run:  python examples/parallel_line_card.py
"""

from __future__ import annotations

import time

from repro.filters.factory import FilterSpec
from repro.memmodel.pipeline import SramPipelineModel
from repro.parallel import ShardedFilterBank
from repro.workloads import make_trace_workload


def main() -> None:
    shards = 8
    monitored = 16_000
    per_shard_bits = 160_000  # ~80 bits/flow/shard

    print(f"building an {shards}-pipeline MPCBF line card "
          f"({shards * per_shard_bits // 1000} Kb total SRAM)...")
    bank = ShardedFilterBank(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=per_shard_bits,
            k=3,
            capacity=monitored,
            seed=1,
            extra={"word_overflow": "saturate"},
        ),
        shards,
    )

    trace = make_trace_workload(
        n_unique=24_000, n_observations=450_000, n_inserted=monitored, seed=4
    )
    bank.insert_many(trace.member_keys())
    loads = bank.shard_loads(trace.member_keys())
    print(f"  shard loads: min={loads.min()} max={loads.max()} "
          f"(balance {loads.min() / loads.max():.2f})")

    packets = trace.query_keys()
    truth = trace.query_is_member()
    bank.reset_stats()
    t0 = time.perf_counter()
    verdict = bank.query_many(packets)
    elapsed = time.perf_counter() - t0
    fpr = float(verdict[~truth].mean())
    assert bool(verdict[truth].all()), "no member packet may be missed"
    print(f"  classified {len(packets):,} packets in {elapsed:.2f}s "
          f"({len(packets) / elapsed / 1e6:.1f} Mpkt/s software), "
          f"fpr={fpr:.4%}")

    # Project onto hardware: each shard is an independent pipeline.
    stats = bank.stats.query
    model = SramPipelineModel(clock_hz=350e6, memory_ports=2, hash_units=8)
    per_pipe = model.estimate(stats.mean_accesses, stats.mean_hash_calls)
    total_ops = per_pipe.ops_per_second * shards
    cbf = model.estimate(3.0, 3.0)  # standard CBF pipeline at k=3
    print("\nhardware projection (350 MHz, dual-port SRAM, 8 hash units):")
    print(f"  per-pipeline MPCBF-1 : {per_pipe.ops_per_second / 1e6:.0f} "
          f"Mlookup/s ({per_pipe.bottleneck}-bound)")
    print(f"  {shards}-pipeline card     : {total_ops / 1e6:.0f} Mlookup/s "
          f"= {total_ops * 84 * 8 / 1e9:.0f} Gbps at min-size packets")
    print(f"  same card with CBF   : {cbf.ops_per_second * shards / 1e6:.0f} "
          f"Mlookup/s — MPCBF buys "
          f"{per_pipe.ops_per_second / cbf.ops_per_second:.1f}x")


if __name__ == "__main__":
    main()
