"""Seeded, canonical op/fault schedules and ddmin shrinking.

A :class:`Schedule` is the *entire* input to a chaos run: the client
operation sequence plus the fault events interleaved with it, all
derived from one u64 seed by :meth:`Schedule.generate`.  Schedules
round-trip through canonical JSON and are content-addressed by a
sha256 :meth:`~Schedule.digest`, which is what the CI reproducibility
check compares across runs.

Fault events are deliberately *position-independent*: the runner
treats a crash of an already-down node, a heal of an unpartitioned
pair, etc. as no-ops.  That makes every subset of the event list a
valid schedule, which is exactly the property :func:`shrink_schedule`
(a ddmin variant) needs to minimise a failing schedule by deleting
event chunks.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["Event", "Schedule", "shrink_schedule"]

_SCHEMA_VERSION = 1

#: Relative likelihood of each fault family during generation.
_FAULT_WEIGHTS: Sequence[Tuple[str, float]] = (
    ("crash", 0.30),
    ("partition", 0.25),
    ("reset", 0.20),
    ("snapshot", 0.15),
    ("fsync_fail", 0.10),
)


@dataclass(frozen=True)
class Event:
    """One fault event, fired just before op index ``step``."""

    step: int
    kind: str
    args: Tuple[Tuple[str, int], ...] = ()

    def arg(self, name: str, default: int = 0) -> int:
        for key, value in self.args:
            if key == name:
                return value
        return default

    def to_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"step": self.step, "kind": self.kind}
        for key, value in self.args:
            obj[key] = value
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "Event":
        args = tuple(
            sorted(
                (k, int(v))
                for k, v in obj.items()
                if k not in ("step", "kind")
            )
        )
        return cls(step=int(obj["step"]), kind=str(obj["kind"]), args=args)


@dataclass(frozen=True)
class Schedule:
    """A complete chaos-run input: ops + fault events, seed-derived."""

    seed: int
    steps: int
    nodes: int
    ops: Tuple[Tuple[str, str], ...]
    events: Tuple[Event, ...]

    # -- generation -------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, steps: int, nodes: int) -> "Schedule":
        """Derive the full schedule for ``seed`` (pure; no global state)."""
        if nodes < 1:
            raise ValueError("need at least one node")
        rng = random.Random(seed)
        ops = cls._generate_ops(rng, steps)
        events = cls._generate_events(rng, steps, nodes)
        return cls(
            seed=seed, steps=steps, nodes=nodes, ops=ops, events=events
        )

    @staticmethod
    def _generate_ops(
        rng: random.Random, steps: int
    ) -> Tuple[Tuple[str, str], ...]:
        key_space = max(4, steps // 2)
        inserted: List[str] = []
        ops: List[Tuple[str, str]] = []
        for _ in range(steps):
            roll = rng.random()
            if roll < 0.60 or not inserted:
                key = f"k{rng.randrange(key_space)}"
                ops.append(("insert", key))
                inserted.append(key)
            elif roll < 0.85:
                key = inserted[rng.randrange(len(inserted))]
                ops.append(("delete", key))
            else:
                key = f"k{rng.randrange(key_space)}"
                ops.append(("query", key))
        return tuple(ops)

    @staticmethod
    def _generate_events(
        rng: random.Random, steps: int, nodes: int
    ) -> Tuple[Event, ...]:
        fault_count = max(1, steps // 12)
        events: List[Event] = []
        for _ in range(fault_count):
            step = rng.randrange(steps)
            kind = _weighted_choice(rng, _FAULT_WEIGHTS)
            if kind == "crash":
                # Replicas crash with torn tails; the primary crashes
                # quiesced.  Either way a restart follows.
                node = rng.randrange(nodes)
                gap = rng.randint(1, max(2, steps // 8))
                events.append(Event(step, "crash", (("node", node),)))
                events.append(
                    Event(min(steps - 1, step + gap), "restart",
                          (("node", node),))
                )
            elif kind == "partition":
                if nodes < 2:
                    continue
                a, b = rng.sample(range(nodes), 2)
                gap = rng.randint(1, max(2, steps // 8))
                events.append(
                    Event(step, "partition", (("a", a), ("b", b)))
                )
                events.append(
                    Event(min(steps - 1, step + gap), "heal",
                          (("a", a), ("b", b)))
                )
            elif kind == "reset":
                events.append(
                    Event(step, "reset", (("node", rng.randrange(nodes)),))
                )
            elif kind == "snapshot":
                events.append(Event(step, "snapshot"))
            elif kind == "fsync_fail":
                events.append(
                    Event(
                        step,
                        "fsync_fail",
                        (("node", rng.randrange(nodes)),),
                    )
                )
        events.sort(key=lambda e: e.step)
        return tuple(events)

    # -- derivation -------------------------------------------------------
    def with_events(self, events: Sequence[Event]) -> "Schedule":
        """Same ops, different fault events (used by shrinking)."""
        return Schedule(
            seed=self.seed,
            steps=self.steps,
            nodes=self.nodes,
            ops=self.ops,
            events=tuple(events),
        )

    # -- canonical serialisation ------------------------------------------
    def to_json(self) -> str:
        obj = {
            "version": _SCHEMA_VERSION,
            "seed": self.seed,
            "steps": self.steps,
            "nodes": self.nodes,
            "ops": [list(op) for op in self.ops],
            "events": [e.to_obj() for e in self.events],
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        obj = json.loads(text)
        if obj.get("version") != _SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schedule version: {obj.get('version')!r}"
            )
        return cls(
            seed=int(obj["seed"]),
            steps=int(obj["steps"]),
            nodes=int(obj["nodes"]),
            ops=tuple((str(k), str(v)) for k, v in obj["ops"]),
            events=tuple(Event.from_obj(e) for e in obj["events"]),
        )

    def digest(self) -> str:
        """Content address of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def _weighted_choice(
    rng: random.Random, weights: Sequence[Tuple[str, float]]
) -> str:
    total = sum(w for _, w in weights)
    roll = rng.random() * total
    for name, weight in weights:
        roll -= weight
        if roll <= 0:
            return name
    return weights[-1][0]


def shrink_schedule(
    schedule: Schedule,
    failing: Callable[[Schedule], bool],
    *,
    max_tests: int = 128,
) -> Schedule:
    """Minimise a failing schedule's fault-event list (ddmin).

    ``failing(candidate)`` must return True iff the candidate still
    reproduces the failure.  Deletes progressively smaller chunks of
    the event list while the failure persists, capped at ``max_tests``
    re-executions.  Returns the smallest failing schedule found (the
    input itself if nothing could be removed).
    """
    events = list(schedule.events)
    tests = 0
    granularity = 2
    while len(events) >= 1 and tests < max_tests:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if len(candidate) == len(events):
                continue
            tests += 1
            if failing(schedule.with_events(candidate)):
                events = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if tests >= max_tests:
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(max(2, len(events)), granularity * 2)
    return schedule.with_events(events)
