"""Snapshot CRC trailer: corruption detection + legacy compatibility."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.errors import ConfigurationError
from repro.filters.factory import FilterSpec, build_filter
from repro.serialize import dump_filter
from repro.service.snapshot import (
    load_snapshot,
    load_snapshot_bytes,
    snapshot_bytes,
    write_snapshot,
)


def make_filter(seed=2):
    filt = build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=32 * 8192,
            k=3,
            capacity=2000,
            seed=seed,
            extra={"word_overflow": "saturate"},
        )
    )
    filt.insert_many([b"crc-%d" % i for i in range(500)])
    return filt


class TestCrcTrailer:
    def test_roundtrip_with_trailer(self, tmp_path):
        filt = make_filter()
        path = tmp_path / "f.snap"
        report = write_snapshot(filt, path)
        blob = path.read_bytes()
        assert blob[-8:-4] == b"MPCK"
        (crc,) = struct.unpack("<I", blob[-4:])
        assert crc == zlib.crc32(blob[:-8]) == report["crc32"]
        restored = load_snapshot(path)
        assert all(restored.query_many([b"crc-%d" % i for i in range(500)]))

    def test_corruption_is_detected(self, tmp_path):
        path = tmp_path / "f.snap"
        write_snapshot(make_filter(), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ConfigurationError, match="CRC mismatch"):
            load_snapshot(path)

    def test_legacy_snapshot_without_trailer_still_loads(self, tmp_path):
        # Dumps written before the trailer existed: raw serialize bytes.
        filt = make_filter()
        path = tmp_path / "legacy.snap"
        path.write_bytes(dump_filter(filt))
        restored = load_snapshot(path)
        assert all(restored.query_many([b"crc-%d" % i for i in range(500)]))

    def test_bad_magic_raises_with_source(self, tmp_path):
        with pytest.raises(ConfigurationError, match="somewhere"):
            load_snapshot_bytes(b"not a snapshot at all", source="somewhere")

    def test_snapshot_bytes_matches_file_contents(self, tmp_path):
        filt = make_filter()
        path = tmp_path / "f.snap"
        write_snapshot(filt, path)
        assert path.read_bytes() == snapshot_bytes(filt)
