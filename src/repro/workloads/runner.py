"""Experiment runner: drive workloads through filter suites (§IV).

The runner reproduces the paper's measurement protocol:

1. insert the member set,
2. run the update period (delete churn-out, insert churn-in) when the
   filter supports deletion,
3. reset access statistics,
4. run the query set in bulk and measure the false positive rate over
   the non-member queries plus per-operation access/bandwidth averages.

False *negatives* are also asserted to be absent — a Bloom-filter
implementation bug would show up there first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.filters.base import CountingFilterBase, FilterBase
from repro.workloads.synthetic import MembershipWorkload

__all__ = [
    "MembershipResult",
    "run_membership_workload",
    "run_suite",
    "measure_fpr",
]


@dataclass
class MembershipResult:
    """Metrics from one filter × workload run."""

    name: str
    memory_bits: int
    k: int
    false_positive_rate: float
    false_negatives: int
    query_seconds: float
    build_seconds: float
    mean_query_accesses: float
    mean_query_bits: float
    mean_update_accesses: float
    mean_update_bits: float
    n_queries: int
    n_negative_queries: int
    extra: dict = field(default_factory=dict)

    def row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "filter": self.name,
            "memory_bits": self.memory_bits,
            "k": self.k,
            "fpr": self.false_positive_rate,
            "false_negatives": self.false_negatives,
            "query_s": self.query_seconds,
            "q_accesses": self.mean_query_accesses,
            "q_bits": self.mean_query_bits,
            "u_accesses": self.mean_update_accesses,
            "u_bits": self.mean_update_bits,
        }


def measure_fpr(
    filter_obj: FilterBase,
    negatives: np.ndarray,
) -> float:
    """Fraction of guaranteed non-members the filter claims as members."""
    if len(negatives) == 0:
        return 0.0
    return float(filter_obj.query_many(negatives).mean())


def run_membership_workload(
    filter_obj: FilterBase,
    workload: MembershipWorkload,
    *,
    skip_churn: bool = False,
) -> MembershipResult:
    """Run the full §IV protocol on one filter.

    ``skip_churn`` disables the update period (used for plain Bloom
    filters, which cannot delete).
    """
    t0 = time.perf_counter()
    filter_obj.insert_many(workload.members)
    do_churn = not skip_churn and isinstance(filter_obj, CountingFilterBase)
    if do_churn and len(workload.churn_out):
        filter_obj.delete_many(workload.churn_out)
        filter_obj.insert_many(workload.churn_in)
    build_seconds = time.perf_counter() - t0
    update_stats = filter_obj.stats.update
    mean_update_accesses = update_stats.mean_accesses
    mean_update_bits = update_stats.mean_bits

    filter_obj.reset_stats()
    queries = workload.queries
    labels = workload.query_is_member
    if not do_churn:
        # Without churn the ground truth is the original member set:
        # churn-in queries are then true negatives, churn-out still members.
        members = np.sort(workload.members)
        pos = np.clip(np.searchsorted(members, queries), 0, len(members) - 1)
        labels = members[pos] == queries
    t0 = time.perf_counter()
    answers = filter_obj.query_many(queries)
    query_seconds = time.perf_counter() - t0

    negatives_mask = ~labels
    n_neg = int(negatives_mask.sum())
    fpr = float(answers[negatives_mask].mean()) if n_neg else 0.0
    false_negatives = int((~answers[labels]).sum())
    if false_negatives:
        raise ReproError(
            f"{filter_obj.name} produced {false_negatives} false negatives — "
            "implementation bug"
        )
    return MembershipResult(
        name=filter_obj.name,
        memory_bits=filter_obj.total_bits,
        k=filter_obj.num_hashes,
        false_positive_rate=fpr,
        false_negatives=false_negatives,
        query_seconds=query_seconds,
        build_seconds=build_seconds,
        mean_query_accesses=filter_obj.stats.query.mean_accesses,
        mean_query_bits=filter_obj.stats.query.mean_bits,
        mean_update_accesses=mean_update_accesses,
        mean_update_bits=mean_update_bits,
        n_queries=len(queries),
        n_negative_queries=n_neg,
    )


def run_suite(
    suite: dict[str, FilterBase],
    workload: MembershipWorkload,
) -> dict[str, MembershipResult]:
    """Run one workload across a whole filter suite."""
    return {
        name: run_membership_workload(filt, workload)
        for name, filt in suite.items()
    }
