"""Analytic models from the paper: FPR, overflow, optimal-k, bandwidth.

Implements every numbered equation of §II–III:

* Eq. (1) — standard BF/CBF false positive rate
  (:func:`~repro.analysis.fpr.bf_fpr`).
* Eq. (2)/(3) — PCBF-1 / PCBF-g FPR
  (:func:`~repro.analysis.fpr.pcbf_fpr`).
* Eq. (4)/(5)/(8)/(9) — MPCBF-1 / MPCBF-g FPR, basic and improved
  (:func:`~repro.analysis.fpr.mpcbf_fpr`).
* Eq. (6)/(10) — word-overflow probability bounds
  (:mod:`repro.analysis.overflow`).
* Eq. (11) — the ``n_max`` Poisson-inverse heuristic
  (:func:`~repro.analysis.heuristics.n_max_heuristic`).
* Optimal-k selection: closed form for CBF, brute force for MPCBF
  (:mod:`repro.analysis.optimal`).
* Access-bandwidth formulas for Tables I–III
  (:mod:`repro.analysis.bandwidth`).
"""

from repro.analysis.fpr import (
    bf_fpr,
    bfg_fpr,
    cbf_fpr,
    pcbf_fpr,
    mpcbf_fpr,
    mpcbf_fpr_average,
)
from repro.analysis.overflow import (
    word_overflow_probability,
    word_overflow_bound,
)
from repro.analysis.heuristics import (
    n_max_heuristic,
    improved_b1,
    words_for_memory,
)
from repro.analysis.optimal import (
    cbf_optimal_k,
    mpcbf_optimal_k,
    bf_optimal_fpr,
)
from repro.analysis.saturation import (
    saturation_probability_by_epoch,
    expected_epochs_to_saturation,
)
from repro.analysis.bandwidth import (
    query_budget,
    update_budget,
)

__all__ = [
    "bf_fpr",
    "bfg_fpr",
    "cbf_fpr",
    "pcbf_fpr",
    "mpcbf_fpr",
    "mpcbf_fpr_average",
    "word_overflow_probability",
    "word_overflow_bound",
    "n_max_heuristic",
    "improved_b1",
    "words_for_memory",
    "cbf_optimal_k",
    "mpcbf_optimal_k",
    "bf_optimal_fpr",
    "query_budget",
    "update_budget",
    "saturation_probability_by_epoch",
    "expected_epochs_to_saturation",
]
