"""Fig. 9 — optimal k vs memory.

Regenerates the rows of the paper's fig09 via
:func:`repro.bench.experiments.fig09` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig09(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig09, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
