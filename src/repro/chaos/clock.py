"""Virtual time for the simulation harness.

:class:`SimClock` is a plain settable monotonic counter; it slots into
every ``clock=`` seam in :mod:`repro.overload` (breakers, token
buckets, deadlines) for direct unit tests.

:class:`SimEventLoop` is an asyncio event loop that runs on SimClock
time: ``loop.time()`` reads the virtual clock, and whenever the loop
would otherwise *sleep* waiting for the next scheduled callback, the
selector advances the clock to that callback's deadline instead and
returns immediately.  Every ``asyncio.sleep`` / ``wait_for`` /
``call_later`` in the unmodified production code therefore rides
virtual time automatically — a 60-second retry/backoff/quorum-timeout
schedule executes in milliseconds of wall clock.

Worker threads are the one thing that cannot be virtualised: filter
kernels run on a real executor thread via ``run_in_executor``.  The
loop counts in-flight executor work and, while any is pending, polls
the real selector in short slices *without advancing the clock* — so a
timer can never fire "during" a computation that would have finished
first, which is what keeps cross-thread interleavings deterministic.
"""

from __future__ import annotations

import asyncio
import selectors

__all__ = ["SimClock", "SimEventLoop"]


class SimClock:
    """A settable monotonic clock (seconds, starts at ``start``).

    Works both as an object (``clock.time()``) and, via
    :meth:`__call__`, as a drop-in for the ``clock=`` callable seams in
    :mod:`repro.overload`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def time(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # The overload seams take a zero-arg callable; pass the instance.
    def __call__(self) -> float:
        return self._now

    def advance(self, delta_s: float) -> float:
        """Move time forward by ``delta_s`` seconds; returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance time by {delta_s}")
        self._now += delta_s
        return self._now

    def monotonic(self) -> float:
        """Alias for :meth:`time` (mirrors :func:`time.monotonic`)."""
        return self._now


class _SimState:
    """Shared mutable state between the loop and its selector."""

    __slots__ = ("clock", "executor_inflight", "idle_selects")

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.executor_inflight = 0
        self.idle_selects = 0


#: Consecutive fruitless blocking selects (no events, no timers, no
#: executor work) before the loop declares the simulation deadlocked.
#: Each costs ~1 ms of real time, so this bounds a hung run to seconds.
_DEADLOCK_LIMIT = 5000

#: Real-time slice used when the loop must genuinely wait (executor
#: work in flight, or no timer to advance to).
_REAL_SLICE_S = 0.001


class _AdvancingSelector:
    """Selector wrapper that converts sleeps into clock advances.

    ``select(timeout)`` first polls real I/O readiness (the loop's
    self-pipe is real — ``call_soon_threadsafe`` from worker threads
    lands there).  With nothing ready:

    - executor work in flight → short *real* select, clock frozen;
    - a timer deadline (``timeout`` is finite) → advance the virtual
      clock straight to it and return no events;
    - nothing scheduled at all → short real select, with a bounded
      budget after which the simulation is declared deadlocked.
    """

    def __init__(
        self, inner: selectors.BaseSelector, state: _SimState
    ) -> None:
        self._inner = inner
        self._state = state

    def select(self, timeout=None):
        events = self._inner.select(0)
        if events:
            self._state.idle_selects = 0
            return events
        if self._state.executor_inflight > 0:
            self._state.idle_selects = 0
            return self._inner.select(_REAL_SLICE_S)
        if timeout is None:
            self._state.idle_selects += 1
            if self._state.idle_selects > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    "simulation deadlock: no ready callbacks, no timers, "
                    "and no executor work for too long"
                )
            return self._inner.select(_REAL_SLICE_S)
        self._state.idle_selects = 0
        if timeout > 0:
            self._state.clock.advance(timeout)
        return []

    # -- plain delegation -------------------------------------------------
    def register(self, fileobj, events, data=None):
        return self._inner.register(fileobj, events, data)

    def unregister(self, fileobj):
        return self._inner.unregister(fileobj)

    def modify(self, fileobj, events, data=None):
        return self._inner.modify(fileobj, events, data)

    def get_key(self, fileobj):
        return self._inner.get_key(fileobj)

    def get_map(self):
        return self._inner.get_map()

    def close(self):
        return self._inner.close()


class SimEventLoop(asyncio.SelectorEventLoop):
    """Asyncio event loop running on a :class:`SimClock`.

    Use like any loop::

        clock = SimClock()
        loop = SimEventLoop(clock)
        asyncio.set_event_loop(loop)
        loop.run_until_complete(main())

    ``loop.time()`` is virtual; ``await asyncio.sleep(60)`` returns in
    microseconds of real time.  ``run_in_executor`` still uses real
    threads, but the clock is frozen while any executor call is in
    flight (see the module docstring).
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._sim_state = _SimState(self.clock)
        super().__init__(
            selector=_AdvancingSelector(
                selectors.DefaultSelector(), self._sim_state
            )
        )

    def time(self) -> float:
        return self.clock.time()

    def run_in_executor(self, executor, func, *args):
        future = super().run_in_executor(executor, func, *args)
        state = self._sim_state
        state.executor_inflight += 1

        def _done(_future) -> None:
            state.executor_inflight -= 1

        future.add_done_callback(_done)
        return future
