#!/usr/bin/env python3
"""Capacity planning with the analytic models (§III's equations).

Given a target element count and a false-positive budget, sweep the
design space — memory, k, g, word size — with the closed forms of
:mod:`repro.analysis` and print the cheapest MPCBF configuration, its
overflow risk (Eq. 6), and how much memory the standard CBF would need
for the same accuracy.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis import (
    cbf_fpr,
    mpcbf_fpr,
    mpcbf_optimal_k,
    n_max_heuristic,
    improved_b1,
)
from repro.analysis.overflow import any_word_overflow_probability
from repro.analysis.saturation import expected_epochs_to_saturation


def plan(n: int, target_fpr: float, word_bits: int = 64) -> None:
    print(f"\nplanning for n={n:,} elements, target FPR <= {target_fpr:.0e}:")
    print(f"{'g':>2} {'k*':>3} {'bits/elem':>10} {'memory':>9} {'b1':>4} "
          f"{'fpr':>10} {'P(overflow)':>12}")
    best = {}
    for g in (1, 2, 3):
        for bits_per_elem in range(16, 200, 4):
            memory = n * bits_per_elem
            try:
                k_opt, fpr = mpcbf_optimal_k(memory, n, word_bits, g=g)
            except Exception:
                continue
            if fpr <= target_fpr:
                l = memory // word_bits
                n_max = n_max_heuristic(n, l, g=g)
                b1 = improved_b1(word_bits, k_opt, n_max, g=g)
                p_of = any_word_overflow_probability(n, l, n_max, g=g)
                print(
                    f"{g:>2} {k_opt:>3} {bits_per_elem:>10} "
                    f"{memory // 8 // 1024:>7}KB {b1:>4} {fpr:>10.2e} "
                    f"{p_of:>12.2e}"
                )
                best[g] = (bits_per_elem, k_opt, fpr)
                break

    # What would the standard CBF need?
    for bits_per_elem in range(16, 600, 4):
        memory = n * bits_per_elem
        from repro.analysis import cbf_optimal_k

        k = cbf_optimal_k(memory, n)
        if cbf_fpr(n, memory, k) <= target_fpr:
            print(
                f"(standard CBF needs {bits_per_elem} bits/elem with k={k} "
                f"= {k} memory accesses per query)"
            )
            break

    if best:
        g, (bpe, k, fpr) = min(best.items(), key=lambda kv: kv[1][0])
        print(
            f"=> cheapest: MPCBF-{g} at {bpe} bits/elem, k={k} "
            f"({g} memory access{'es' if g > 1 else ''}/query, fpr {fpr:.1e})"
        )
        # Lifetime under churn: how many 20%-churn epochs before the
        # first word saturates (first-passage model, docs/hcbf.md).
        if g == 1 and n <= 200_000:
            l = (n * bpe) // word_bits
            lifetime = expected_epochs_to_saturation(
                n, l, n_max_heuristic(n, l), 0.2, horizon=300
            )
            shown = f"{lifetime:.0f}" if lifetime != float("inf") else ">300"
            print(
                f"   churn lifetime (median epochs to first word "
                f"saturation at 20%/epoch): {shown}"
            )


def main() -> None:
    print("MPCBF capacity planner (closed-form, Eq. 1-11)")
    plan(n=100_000, target_fpr=1e-3)
    plan(n=100_000, target_fpr=1e-4)
    plan(n=1_000_000, target_fpr=1e-5)


if __name__ == "__main__":
    main()
