"""Sharded filter bank: hash-routed parallel filters.

A :class:`ShardedFilterBank` splits one logical set across ``s``
independent filter shards.  Keys route to shards by an independent
hash (never one of the shards' own hashes, so routing does not bias
the per-shard distributions), exactly how multi-pipeline packet
processors spread flow state across per-port filters.

Bulk operations are vectorised end-to-end: the whole key batch is
routed, stably grouped by shard with one ``argsort``, handed to each
shard's own bulk path, and results scattered back into input order.

Shard execution has three modes:

* ``executor="thread"``, ``max_workers=1`` (default): sequential.
* ``executor="thread"``, ``max_workers>1``: a thread pool.  Measure
  before enabling: NumPy's gathers do release the GIL, but at typical
  batch sizes the Python-side orchestration dominates and threads add
  overhead (a 2M-probe bulk query over 8 MPCBF shards measures ~2×
  *slower* at ``max_workers=4`` on CPython 3.11).
* ``executor="process"``: a spawn-based process pool over shards whose
  state lives in one :class:`multiprocessing.shared_memory` block
  (columnar-kernel MPCBF shards only — their state is plain fixed-dtype
  arrays, see :mod:`repro.kernels.shmem`).  Workers mutate the shared
  arrays in place, so only the key chunks and small stat deltas cross
  the process boundary.  Crossover heuristic: process dispatch only
  pays off once per-shard chunks amortise the IPC + pickling of the
  keys — batches smaller than ``PROCESS_MIN_BATCH`` (≈64k keys) total
  run on the calling thread even in process mode (numbers in
  ``docs/performance.md``).  Call :meth:`close` (or use the bank as a
  context manager) to tear down the pool and the shared segment.

Error semantics differ by mode on a failing batch (documented, tested):
sequential execution stops at the first failing shard chunk (later
shards' chunks unapplied); pool modes run every shard's chunk and then
raise the failing shard with the lowest index.  Either way each shard
individually preserves its own filter's partial-application semantics.

Semantics are identical to a single filter of ``s``× the memory with
the caveat that per-shard load imbalance (binomial, like the words of
an MPCBF) slightly raises the effective load of the fullest shard.
"""

from __future__ import annotations

import atexit
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    UnsupportedOperationError,
)
from repro.filters.base import CountingFilterBase, FilterBase
from repro.filters.factory import FilterSpec, build_filter
from repro.hashing.encoders import KeyEncoder
from repro.hashing.mixers import derive_seeds, splitmix64, splitmix64_array
from repro.kernels.columnar import SHARED_FIELDS
from repro.kernels.shmem import SharedArrayPack
from repro.memmodel.accounting import AccessStats

__all__ = ["ShardedFilterBank", "PROCESS_MIN_BATCH"]

#: Below this total batch size, process-mode dispatch runs inline: the
#: pool's IPC + key pickling costs more than the kernel work it saves.
PROCESS_MIN_BATCH = 65536

# Worker-process globals, set once per worker by _worker_init.
_WORKER_BANK: "ShardedFilterBank | None" = None
_WORKER_ARENA: SharedArrayPack | None = None


def _worker_cleanup() -> None:
    """Drop every shared-array view before the worker interpreter exits.

    NumPy views keep the segment's buffer exported; without this,
    ``SharedMemory.__del__`` hits a BufferError during shutdown.
    """
    global _WORKER_BANK, _WORKER_ARENA
    if _WORKER_BANK is not None:
        for shard in _WORKER_BANK.shards:
            shard.columns.rebind(
                {
                    field: arr.copy()
                    for field, arr in shard.columns.shareable_arrays().items()
                }
            )
        _WORKER_BANK = None
    if _WORKER_ARENA is not None:
        try:
            _WORKER_ARENA.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        _WORKER_ARENA = None


def _worker_init(arena_name, arena_meta, spec, num_shards) -> None:
    """Pool initializer: rebuild the bank, rebind onto shared arrays."""
    global _WORKER_BANK, _WORKER_ARENA
    _WORKER_ARENA = SharedArrayPack.attach(arena_name, arena_meta)
    views = _WORKER_ARENA.arrays()
    bank = ShardedFilterBank(spec, num_shards)
    for i, shard in enumerate(bank.shards):
        shard.columns.rebind(
            {field: views[f"{i}:{field}"] for field in SHARED_FIELDS}
        )
    _WORKER_BANK = bank
    atexit.register(_worker_cleanup)


def _worker_apply(shard_index: int, opname: str, encoded: np.ndarray):
    """Run one shard chunk in a worker; ship back results + stat deltas.

    The filter state mutates in shared memory; access statistics and
    the overflow/skip counters are worker-local Python objects, so the
    per-call deltas travel back for the parent to fold in.  Library
    errors return as values (picklable via their ``__reduce__``) so the
    parent can apply its cross-shard ordering before raising.
    """
    filt = _WORKER_BANK.shards[shard_index]
    filt.reset_stats()
    pre_overflow = getattr(filt, "overflow_events", 0)
    pre_skipped = getattr(filt, "skipped_deletes", 0)
    result = None
    error = None
    try:
        result = getattr(filt, opname)(encoded)
    except ReproError as exc:
        error = exc
    return (
        result,
        filt.stats,
        getattr(filt, "overflow_events", 0) - pre_overflow,
        getattr(filt, "skipped_deletes", 0) - pre_skipped,
        error,
    )


class ShardedFilterBank:
    """``s`` hash-routed filter shards behaving as one filter.

    Parameters
    ----------
    spec:
        Per-shard filter specification (each shard gets ``spec`` with a
        distinct derived seed; ``spec.memory_bits`` is the *per-shard*
        budget).
    num_shards:
        Number of shards ``s``.
    max_workers:
        Pool width for bulk operations; ``1`` (default) runs shards
        sequentially under ``executor="thread"``.
    executor:
        ``"thread"`` (default) or ``"process"`` — see module docstring.
        Process mode requires columnar-kernel MPCBF shards and lazily
        builds its shared-memory arena + pool on first large dispatch.
    """

    def __init__(
        self,
        spec: FilterSpec,
        num_shards: int,
        *,
        max_workers: int = 1,
        executor: str = "thread",
        encoder: KeyEncoder | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if max_workers < 1:
            raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in ("thread", "process"):
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.spec = spec
        self.num_shards = num_shards
        self.max_workers = max_workers
        self.executor = executor
        self.encoder = encoder or KeyEncoder()
        self._pool: ProcessPoolExecutor | None = None
        self._arena: SharedArrayPack | None = None
        seeds = derive_seeds(spec.seed ^ 0x5348415244, num_shards + 1)
        self._route_seed = seeds[0]
        self.shards: list[FilterBase] = []
        for i in range(num_shards):
            shard_spec = FilterSpec(
                variant=spec.variant,
                memory_bits=spec.memory_bits,
                k=spec.k,
                word_bits=spec.word_bits,
                counter_bits=spec.counter_bits,
                capacity=(
                    max(1, spec.capacity // num_shards)
                    if spec.capacity is not None
                    else None
                ),
                n_max=spec.n_max,
                seed=seeds[i + 1],
                extra=dict(spec.extra),
            )
            self.shards.append(build_filter(shard_spec, encoder=self.encoder))
        self.name = f"{self.shards[0].name}x{num_shards}"

    # -- sizing ----------------------------------------------------------
    @property
    def total_bits(self) -> int:
        """Aggregate memory across shards."""
        return sum(shard.total_bits for shard in self.shards)

    @property
    def num_hashes(self) -> int:
        return self.shards[0].num_hashes

    @property
    def supports_deletion(self) -> bool:
        return isinstance(self.shards[0], CountingFilterBase)

    # -- routing ----------------------------------------------------------
    def shard_of(self, key: object) -> int:
        """Shard index a key routes to."""
        encoded = self.encoder.encode(key)
        return splitmix64(encoded ^ self._route_seed) % self.num_shards

    def _route_array(self, encoded: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = splitmix64_array(encoded ^ np.uint64(self._route_seed))
        return (mixed % np.uint64(self.num_shards)).astype(np.int64)

    def _encode_bulk(self, keys: object) -> np.ndarray:
        if isinstance(keys, np.ndarray) and keys.dtype == np.uint64:
            return keys
        return self.encoder.encode_many(keys)

    # -- scalar API ---------------------------------------------------------
    def insert(self, key: object) -> None:
        """Insert one key into its shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        self.shards[shard].insert_encoded(encoded)

    def query(self, key: object) -> bool:
        """Query one key against its shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        return self.shards[shard].query_encoded(encoded)

    def __contains__(self, key: object) -> bool:
        return self.query(key)

    def delete(self, key: object) -> None:
        """Delete one key from its shard (counting variants only)."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        filt = self.shards[shard]
        if not isinstance(filt, CountingFilterBase):
            raise UnsupportedOperationError(f"{self.name} cannot delete")
        filt.delete_encoded(encoded)

    def count(self, key: object) -> int:
        """Multiplicity estimate from the owning shard."""
        encoded = self.encoder.encode(key)
        shard = splitmix64(encoded ^ self._route_seed) % self.num_shards
        filt = self.shards[shard]
        if not isinstance(filt, CountingFilterBase):
            raise UnsupportedOperationError(f"{self.name} cannot count")
        return filt.count_encoded(encoded)

    # -- process pool ------------------------------------------------------
    def _ensure_process_pool(self) -> None:
        if self._pool is not None:
            return
        for shard in self.shards:
            if getattr(shard, "columns", None) is None:
                raise ConfigurationError(
                    "executor='process' requires columnar-kernel MPCBF "
                    "shards (their state shares as flat arrays; scalar "
                    "HCBFWord objects cannot live in shared memory)"
                )
        arrays = {}
        for i, shard in enumerate(self.shards):
            for field, arr in shard.columns.shareable_arrays().items():
                arrays[f"{i}:{field}"] = arr
        self._arena = SharedArrayPack(arrays)
        views = self._arena.arrays()
        # The parent's shards rebind onto the same physical memory, so
        # local scalar calls and worker bulk calls see one state.
        for i, shard in enumerate(self.shards):
            shard.columns.rebind(
                {field: views[f"{i}:{field}"] for field in SHARED_FIELDS}
            )
        del views
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(self._arena.name, self._arena.meta, self.spec, self.num_shards),
        )

    def close(self) -> None:
        """Tear down the process pool and shared-memory arena (idempotent).

        The shards keep their state: before the segment unlinks, every
        shard rebinds onto private copies of its arrays, so the bank
        stays fully usable (inline) after closing.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._arena is not None:
            for shard in self.shards:
                shard.columns.rebind(
                    {
                        field: arr.copy()
                        for field, arr in shard.columns.shareable_arrays().items()
                    }
                )
            self._arena.close()
            self._arena.unlink()
            self._arena = None

    def __enter__(self) -> "ShardedFilterBank":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- bulk API -------------------------------------------------------------
    def _dispatch(
        self, encoded: np.ndarray, opname: str
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Group keys by shard, run the named bulk op per shard.

        Returns ``(positions, result)`` per shard, where ``positions``
        are the original indices of that shard's keys.
        """
        routes = self._route_array(encoded)
        order = np.argsort(routes, kind="stable")
        sorted_routes = routes[order]
        bounds = np.searchsorted(
            sorted_routes, np.arange(self.num_shards + 1)
        )
        jobs = []
        for shard_index in range(self.num_shards):
            lo, hi = bounds[shard_index], bounds[shard_index + 1]
            if lo == hi:
                continue
            positions = order[lo:hi]
            jobs.append((shard_index, positions, encoded[positions]))
        if (
            self.executor == "process"
            and len(encoded) >= PROCESS_MIN_BATCH
            and len(jobs) > 0
        ):
            return self._dispatch_process(jobs, opname)
        if self.max_workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    (positions, pool.submit(getattr(self.shards[i], opname), chunk))
                    for i, positions, chunk in jobs
                ]
                return [(pos, fut.result()) for pos, fut in futures]
        return [
            (positions, getattr(self.shards[i], opname)(chunk))
            for i, positions, chunk in jobs
        ]

    def _dispatch_process(self, jobs, opname: str):
        """Run shard chunks on the process pool over shared memory.

        Every shard's chunk runs to completion; if any failed, the
        error from the lowest shard index re-raises afterwards (each
        shard's own partial-application semantics are preserved — the
        modes only differ in whether *later shards'* chunks ran).
        """
        self._ensure_process_pool()
        futures = [
            (i, positions, self._pool.submit(_worker_apply, i, opname, chunk))
            for i, positions, chunk in jobs
        ]
        out = []
        first_error = None
        for i, positions, fut in futures:  # jobs are in shard-index order
            result, stats, d_overflow, d_skipped, error = fut.result()
            shard = self.shards[i]
            shard.stats.merge(stats)
            if hasattr(shard, "overflow_events"):
                shard.overflow_events += d_overflow
            if hasattr(shard, "skipped_deletes"):
                shard.skipped_deletes += d_skipped
            if error is not None and first_error is None:
                first_error = error
            out.append((positions, result))
        if first_error is not None:
            raise first_error
        return out

    def insert_many(self, keys: object) -> None:
        """Bulk insert, routed and executed per shard."""
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        self._dispatch(encoded, "insert_many")

    def delete_many(self, keys: object) -> None:
        """Bulk delete (counting variants only)."""
        if not self.supports_deletion:
            raise UnsupportedOperationError(f"{self.name} cannot delete")
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        self._dispatch(encoded, "delete_many")

    def query_many(self, keys: object) -> np.ndarray:
        """Bulk query; results in input order."""
        encoded = self._encode_bulk(keys)
        result = np.zeros(len(encoded), dtype=bool)
        if len(encoded) == 0:
            return result
        for positions, answers in self._dispatch(encoded, "query_many"):
            result[positions] = answers
        return result

    def count_many(self, keys: object) -> np.ndarray:
        """Bulk multiplicity estimates (counting variants only)."""
        if not self.supports_deletion:
            raise UnsupportedOperationError(f"{self.name} cannot count")
        encoded = self._encode_bulk(keys)
        result = np.zeros(len(encoded), dtype=np.int64)
        if len(encoded) == 0:
            return result
        for positions, answers in self._dispatch(encoded, "count_many"):
            result[positions] = answers
        return result

    # -- stats -----------------------------------------------------------------
    @property
    def stats(self) -> AccessStats:
        """Aggregated access statistics across shards."""
        combined = AccessStats()
        for shard in self.shards:
            combined.merge(shard.stats)
        return combined

    def reset_stats(self) -> None:
        for shard in self.shards:
            shard.reset_stats()

    def shard_loads(self, keys: Sequence) -> np.ndarray:
        """Histogram of how a key batch routes across shards."""
        encoded = self._encode_bulk(keys)
        return np.bincount(self._route_array(encoded), minlength=self.num_shards)

    def __repr__(self) -> str:
        return (
            f"<ShardedFilterBank {self.name} shards={self.num_shards} "
            f"bits={self.total_bits}>"
        )
