#!/usr/bin/env python3
"""Line-rate flow membership on a backbone trace (the paper's §IV.D).

Scenario: a flow-measurement system tracks 20K "monitored" flows in a
small on-chip filter and must classify every arriving packet with as
few memory accesses as possible.  We replay a CAIDA-shaped synthetic
trace through a standard CBF and an MPCBF-1 at equal memory and compare
accuracy and access cost — the router use case that motivates the
paper.

Run:  python examples/packet_filtering.py
"""

from __future__ import annotations

import time

from repro import build_suite
from repro.workloads import make_trace_workload


def main() -> None:
    print("generating CAIDA-shaped trace (55K observations, 5K flows)...")
    trace = make_trace_workload(
        n_unique=5_000, n_observations=55_856, n_inserted=2_000, seed=7
    )
    members = trace.member_keys()
    packets = trace.query_keys()
    truth = trace.query_is_member()
    print(
        f"  {trace.n_unique} unique flows, {trace.n_observations} packets, "
        f"{len(members)} flows monitored"
    )

    # 140 Kb of "on-chip SRAM" for every variant (70 bits per monitored
    # flow, the middle of the paper's Fig. 12 range).
    memory_bits = 140_000
    suite = build_suite(
        ["CBF", "PCBF-1", "MPCBF-1", "MPCBF-2"],
        memory_bits,
        k=3,
        capacity=len(members),
        seed=7,
    )

    print(f"\nclassifying packets at {memory_bits // 1000} Kb per filter:")
    print(f"{'filter':10} {'fpr':>10} {'accesses/q':>11} {'Mpkt/s':>8}")
    for name, filt in suite.items():
        filt.insert_many(members)
        filt.reset_stats()
        t0 = time.perf_counter()
        verdict = filt.query_many(packets)
        elapsed = time.perf_counter() - t0
        negatives = ~truth
        fpr = float(verdict[negatives].mean())
        missed = int((~verdict[truth]).sum())
        assert missed == 0, "a Bloom filter must never miss a member"
        rate = len(packets) / elapsed / 1e6
        print(
            f"{name:10} {fpr:10.4%} {filt.stats.query.mean_accesses:11.2f} "
            f"{rate:8.1f}"
        )

    print(
        "\nMPCBF answers every membership query with ~1 word fetch, at a"
        "\nfalse positive rate below the standard CBF's — the paper's"
        "\nheadline trade for line-rate packet processing."
    )


if __name__ == "__main__":
    main()
