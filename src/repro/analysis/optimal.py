"""Optimal hash-function counts (§IV.C, Fig. 9/10).

* For the standard CBF the optimum is the Bloom classic
  ``k = (m/n)·ln 2`` with ``m = M/c`` counters — rounded to the best of
  the two neighbouring integers.
* For MPCBF-g, optimising Eq. (9) in ``k`` is awkward analytically (the
  ``n_max`` heuristic couples into ``b1``), so the paper brute-forces
  the discrete ``k``; we do the same.
"""

from __future__ import annotations

import math

from repro.analysis.fpr import bf_fpr, mpcbf_fpr
from repro.errors import ConfigurationError

__all__ = ["cbf_optimal_k", "mpcbf_optimal_k", "bf_optimal_fpr"]


def cbf_optimal_k(memory_bits: int, n: int, *, counter_bits: int = 4) -> int:
    """Optimal integer ``k`` for a standard CBF of ``M`` bits.

    Evaluates Eq. (1) at ``floor`` and ``ceil`` of ``(m/n)·ln 2`` and
    returns whichever minimises the FPR.
    """
    m = memory_bits // counter_bits
    if m < 1 or n < 1:
        raise ConfigurationError(f"invalid sizing: m={m}, n={n}")
    k_real = (m / n) * math.log(2.0)
    lo = max(1, math.floor(k_real))
    hi = max(1, math.ceil(k_real))
    return min((lo, hi), key=lambda k: bf_fpr(n, m, k))


def bf_optimal_fpr(memory_bits: int, n: int, *, counter_bits: int = 4) -> float:
    """FPR of the standard CBF at its optimal ``k``."""
    m = memory_bits // counter_bits
    return bf_fpr(n, m, cbf_optimal_k(memory_bits, n, counter_bits=counter_bits))


def mpcbf_optimal_k(
    memory_bits: int,
    n: int,
    word_bits: int,
    *,
    g: int = 1,
    k_max: int = 16,
) -> tuple[int, float]:
    """Brute-force the ``k`` minimising the MPCBF-g FPR (Eq. 9).

    Returns ``(k_opt, fpr_at_k_opt)``.  Values of ``k`` that are
    infeasible at this geometry (``b1 < k`` after the ``n_max``
    heuristic, or ``k < g``) are skipped.
    """
    best_k, best_fpr = 0, math.inf
    for k in range(max(1, g), k_max + 1):
        try:
            fpr = mpcbf_fpr(n, memory_bits, word_bits, k, g=g)
        except (ConfigurationError, ValueError):
            continue
        if fpr < best_fpr:
            best_k, best_fpr = k, fpr
    if best_k == 0:
        raise ConfigurationError(
            f"no feasible k in [1, {k_max}] for M={memory_bits}, n={n}, "
            f"w={word_bits}, g={g}"
        )
    return best_k, best_fpr
