"""Partitioned CBF, PCBF-1 / PCBF-g (§III.A of the paper).

The naive one-memory-access CBF: the counter vector is split into ``l``
words of ``w`` bits (``w/c`` counters of ``c`` bits each); a key hashes
to ``g`` words and to ``k`` counters split over them.  Query and update
cost ``g`` word accesses, but the false positive rate is *worse* than
the standard CBF (Fig. 2) because each element's counters are confined
to a short range — the motivation for MPCBF's hierarchical layout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import CountingFilterBase, OverflowPolicy
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import PartitionedHashFamily
from repro.memmodel.accounting import OpKind

__all__ = ["PartitionedCBF"]


class PartitionedCBF(CountingFilterBase):
    """PCBF-g over ``num_words`` words of ``word_bits`` bits.

    Parameters
    ----------
    num_words:
        Number of words ``l``.
    word_bits:
        Word width ``w``; must be divisible by ``counter_bits``.
    k:
        Total number of counter-selecting hash functions.
    g:
        Number of words per key (1 for PCBF-1).
    counter_bits:
        Counter width ``c`` (default 4).
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        k: int,
        *,
        g: int = 1,
        counter_bits: int = 4,
        seed: int = 0,
        overflow: OverflowPolicy | str = OverflowPolicy.RAISE,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if word_bits % counter_bits != 0:
            raise ConfigurationError(
                f"word_bits={word_bits} not divisible by "
                f"counter_bits={counter_bits}"
            )
        self.name = f"PCBF-{g}"
        self.num_words = num_words
        self.word_bits = word_bits
        self.k = k
        self.g = g
        self.counter_bits = counter_bits
        self.counter_limit = (1 << counter_bits) - 1
        self.counters_per_word = word_bits // counter_bits
        if self.counters_per_word < 1:
            raise ConfigurationError("word too small for a single counter")
        self.overflow = OverflowPolicy(overflow)
        self.family = PartitionedHashFamily(
            num_words, self.counters_per_word, k, g=g, seed=seed
        )
        self._counters = np.zeros(
            num_words * self.counters_per_word, dtype=np.int32
        )
        self._budget = HashBitBudget.partitioned(
            num_words, self.counters_per_word, k, g
        )
        self.saturation_events = 0

    @property
    def total_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    @property
    def counters(self) -> np.ndarray:
        """Read-only ``(l, w/c)`` counter matrix view."""
        view = self._counters.reshape(self.num_words, self.counters_per_word)
        view = view.view()
        view.flags.writeable = False
        return view

    def _flat_indices(self, encoded_key: int) -> list[int]:
        words = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        flat: list[int] = []
        for word_index, offsets in zip(words, groups):
            base = word_index * self.counters_per_word
            flat.extend(base + off for off in offsets)
        return flat

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        for idx in self._flat_indices(encoded_key):
            if self._counters[idx] >= self.counter_limit:
                if self.overflow is OverflowPolicy.RAISE:
                    raise CounterOverflowError(idx, self.counter_limit)
                self.saturation_events += 1
            else:
                self._counters[idx] += 1
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.g),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        flat = self._flat_indices(encoded_key)
        for idx in flat:
            if self._counters[idx] == 0:
                raise CounterUnderflowError(idx)
        for idx in flat:
            self._counters[idx] -= 1
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.g),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        words = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        accesses = 0
        result = True
        for word_index, offsets in zip(words, groups):
            accesses += 1
            base = word_index * self.counters_per_word
            if any(self._counters[base + off] == 0 for off in offsets):
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget.total_bits / self.g * accesses,
            hash_calls=self._budget.hash_calls,
        )
        return result

    def count_encoded(self, encoded_key: int) -> int:
        flat = self._flat_indices(encoded_key)
        return int(min(self._counters[idx] for idx in flat))

    # -- bulk -----------------------------------------------------------
    def _flat_indices_array(self, encoded: np.ndarray) -> np.ndarray:
        word_idx, offsets = self.family.locate_array(encoded)
        word_cols = self.family.offset_word_columns()
        words_per_offset = word_idx[:, word_cols]
        return words_per_offset * self.counters_per_word + offsets

    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        flat = self._flat_indices_array(encoded).reshape(-1)
        np.add.at(self._counters, flat, 1)
        exceeded = self._counters > self.counter_limit
        if exceeded.any():
            if self.overflow is OverflowPolicy.RAISE:
                idx = int(np.argmax(exceeded))
                np.subtract.at(self._counters, flat, 1)
                raise CounterOverflowError(idx, self.counter_limit)
            self.saturation_events += int(
                (self._counters[exceeded] - self.counter_limit).sum()
            )
            np.minimum(self._counters, self.counter_limit, out=self._counters)
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.g * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )

    def delete_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        flat = self._flat_indices_array(encoded).reshape(-1)
        np.subtract.at(self._counters, flat, 1)
        if (self._counters < 0).any():
            idx = int(np.argmax(self._counters < 0))
            np.add.at(self._counters, flat, 1)
            raise CounterUnderflowError(idx)
        self.stats.record(
            OpKind.DELETE,
            count=len(encoded),
            word_accesses=float(self.g * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        flat = self._flat_indices_array(encoded)
        positive = self._counters[flat] > 0
        member = positive.all(axis=1)
        word_cols = self.family.offset_word_columns()
        first_fail = np.where(member, self.k - 1, np.argmin(positive, axis=1))
        accesses = word_cols[first_fail] + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget.total_bits / self.g * total_accesses,
            hash_calls=self._budget.hash_calls * len(encoded),
        )
        return member
