"""Fig. 12 — FPR on IP traces, k=3.

Regenerates the rows of the paper's fig12 via
:func:`repro.bench.experiments.fig12` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_fig12(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.fig12, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
