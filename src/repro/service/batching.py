"""Micro-batching coalescer: many in-flight requests → one bulk call.

The daemon's whole performance story lives here.  A single Python-level
filter operation costs microseconds of interpreter overhead per key; the
vectorised ``*_many`` paths amortise that over the batch exactly like
the paper's one-word layout amortises a DRAM row activation over ``k``
probes.  Under concurrent load the server therefore does not execute
requests one at a time — it appends them to a queue, and a single drain
task gathers whatever has accumulated (bounded by ``max_batch`` keys and
``max_delay_us`` of added latency) into one dispatch.

Ordering: batches dispatch strictly in arrival order and a batch only
contains consecutive same-operation requests, so a client that awaits
its INSERT response before sending a QUERY always observes the insert.
All filter access happens on one worker thread (the executor below is
single-threaded), so the hosted filter needs no locks.

Error isolation: the dispatch function receives the batch still split
per request and returns one result *or exception* per request, so one
request's :class:`~repro.errors.CounterUnderflowError` never poisons its
neighbours in the same coalesced batch (see
:meth:`FilterExecutor.apply`).
"""

from __future__ import annotations

import asyncio
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import chain
from typing import Callable

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    UnsupportedOperationError,
)
from repro.filters.base import CountingFilterBase
from repro.observability.logging import get_logger
from repro.observability.spans import span
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import Opcode

__all__ = ["FilterExecutor", "MicroBatcher"]

logger = get_logger("service.batching")


@dataclass
class _Pending:
    op: Opcode
    #: Legacy requests carry a list of byte keys; bulk64 requests carry
    #: the pre-encoded u64 column straight off the wire (zero-copy).
    keys: "list[bytes] | np.ndarray"
    future: asyncio.Future = field(repr=False)
    #: Wire-level request id (see :func:`repro.observability.logging.
    #: new_request_id`); lets a coalesced dispatch log which requests
    #: it fused.
    request_id: str | None = None
    #: Event-loop clock at enqueue; dispatch time minus this is the
    #: latency the coalescer *added* (the ``coalesce_wait`` span).
    enqueued_at: float = 0.0
    #: Optional :class:`~repro.overload.Deadline`.  Checked again at
    #: dispatch time: a request that expired while queued is answered
    #: with :class:`~repro.errors.DeadlineExceededError` *before* the
    #: kernel call, so a saturated queue sheds dead work instead of
    #: computing answers nobody is waiting for.
    deadline: object | None = None


class _Stop:
    """Queue sentinel ending the drain loop."""


class FilterExecutor:
    """Applies one coalesced batch of requests to the hosted filter.

    Runs on the batcher's worker thread.  QUERY batches fuse across
    requests into a single ``query_many`` probe (read-only, so a shared
    failure cannot corrupt state).  INSERT/DELETE apply per request —
    each request still rides its own bulk path — so a mid-batch error is
    attributed to exactly the request that caused it and neighbouring
    requests are never replayed against partially-applied state.  Pass
    ``fuse_mutations=True`` to fuse writes too (worth it only when the
    filter's overflow policies saturate, i.e. bulk inserts cannot raise;
    a fused-write error then fails the whole batch).  A fused mutation
    batch flattens into a single ``insert_many``/``delete_many`` call,
    so the columnar update kernels (:mod:`repro.kernels`) see the whole
    micro-batch in one vectorised pass instead of one small call per
    request — the daemon-side analogue of the bulk fast path.  Fusing
    is incompatible with a WAL — per-request records could not
    faithfully replay an all-or-nothing apply — and is rejected at
    construction.
    """

    def __init__(
        self, filt, *, fuse_mutations: bool = False, wal=None, gate=None
    ) -> None:
        if fuse_mutations and wal is not None:
            # The WAL logs one record per coalesced request, but a fused
            # apply is all-or-nothing: if it raises mid-batch, replaying
            # the records individually would let some succeed, so the
            # recovered (or replicated) state could diverge from the
            # pre-crash primary.  Only the isolated path keeps replay
            # granularity equal to apply granularity.
            raise ConfigurationError(
                "fuse_mutations cannot be combined with a WAL: fused "
                "applies are not replayable record-by-record"
            )
        self.fuse_mutations = fuse_mutations
        #: Optional :class:`~repro.cluster.wal.WriteAheadLog`; when set,
        #: every mutation request appends one record *before* it is
        #: applied, and the per-request result becomes the record's
        #: sequence number (the server's replication hook consumes it).
        self.wal = wal
        #: Optional per-request screen, ``gate(op, keys) -> None`` or
        #: raise — cluster nodes install
        #: :meth:`repro.rebalance.migrator.RebalanceState.gate` so a
        #: request into a moved or fenced key range is rejected *before*
        #: its WAL record exists.  Runs on the worker thread, same as
        #: the apply, so the answer cannot race a fence or epoch install.
        self.gate = gate
        self.set_filter(filt)

    def set_filter(self, filt) -> None:
        """Install (or replace) the hosted filter.

        Must run on the batcher's worker thread once the server is live
        — replicas installing a replication snapshot do exactly that.
        """
        self.filter = filt
        self.supports_deletion = (
            isinstance(filt, CountingFilterBase)
            or getattr(filt, "supports_deletion", False)
        )

    def apply(
        self, op: Opcode, key_lists: list[list[bytes]]
    ) -> list[object]:
        """Return one result or exception per request in the batch."""
        if op == Opcode.QUERY:
            return self._apply_queries(key_lists)
        if op == Opcode.BULK64_COUNT:
            return self._apply_counts(key_lists)
        if op == Opcode.DELETE and not self.supports_deletion:
            exc = UnsupportedOperationError(
                f"{self.filter.name} does not support deletion"
            )
            return [exc for _ in key_lists]
        try:
            if self.fuse_mutations:
                return self._apply_fused(op, key_lists)
            return self._apply_isolated(op, key_lists)
        finally:
            # One durability point per coalesced batch: the WAL's
            # ``batch`` fsync policy amortises the flush the same way
            # the dispatch amortised the per-key interpreter cost.
            if self.wal is not None:
                self.wal.sync_batch()

    def _gate_pass(
        self, op: Opcode, key_lists, results: list[object]
    ) -> list[int]:
        """Indices that clear the gate; failures land in ``results``."""
        if self.gate is None:
            return list(range(len(key_lists)))
        passing: list[int] = []
        for index, keys in enumerate(key_lists):
            try:
                self.gate(op, keys)
                passing.append(index)
            except ReproError as exc:
                results[index] = exc
        return passing

    def _fused_keys(self, key_lists, indices):
        """Fuse the selected requests' keys into one bulk-call column.

        All-legacy batches flatten into one byte-key list (the filter
        encodes the whole column in a single vectorised pass); batches
        with any columnar member concatenate into one ``uint64`` array,
        encoding legacy stragglers through the filter's own encoder so
        the fused keys are bit-identical to the per-request path.
        Returns ``None`` when the batch mixes forms and the hosted
        backend has no encoder (the cluster router) — callers then fall
        back to one bulk call per key form.
        """
        lists = [key_lists[index] for index in indices]
        if not any(isinstance(keys, np.ndarray) for keys in lists):
            return list(chain.from_iterable(lists))
        if len(lists) == 1:
            return lists[0]
        if all(isinstance(keys, np.ndarray) for keys in lists):
            return np.concatenate(lists)
        encoder = getattr(self.filter, "encoder", None)
        if encoder is None:
            return None
        return np.concatenate(
            [
                keys
                if isinstance(keys, np.ndarray)
                else encoder.encode_many(keys)
                for keys in lists
            ]
        )

    def _fused_probe(
        self, probe, key_lists, passing: list[int], dtype
    ) -> np.ndarray:
        """One read-only bulk probe over the fused batch.

        Returns a flat answer array aligned with the concatenation of
        the passing requests' keys.  Normally a single bulk call; the
        mixed-form/no-encoder fallback makes exactly two (one per key
        form) and interleaves the answers back into request order.
        """
        fused = self._fused_keys(key_lists, passing)
        if fused is not None:
            return np.asarray(probe(fused), dtype=dtype)
        counts = [len(key_lists[index]) for index in passing]
        offsets = np.concatenate(([0], np.cumsum(counts)))
        answers = np.empty(offsets[-1], dtype=dtype)
        legacy = [i for i in passing if not isinstance(key_lists[i], np.ndarray)]
        columnar = [i for i in passing if isinstance(key_lists[i], np.ndarray)]
        for group, column in (
            (legacy, list(chain.from_iterable(key_lists[i] for i in legacy))),
            (columnar, np.concatenate([key_lists[i] for i in columnar])
             if columnar else None),
        ):
            if not group:
                continue
            part = np.asarray(probe(column), dtype=dtype)
            pos = 0
            for i in group:
                slot = passing.index(i)
                n = len(key_lists[i])
                answers[offsets[slot] : offsets[slot] + n] = part[pos : pos + n]
                pos += n
        return answers

    def _scatter(
        self, answers: np.ndarray, key_lists, passing: list[int], results
    ) -> None:
        """Slice the fused answer column back out per request (views)."""
        boundaries = np.cumsum(
            [len(key_lists[index]) for index in passing]
        )[:-1]
        for index, part in zip(passing, np.split(answers, boundaries)):
            results[index] = part

    def _apply_queries(self, key_lists) -> list[object]:
        results: list[object] = [None] * len(key_lists)
        passing = self._gate_pass(Opcode.QUERY, key_lists, results)
        if not passing:
            return results
        answers = self._fused_probe(
            self.filter.query_many, key_lists, passing, bool
        )
        self._scatter(answers, key_lists, passing, results)
        return results

    def _apply_counts(self, key_lists) -> list[object]:
        results: list[object] = [None] * len(key_lists)
        count_many = getattr(self.filter, "count_many", None)
        if count_many is None or not self.supports_deletion:
            exc = UnsupportedOperationError(
                f"{self.filter.name} does not support counting"
            )
            return [exc for _ in key_lists]
        passing = self._gate_pass(Opcode.BULK64_COUNT, key_lists, results)
        if not passing:
            return results
        try:
            answers = self._fused_probe(
                count_many, key_lists, passing, np.uint64
            )
        except ReproError as exc:
            for index in passing:
                results[index] = exc
            return results
        self._scatter(answers, key_lists, passing, results)
        return results

    #: WAL/replication record op for a columnar mutation request.
    _COLUMNAR_RECORD = {
        Opcode.INSERT: Opcode.BULK64_INSERT,
        Opcode.DELETE: Opcode.BULK64_DELETE,
    }

    def _log(self, op: Opcode, keys) -> int | None:
        """WAL-append one request's record; returns its sequence."""
        if self.wal is None:
            return None
        if isinstance(keys, np.ndarray):
            op = self._COLUMNAR_RECORD[op]
        return self.wal.append(op, keys)

    def _apply_fused(self, op: Opcode, key_lists) -> list[object]:
        # Never WAL-logged: __init__ rejects fuse_mutations with a WAL.
        # The fused batch rides one bulk call, which on the default
        # columnar backend is a single kernel dispatch for every key in
        # the coalesced micro-batch.
        mutate = (
            self.filter.insert_many
            if op == Opcode.INSERT
            else self.filter.delete_many
        )
        fused = self._fused_keys(key_lists, range(len(key_lists)))
        try:
            if fused is None:
                # Mixed key forms on an encoder-less backend: one bulk
                # call per form is the best available fusion.
                legacy = list(
                    chain.from_iterable(
                        keys
                        for keys in key_lists
                        if not isinstance(keys, np.ndarray)
                    )
                )
                if legacy:
                    mutate(legacy)
                mutate(
                    np.concatenate(
                        [
                            keys
                            for keys in key_lists
                            if isinstance(keys, np.ndarray)
                        ]
                    )
                )
            else:
                mutate(fused)
        except ReproError as exc:
            return [exc for _ in key_lists]
        return [None for _ in key_lists]

    def _apply_isolated(
        self, op: Opcode, key_lists: list[list[bytes]]
    ) -> list[object]:
        results: list[object] = []
        for keys in key_lists:
            if self.gate is not None:
                try:
                    self.gate(op, keys)
                except ReproError as exc:
                    results.append(exc)
                    continue
            seq = self._log(op, keys)
            try:
                if op == Opcode.INSERT:
                    self.filter.insert_many(keys)
                else:
                    self.filter.delete_many(keys)
                results.append(seq)
            except ReproError as exc:
                results.append(exc)
        return results


class MicroBatcher:
    """Gathers concurrent requests and dispatches them as bulk batches.

    Parameters
    ----------
    apply:
        ``apply(op, key_lists) -> list[result | Exception]``, executed
        on the batcher's single worker thread (see
        :class:`FilterExecutor`).
    max_batch:
        Key-count bound per dispatched batch; a batch closes as soon as
        it holds this many keys.
    max_delay_us:
        Upper bound on the coalescing window after the first request of
        a batch arrives — the most latency the daemon will trade for
        amortisation.  The drain task never sleeps the window out: it
        gathers whatever is queued, grants producers a couple of
        event-loop iterations to add more, and dispatches as soon as no
        further requests show up.  0 disables coalescing entirely
        (every request dispatches alone), which is the per-op baseline
        the throughput benchmark compares against.
    metrics:
        Optional :class:`ServiceMetrics` receiving batch-size samples.
    executor:
        Inject a shared worker executor instead of the private
        single-thread pool.  The chaos harness runs every simulated
        node on ONE single-worker executor so cross-node thread
        interleavings are deterministic; an injected executor is never
        shut down by this batcher (its owner does that).
    """

    def __init__(
        self,
        apply: Callable[[Opcode, list[list[bytes]]], list[object]],
        *,
        max_batch: int = 512,
        max_delay_us: float = 200.0,
        metrics: ServiceMetrics | None = None,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {max_delay_us}")
        self._apply = apply
        self.max_batch = max_batch
        self.max_delay_us = max_delay_us
        self.metrics = metrics
        self._queue: asyncio.Queue = asyncio.Queue()
        self._carry: _Pending | None = None
        self._task: asyncio.Task | None = None
        self._owns_executor = executor is None
        self._executor = (
            executor
            if executor is not None
            else ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-filter"
            )
        )
        self._stopping = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Launch the drain task on the running event loop."""
        if self._task is None:
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Drain everything queued, then stop the worker."""
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(_Stop())
        await self._task
        self._task = None
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    def abort(self) -> None:
        """Crash-stop: cancel the drain task and drop queued work.

        A shared (injected) executor is left running — other batchers
        may still depend on it; only a privately owned worker pool is
        torn down.
        """
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._owns_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # -- submission -----------------------------------------------------
    async def submit(
        self,
        op: Opcode,
        keys: list[bytes],
        *,
        request_id: str | None = None,
        deadline=None,
    ) -> object:
        """Enqueue one request; resolves to its per-request result.

        Submissions racing :meth:`stop` fail fast instead of hanging:
        anything enqueued before the stop sentinel still drains, but a
        request arriving after shutdown began has no worker left to
        serve it.  ``request_id`` (optional) travels with the request so
        the dispatch log can attribute the fused batch; ``deadline``
        (optional :class:`~repro.overload.Deadline`) makes the request
        sheddable while it queues.
        """
        if self._task is None:
            raise RuntimeError("MicroBatcher is not running (call start())")
        if self._stopping:
            raise RuntimeError("MicroBatcher is stopping; request rejected")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        await self._queue.put(
            _Pending(
                op=op,
                keys=keys,
                future=future,
                request_id=request_id,
                enqueued_at=loop.time(),
                deadline=deadline,
            )
        )
        return await future

    async def run(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` on the worker thread, serialised after in-flight
        batches — how STATS/SNAPSHOT reads avoid racing mutations."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    # -- drain loop -----------------------------------------------------
    #: Consecutive empty-queue event-loop yields the gather loop grants
    #: producers before dispatching.  A response written by the previous
    #: dispatch reaches a same-host client and comes back as the next
    #: request within a couple of loop iterations; waiting longer than
    #: that (e.g. sleeping out the whole delay window) just adds dead
    #: time once every in-flight request is already in the batch.
    _IDLE_YIELDS = 2

    async def _next_blocking(self):
        if self._carry is not None:
            item, self._carry = self._carry, None
            return item
        return await self._queue.get()

    def _take_ready(self):
        if self._carry is not None:
            item, self._carry = self._carry, None
            return item
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._next_blocking()
            if isinstance(first, _Stop):
                if self._flush_remaining_on_stop():
                    continue
                return
            batch = [first]
            total_keys = len(first.keys)
            if self.max_delay_us > 0:
                deadline = loop.time() + self.max_delay_us / 1e6
                idle_yields = 0
                while total_keys < self.max_batch:
                    item = self._take_ready()
                    if item is None:
                        if loop.time() >= deadline:
                            break
                        if idle_yields >= self._IDLE_YIELDS:
                            break
                        idle_yields += 1
                        await asyncio.sleep(0)
                        continue
                    if isinstance(item, _Stop):
                        self._stopping = True
                        break
                    if item.op != first.op:
                        self._carry = item
                        break
                    idle_yields = 0
                    batch.append(item)
                    total_keys += len(item.keys)
            await self._dispatch(batch, total_keys)
            if self._stopping and self._carry is None and self._queue.empty():
                return

    def _flush_remaining_on_stop(self) -> bool:
        """After a stop sentinel, keep draining if work remains queued."""
        return self._carry is not None or not self._queue.empty()

    def _shed_expired(self, batch: list[_Pending]) -> list[_Pending]:
        """Drop queued requests whose deadline expired; answer them now.

        This is deliberately the last check before the kernel call:
        under overload the coalescer queue is exactly where requests
        age, so this is where a stale budget is most likely to have run
        out — and the cheapest place to notice, since no filter work
        has been spent yet.
        """
        live: list[_Pending] = []
        for pending in batch:
            deadline = pending.deadline
            if deadline is not None and deadline.expired():
                if self.metrics is not None:
                    self.metrics.record_shed("deadline_coalescer")
                if not pending.future.done():
                    pending.future.set_exception(
                        DeadlineExceededError(
                            f"{pending.op.name} deadline expired in the "
                            f"coalescer queue; no work was applied"
                        )
                    )
                continue
            live.append(pending)
        return live

    async def _dispatch(self, batch: list[_Pending], total_keys: int) -> None:
        loop = asyncio.get_running_loop()
        batch = self._shed_expired(batch)
        if not batch:
            return
        total_keys = sum(len(pending.keys) for pending in batch)
        if self.metrics is not None:
            self.metrics.record_batch(len(batch), total_keys)
            dispatched_at = loop.time()
            for pending in batch:
                self.metrics.observe_span(
                    "coalesce_wait", (dispatched_at - pending.enqueued_at) * 1e6
                )
        op = batch[0].op
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "batch_dispatch",
                extra={
                    "op": op.name,
                    "requests": len(batch),
                    "keys": total_keys,
                    "request_ids": [
                        pending.request_id
                        for pending in batch
                        if pending.request_id is not None
                    ],
                },
            )
        key_lists = [pending.keys for pending in batch]
        try:
            with span("filter_execute", self.metrics):
                results = await loop.run_in_executor(
                    self._executor, self._apply, op, key_lists
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded per future
            results = [exc for _ in batch]
        for pending, result in zip(batch, results):
            if pending.future.done():  # client went away mid-flight
                continue
            if isinstance(result, BaseException):
                pending.future.set_exception(result)
            else:
                pending.future.set_result(result)
