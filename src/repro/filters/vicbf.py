"""Variable-Increment CBF (Rottenstreich et al. [23]) — extension baseline.

Instead of incrementing hashed counters by 1, VI-CBF adds a *variable*
increment drawn (per key, per hash) from the sequence
``D_L = {L, L+1, …, 2L−1}``.  Because every increment lies in
``[L, 2L−1]``, a counter value ``c`` observed at query time can rule an
element out in two extra ways beyond ``c == 0``:

* ``c < v`` — the element's own increment ``v`` alone would exceed the
  counter, and
* ``0 < c − v < L`` — the residue after removing ``v`` cannot be a sum
  of increments ≥ ``L``.

This refined test gives VI-CBF a lower FPR than CBF at the same number
of counters, at the price of wider counters — the paper cites it as the
accuracy-focused prior work that still costs ``k`` memory accesses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.base import CountingFilterBase
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import HashFamily
from repro.hashing.mixers import derive_seeds, splitmix64, splitmix64_array
from repro.memmodel.accounting import OpKind

__all__ = ["VariableIncrementCBF"]


class VariableIncrementCBF(CountingFilterBase):
    """VI-CBF with increments from ``D_L = {L, …, 2L−1}``.

    Parameters
    ----------
    num_counters:
        Number of counters ``m``.
    k:
        Number of hash functions.
    L:
        Base increment (the paper's recommended ``L = 4``); the
        increment hash selects uniformly from ``{L, …, 2L−1}``.
    counter_bits:
        Counter width (8 by default — variable increments need more
        headroom than CBF's 4 bits).
    """

    def __init__(
        self,
        num_counters: int,
        k: int,
        *,
        L: int = 4,
        counter_bits: int = 8,
        seed: int = 0,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if L < 2:
            raise ConfigurationError(f"L must be >= 2, got {L}")
        self.name = "VI-CBF"
        self.num_counters = num_counters
        self.k = k
        self.L = L
        self.counter_bits = counter_bits
        self.counter_limit = (1 << counter_bits) - 1
        self.family = HashFamily(num_counters, k, seed=seed)
        self._inc_seeds = derive_seeds(seed ^ 0xA5A5A5A5, k)
        self._inc_seeds_np = np.array(self._inc_seeds, dtype=np.uint64)
        self._counters = np.zeros(num_counters, dtype=np.int64)
        self._budget = HashBitBudget.flat(num_counters, k)

    @property
    def total_bits(self) -> int:
        return self.num_counters * self.counter_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    def _increments(self, encoded_key: int) -> list[int]:
        return [
            self.L + splitmix64(encoded_key ^ s) % self.L
            for s in self._inc_seeds
        ]

    def _increments_array(self, encoded: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = splitmix64_array(
                np.asarray(encoded, dtype=np.uint64)[:, None]
                ^ self._inc_seeds_np[None, :]
            )
        return (mixed % np.uint64(self.L)).astype(np.int64) + self.L

    def _compatible(self, counter: int, increment: int) -> bool:
        """The VI-CBF membership test for one (counter, increment) pair."""
        residue = counter - increment
        return residue == 0 or residue >= self.L

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        indices = self.family.indices(encoded_key)
        increments = self._increments(encoded_key)
        for idx, inc in zip(indices, increments):
            if self._counters[idx] + inc > self.counter_limit:
                raise CounterOverflowError(idx, self.counter_limit)
        for idx, inc in zip(indices, increments):
            self._counters[idx] += inc
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=2 * self.k,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        indices = self.family.indices(encoded_key)
        increments = self._increments(encoded_key)
        for idx, inc in zip(indices, increments):
            if self._counters[idx] < inc:
                raise CounterUnderflowError(idx)
        for idx, inc in zip(indices, increments):
            self._counters[idx] -= inc
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=2 * self.k,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        indices = self.family.indices(encoded_key)
        increments = self._increments(encoded_key)
        accesses = 0
        result = True
        for idx, inc in zip(indices, increments):
            accesses += 1
            if not self._compatible(int(self._counters[idx]), inc):
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget.total_bits / self.k * accesses,
            hash_calls=2 * self.k,
        )
        return result

    def count_encoded(self, encoded_key: int) -> int:
        indices = self.family.indices(encoded_key)
        increments = self._increments(encoded_key)
        # Upper bound: each insertion of this key adds `inc` at each
        # position, so counter // inc bounds the multiplicity.
        return int(
            min(
                int(self._counters[idx]) // inc
                for idx, inc in zip(indices, increments)
            )
        )

    # -- bulk -----------------------------------------------------------
    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        indices = self.family.indices_array(encoded)
        increments = self._increments_array(encoded)
        np.add.at(self._counters, indices.reshape(-1), increments.reshape(-1))
        if (self._counters > self.counter_limit).any():
            idx = int(np.argmax(self._counters > self.counter_limit))
            np.subtract.at(
                self._counters, indices.reshape(-1), increments.reshape(-1)
            )
            raise CounterOverflowError(idx, self.counter_limit)
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=2 * self.k * len(encoded),
        )

    def delete_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        indices = self.family.indices_array(encoded)
        increments = self._increments_array(encoded)
        np.subtract.at(
            self._counters, indices.reshape(-1), increments.reshape(-1)
        )
        if (self._counters < 0).any():
            idx = int(np.argmax(self._counters < 0))
            np.add.at(self._counters, indices.reshape(-1), increments.reshape(-1))
            raise CounterUnderflowError(idx)
        self.stats.record(
            OpKind.DELETE,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=2 * self.k * len(encoded),
        )

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        indices = self.family.indices_array(encoded)
        increments = self._increments_array(encoded)
        counters = self._counters[indices]
        residue = counters - increments
        compatible = (residue == 0) | (residue >= self.L)
        member = compatible.all(axis=1)
        first_fail = np.where(member, self.k - 1, np.argmin(compatible, axis=1))
        accesses = first_fail + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget.total_bits / self.k * total_accesses,
            hash_calls=2 * self.k * len(encoded),
        )
        return member
