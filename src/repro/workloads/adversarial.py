"""Adversarial workload generation for robustness testing.

Partitioned filters concentrate each element's state in one word, which
creates an attack surface flat filters lack: an adversary who can probe
the filter (or knows its seed) can mine keys that all land in the same
word, overflowing it or saturating its first level.  The paper does not
evaluate adversarial inputs; a production-quality release must, so the
test-suite's failure-injection scenarios generate them here.

All miners are brute-force searches over candidate keys — honest (they
use only the public hashing API) and deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.mpcbf import MPCBF
from repro.hashing.families import PartitionedHashFamily

__all__ = [
    "mine_colliding_keys",
    "mine_single_word_flood",
    "hot_key_stream",
]


def mine_colliding_keys(
    family: PartitionedHashFamily,
    target_word: int,
    count: int,
    *,
    start: int = 0,
    limit: int = 50_000_000,
) -> np.ndarray:
    """Find ``count`` encoded keys whose *first* word is ``target_word``.

    Scans encoded-key candidates in batches using the family's own bulk
    path.  Expected work is ``count · num_words`` candidates.
    """
    if not 0 <= target_word < family.num_words:
        raise ConfigurationError(
            f"target_word {target_word} out of range [0, {family.num_words})"
        )
    found: list[np.ndarray] = []
    have = 0
    # Bounded batches: enough to expect several hits per round, capped
    # so a hopeless search cannot allocate unbounded memory before the
    # limit check fires.
    batch = int(min(max(4096, count * family.num_words // 4), 1 << 20, limit))
    position = start
    while have < count:
        if position - start >= limit:
            raise ConfigurationError(
                f"mining exceeded {limit} candidates; is num_words huge?"
            )
        candidates = np.arange(
            position, position + batch, dtype=np.uint64
        )
        words = family.word_indices_array(candidates)[:, 0]
        hits = candidates[words == target_word]
        if len(hits):
            found.append(hits[: count - have])
            have += len(found[-1])
        position += batch
    return np.concatenate(found)


def mine_single_word_flood(filt: MPCBF, *, margin: int = 4) -> np.ndarray:
    """Keys that overflow one word of ``filt`` when inserted.

    Returns ``n_max + margin`` distinct encoded keys all routed to word
    0 of the filter — inserting them must either raise
    ``WordOverflowError`` (policy ``raise``) or saturate the word
    (policy ``saturate``); the failure-injection tests assert both.
    """
    return mine_colliding_keys(filt.family, 0, filt.n_max + margin)


def hot_key_stream(
    n_unique: int,
    length: int,
    hot_fraction: float,
    *,
    seed: int = 0,
) -> np.ndarray:
    """A stream where one key dominates (elephant-flow stress).

    ``hot_fraction`` of the stream is a single key; the rest is uniform
    over the remaining ``n_unique − 1`` keys.  Exercises the per-key
    counter depth (the HCBF hierarchy's worst case is one very hot
    first-level bit).
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    if n_unique < 1 or length < 1:
        raise ConfigurationError("n_unique and length must be >= 1")
    rng = np.random.default_rng(seed)
    n_hot = int(round(hot_fraction * length))
    cold = rng.integers(1, max(2, n_unique), size=length - n_hot)
    stream = np.concatenate([np.zeros(n_hot, dtype=np.int64), cold])
    rng.shuffle(stream)
    # Map ordinals to well-spread encoded keys.
    from repro.hashing.mixers import splitmix64_array

    return splitmix64_array(stream.astype(np.uint64))
