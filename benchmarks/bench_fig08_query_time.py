"""Fig. 8 — execution time of the bulk query set, k=3.

Unlike the other figure targets this one is a true micro-benchmark:
pytest-benchmark times ``query_many`` over the full query set for each
variant at the middle memory point, giving the per-variant query
throughput that Fig. 8 plots (the paper's y-axis is seconds for 1M
queries on an E6300; ours is seconds for the scale's query count on
this machine — the *ordering* is the reproduced shape).
"""

from __future__ import annotations

import pytest

from repro.filters import build_suite
from repro.workloads.synthetic import make_synthetic_workload

_VARIANTS = ["CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"]
_STATE: dict = {}


def _setup(scale):
    if "queries" not in _STATE:
        workload = make_synthetic_workload(
            n_members=scale.synth_members,
            n_queries=scale.synth_queries,
            seed=0,
        )
        memory = scale.synth_memories[len(scale.synth_memories) // 2]
        suite = build_suite(
            _VARIANTS, memory, 3, capacity=scale.synth_members, seed=0
        )
        for filt in suite.values():
            filt.insert_many(workload.members)
        _STATE["queries"] = workload.encoded_queries()
        _STATE["suite"] = suite
    return _STATE["suite"], _STATE["queries"]


@pytest.mark.parametrize("variant", _VARIANTS)
def test_fig08_query_time(benchmark, scale, variant):
    suite, queries = _setup(scale)
    filt = suite[variant]
    benchmark.group = "fig8-bulk-query"
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["queries"] = len(queries)
    result = benchmark(filt.query_many, queries)
    assert len(result) == len(queries)
