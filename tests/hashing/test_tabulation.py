"""Tests for tabulation hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hashing.tabulation import TabulationHash, TabulationHashFamily


class TestTabulationHash:
    def test_deterministic(self):
        h = TabulationHash(seed=1)
        assert h(12345) == h(12345)

    def test_seed_changes_function(self):
        assert TabulationHash(1)(42) != TabulationHash(2)(42)

    def test_zero_key(self):
        # h(0) = XOR of the eight T[i][0] entries — a fixed, generally
        # nonzero value (unlike multiplicative mixers' fixed point).
        h = TabulationHash(seed=3)
        expected = 0
        for i in range(8):
            expected ^= int(h._tables[i][0])
        assert h(0) == expected

    @settings(max_examples=100)
    @given(st.integers(0, 2**64 - 1))
    def test_scalar_matches_array(self, key):
        h = TabulationHash(seed=5)
        arr = h.hash_array(np.array([key], dtype=np.uint64))
        assert int(arr[0]) == h(key)

    def test_linearity_property(self):
        # Simple tabulation is linear over byte-aligned XOR when the
        # differing bytes don't interact: h(x) ^ h(x ^ d) depends only
        # on the changed byte positions.
        h = TabulationHash(seed=7)
        x, y = 0x1122334455667788, 0xAA22334455667788  # differ in top byte
        delta1 = h(x) ^ h(x ^ (0xBB << 56))
        delta2 = h(y) ^ h(y ^ (0xBB << 56))
        assert delta1 == delta2

    def test_avalanche_over_sequential_keys(self):
        h = TabulationHash(seed=9)
        outs = h.hash_array(np.arange(10_000, dtype=np.uint64))
        assert len(np.unique(outs)) == 10_000
        # Low byte uniformity (sequential inputs are the worst case).
        counts = np.bincount((outs & np.uint64(0xFF)).astype(int), minlength=256)
        assert counts.min() > 0.5 * counts.mean()


class TestTabulationHashFamily:
    def test_ranges_and_determinism(self):
        fam = TabulationHashFamily(97, 4, seed=2)
        idx = fam.indices(123)
        assert len(idx) == 4
        assert all(0 <= i < 97 for i in idx)
        assert idx == TabulationHashFamily(97, 4, seed=2).indices(123)

    def test_bulk_matches_scalar(self):
        fam = TabulationHashFamily(1009, 3, seed=4)
        keys = (np.arange(300, dtype=np.uint64) + 7) * np.uint64(0x9E3779B9)
        matrix = fam.indices_array(keys)
        for i in (0, 150, 299):
            assert list(matrix[i]) == fam.indices(int(keys[i]))

    def test_functions_distinct(self):
        fam = TabulationHashFamily(1 << 30, 3, seed=1)
        idx = fam.indices(999)
        assert len(set(idx)) == 3

    def test_uniformity(self):
        fam = TabulationHashFamily(64, 3, seed=0)
        keys = np.arange(30_000, dtype=np.uint64)
        counts = np.bincount(fam.indices_array(keys).reshape(-1), minlength=64)
        assert counts.min() > 0.85 * counts.mean()

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TabulationHashFamily(0, 3)
        with pytest.raises(ConfigurationError):
            TabulationHashFamily(10, 0)

    def test_drop_in_for_bloom_filter(self, small_keys, negative_keys):
        # Swapping the family must preserve Bloom semantics exactly.
        from repro.filters.bloom import BloomFilter

        bf = BloomFilter(4096, 3, seed=1)
        bf.family = TabulationHashFamily(4096, 3, seed=1)
        bf.insert_many(small_keys)
        assert bf.query_many(small_keys).all()
        assert bf.query_many(negative_keys).mean() < 0.01

    def test_drop_in_for_cbf_with_deletion(self, small_keys):
        from repro.filters.cbf import CountingBloomFilter

        cbf = CountingBloomFilter(4096, 3, seed=1)
        cbf.family = TabulationHashFamily(4096, 3, seed=1)
        cbf.insert_many(small_keys)
        cbf.delete_many(small_keys)
        assert not cbf.query_many(small_keys).any()
