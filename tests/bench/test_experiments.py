"""Smoke tests for every experiment driver at a tiny scale.

Each driver must run end-to-end and reproduce the paper's *direction*
(orderings), even at 1/100 of the paper's sizes.  The full shapes are
exercised by the ``benchmarks/`` targets at CI/paper scale.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.scale import Scale

TINY = Scale(
    name="tiny",
    synth_members=2000,
    synth_queries=20_000,
    synth_memories=(80_000, 120_000, 160_000),
    trace_unique=2000,
    trace_observations=38_000,
    trace_inserted=1400,
    trace_memories=(56_000, 84_000, 112_000),
    join_keys=800,
    join_citations=16_000,
    repeats=1,
)


@pytest.fixture(scope="module")
def fig7_report():
    return experiments.fig07(TINY, ks=(3,))


class TestAnalyticDrivers:
    def test_fig02_pcbf_worse_than_cbf(self):
        report = experiments.fig02(TINY)
        for row in report.rows:
            assert row["PCBF-1 w=64"] > row["CBF"]

    def test_fig05_mpcbf_below_cbf(self):
        report = experiments.fig05(TINY)
        for row in report.rows:
            assert row["MPCBF-2 w=64"] < row["CBF"]

    def test_fig06_overflow_decreasing_in_n_max(self):
        report = experiments.fig06(TINY)
        by_config: dict = {}
        for row in report.rows:
            by_config.setdefault(
                (row["w"], row["bits_per_elem"]), []
            ).append(row["p_any_overflow"])
        for series in by_config.values():
            assert series == sorted(series, reverse=True)

    def test_fig09_cbf_k_grows_mpcbf_k_flat(self):
        report = experiments.fig09(TINY)
        cbf_ks = [row["CBF"] for row in report.rows]
        mp1_ks = [row["MPCBF-1"] for row in report.rows]
        assert cbf_ks[-1] > cbf_ks[0]
        assert max(mp1_ks) - min(mp1_ks) <= 2


class TestEmpiricalDrivers:
    def test_fig07_orderings(self, fig7_report):
        for row in fig7_report.rows:
            assert row["PCBF-1"] > row["CBF"], row
            assert row["MPCBF-2"] < row["CBF"], row

    def test_fig07_fpr_decreases_with_memory(self, fig7_report):
        cbf = [row["CBF"] for row in fig7_report.rows]
        assert cbf[-1] < cbf[0]

    def test_fig08_produces_timings(self):
        report = experiments.fig08(TINY)
        for row in report.rows:
            for name in ("CBF", "PCBF-1", "MPCBF-1"):
                assert row[name] > 0

    def test_fig10_runs(self):
        report = experiments.fig10(TINY)
        assert len(report.rows) == len(TINY.synth_memories)
        assert report.notes  # empirical spot checks recorded

    def test_fig11_constant_mpcbf_accesses(self):
        report = experiments.fig11(TINY)
        for row in report.rows:
            assert row["MPCBF-1 acc"] == pytest.approx(1.0, abs=0.05)
            assert row["CBF acc"] > 2.0

    def test_table1_and_table2(self):
        t1 = experiments.table1(TINY)
        t2 = experiments.table2(TINY)
        by = {(r["k"], r["structure"]): r for r in t1.rows}
        assert by[(3, "MPCBF-1")]["measured_accesses"] == pytest.approx(1.0, abs=0.05)
        assert by[(3, "CBF")]["measured_accesses"] > by[(3, "MPCBF-1")]["measured_accesses"]
        by2 = {(r["k"], r["structure"]): r for r in t2.rows}
        assert by2[(3, "CBF")]["measured_accesses"] == pytest.approx(3.0)
        assert by2[(3, "PCBF-2")]["measured_accesses"] == pytest.approx(2.0)

    def test_fig12_and_table3(self):
        fig12 = experiments.fig12(TINY)
        for row in fig12.rows:
            assert row["MPCBF-2"] <= row["CBF"] * 1.5
        table3 = experiments.table3(TINY)
        rows = {r["structure"]: r for r in table3.rows}
        assert rows["MPCBF-1"]["query_accesses"] == pytest.approx(1.0, abs=0.05)
        assert rows["CBF"]["query_accesses"] > 1.5

    def test_table4_join(self):
        report = experiments.table4(TINY)
        rows = {r["structure"]: r for r in report.rows}
        assert rows["CBF"]["fpr"] < 1.0
        assert rows["MPCBF-1"]["fpr"] < rows["CBF"]["fpr"]
        assert (
            rows["MPCBF-1"]["map_output_records"]
            < rows["CBF"]["map_output_records"]
        )
        # All joins produced identical results (asserted inside driver);
        # every row reports the same join cardinality.
        assert len({r["joined_rows"] for r in report.rows}) == 1
