"""Synthetic membership workloads (§IV.A).

The paper synthesises five-byte strings over the alphabet
``[a-zA-Z]``: a test set of 100K *unique* strings inserted into the
filters, a query set of 1M strings of which 80% belong to the test set,
and an update period that deletes 20K strings and inserts 20K fresh
ones, holding the filter population constant.  Ten seeds are averaged.

Everything here is vectorised: strings are generated as a
``(count, length)`` uint8 matrix of alphabet indices and viewed as an
``S<length>`` NumPy array; uniqueness is enforced with ``np.unique``
plus top-up rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.encoders import encode_str_array

__all__ = ["random_strings", "MembershipWorkload", "make_synthetic_workload"]

_ALPHABET = np.frombuffer(
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ", dtype=np.uint8
)


def random_strings(
    count: int,
    *,
    length: int = 5,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Generate ``count`` unique random strings over ``[a-zA-Z]``.

    Parameters
    ----------
    count:
        Number of unique strings to return.
    length:
        String length (5 in the paper).
    rng:
        Source of randomness.
    exclude:
        Optional sorted-or-not array of strings that must not appear
        (used to draw guaranteed non-members and churn replacements).

    Returns
    -------
    numpy.ndarray
        ``S<length>`` array of ``count`` distinct strings, shuffled.
    """
    if count == 0:
        return np.empty(0, dtype=f"S{length}")
    space = float(len(_ALPHABET)) ** length
    if count > space * 0.5:
        raise ConfigurationError(
            f"cannot draw {count} unique strings of length {length} "
            f"(space is only {space:.0f})"
        )
    exclude_set = (
        np.sort(np.asarray(exclude, dtype=f"S{length}"))
        if exclude is not None and len(exclude)
        else None
    )
    collected: list[np.ndarray] = []
    have = 0
    while have < count:
        need = count - have
        batch = max(1024, int(need * 1.1))
        codes = rng.integers(0, len(_ALPHABET), size=(batch, length))
        chars = _ALPHABET[codes]
        strings = chars.view(f"S{length}").reshape(-1)
        strings = np.unique(strings)
        if exclude_set is not None:
            pos = np.searchsorted(exclude_set, strings)
            pos = np.clip(pos, 0, len(exclude_set) - 1)
            strings = strings[exclude_set[pos] != strings]
        if collected:
            seen = np.sort(np.concatenate(collected))
            pos = np.searchsorted(seen, strings)
            pos = np.clip(pos, 0, len(seen) - 1)
            strings = strings[seen[pos] != strings]
        take = strings[: count - have]
        if len(take):
            collected.append(take)
            have += len(take)
    result = np.concatenate(collected)
    rng.shuffle(result)
    return result


@dataclass
class MembershipWorkload:
    """One realisation of the paper's synthetic experiment.

    Attributes
    ----------
    members:
        Keys inserted into the filter (``S<length>`` array, unique).
    queries:
        Query keys; ``query_is_member`` flags ground truth.
    churn_out / churn_in:
        Update period: keys deleted from / inserted into the filter
        between the build and query phases.
    """

    members: np.ndarray
    queries: np.ndarray
    query_is_member: np.ndarray
    churn_out: np.ndarray
    churn_in: np.ndarray
    seed: int

    @property
    def n_members(self) -> int:
        return len(self.members)

    def final_members(self) -> np.ndarray:
        """Membership after the churn phase (what queries see)."""
        kept = np.setdiff1d(self.members, self.churn_out, assume_unique=True)
        return np.concatenate([kept, self.churn_in])

    def encoded_queries(self) -> np.ndarray:
        """Pre-encoded query keys (uint64), computed once per workload."""
        return encode_str_array(self.queries)


def make_synthetic_workload(
    *,
    n_members: int = 100_000,
    n_queries: int = 1_000_000,
    member_fraction: float = 0.8,
    churn_fraction: float = 0.2,
    length: int = 5,
    seed: int = 0,
) -> MembershipWorkload:
    """Build the §IV.A synthetic workload.

    Queries sample the *post-churn* membership for the member portion
    so ground truth stays exact; the non-member portion is drawn
    disjoint from every key ever inserted (no accidental members).
    """
    if not 0.0 <= member_fraction <= 1.0:
        raise ConfigurationError(
            f"member_fraction must be in [0, 1], got {member_fraction}"
        )
    if not 0.0 <= churn_fraction <= 1.0:
        raise ConfigurationError(
            f"churn_fraction must be in [0, 1], got {churn_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_churn = int(round(churn_fraction * n_members))
    members = random_strings(n_members, length=length, rng=rng)
    churn_out = members[rng.choice(n_members, size=n_churn, replace=False)]
    churn_in = random_strings(n_churn, length=length, rng=rng, exclude=members)
    all_inserted = np.concatenate([members, churn_in])

    n_member_queries = int(round(member_fraction * n_queries))
    n_nonmember_queries = n_queries - n_member_queries
    kept = np.setdiff1d(members, churn_out, assume_unique=False)
    final = np.concatenate([kept, churn_in])
    member_queries = final[rng.integers(0, len(final), size=n_member_queries)]
    nonmember_queries = random_strings(
        n_nonmember_queries, length=length, rng=rng, exclude=all_inserted
    )
    queries = np.concatenate([member_queries, nonmember_queries])
    labels = np.zeros(n_queries, dtype=bool)
    labels[:n_member_queries] = True
    order = rng.permutation(n_queries)
    return MembershipWorkload(
        members=members,
        queries=queries[order],
        query_is_member=labels[order],
        churn_out=churn_out,
        churn_in=churn_in,
        seed=seed,
    )
