"""Table I — query overhead, k=3/4.

Regenerates the rows of the paper's table1 via
:func:`repro.bench.experiments.table1` and prints them.  See
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import experiments


def test_table1(benchmark, scale, capsys):
    report = run_once(benchmark, experiments.table1, scale)
    with capsys.disabled():
        print()
        print(report.render())
    assert report.rows
