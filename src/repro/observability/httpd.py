"""Tiny asyncio HTTP/1.1 server for ``/metrics`` and ``/healthz``.

Deliberately not a web framework: Prometheus scrapers and load-balancer
health checks send one short ``GET`` and read one response, so this
implements exactly that — request line, headers to the blank line,
route, respond, ``Connection: close``.  It runs on the daemon's own
event loop next to the wire-protocol listener, reads only monotone
counters, and therefore adds nothing to the request hot path beyond
what the scrape itself costs.

The two callbacks are injected so the server stays ignorant of the
service layer: ``render_metrics`` returns the exposition text,
``health`` returns a JSON-serialisable dict (rendered at ``/healthz``
with status 200, or 503 when it contains ``"status": "draining"``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Callable

__all__ = ["ObservabilityHTTPServer"]

#: Request line + headers cap; a scrape request is a few hundred bytes.
_MAX_HEADER_BYTES = 16 * 1024

_CONTENT_TYPE_EXPOSITION = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityHTTPServer:
    """Serve ``GET /metrics`` and ``GET /healthz`` on an asyncio loop.

    Parameters
    ----------
    render_metrics:
        Zero-arg callable returning the exposition document
        (:func:`~repro.observability.prometheus.render_metrics` bound to
        the daemon's registries).
    health:
        Zero-arg callable returning the health payload dict.
    host, port:
        Bind address; port 0 picks an ephemeral port, read back from
        ``.port`` after :meth:`start`.
    """

    def __init__(
        self,
        render_metrics: Callable[[], str],
        health: Callable[[], dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.render_metrics = render_metrics
        self.health = health
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path = request
            status, content_type, body = self._route(method, path)
            writer.write(_response_bytes(status, content_type, body))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str] | None:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return None
        except asyncio.IncompleteReadError as exc:
            header_blob = exc.partial
            if not header_blob.strip():
                return None
        if len(header_blob) > _MAX_HEADER_BYTES:
            return None
        request_line = header_blob.split(b"\r\n", 1)[0].decode(
            "latin-1", "replace"
        )
        parts = request_line.split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        return method, path

    def _route(self, method: str, path: str) -> tuple[int, str, bytes]:
        if method not in ("GET", "HEAD"):
            return 405, "text/plain; charset=utf-8", b"method not allowed\n"
        if path == "/metrics":
            text = self.render_metrics()
            return 200, _CONTENT_TYPE_EXPOSITION, text.encode("utf-8")
        if path == "/healthz":
            payload = self.health()
            status = 503 if payload.get("status") == "draining" else 200
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            return status, "application/json", body
        return 404, "text/plain; charset=utf-8", b"not found\n"


_REASONS = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}


def _response_bytes(status: int, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
