"""Executable documentation: every fenced ``python`` block must run.

Hand-written docs rot the moment the API moves under them; the fix is
to execute them.  This module extracts every fenced ```python block
from README.md and docs/*.md and runs each one in a fresh namespace
(cwd moved to a tmp dir so snippets may write files freely).  A block
that genuinely cannot run standalone — e.g. it talks to a live daemon —
opts out by placing ``<!-- no-test -->`` on one of the two lines above
the fence; opted-out blocks still show up in the test report as
skipped, so the escape hatch stays visible instead of silent.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

NO_TEST_MARKER = "<!-- no-test -->"


@dataclasses.dataclass
class Snippet:
    path: Path
    lineno: int  # 1-based line of the opening fence
    code: str
    skipped: bool

    @property
    def test_id(self) -> str:
        return f"{self.path.relative_to(ROOT)}:{self.lineno}"


def extract_snippets(path: Path) -> list[Snippet]:
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets: list[Snippet] = []
    inside = False
    start = 0
    block: list[str] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not inside and stripped.startswith("```python"):
            inside = True
            start = index
            block = []
        elif inside and stripped == "```":
            inside = False
            context = lines[max(0, start - 2) : start]
            skipped = any(NO_TEST_MARKER in c for c in context)
            snippets.append(
                Snippet(
                    path=path,
                    lineno=start + 1,
                    code="\n".join(block) + "\n",
                    skipped=skipped,
                )
            )
        elif inside:
            block.append(line)
    if inside:
        raise AssertionError(f"{path}: unterminated ```python fence at line {start + 1}")
    return snippets


def documented_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def all_snippets() -> list[Snippet]:
    out: list[Snippet] = []
    for path in documented_files():
        out.extend(extract_snippets(path))
    return out


SNIPPETS = all_snippets()


def test_docs_contain_executable_snippets():
    """The extraction itself must find something — an empty parametrize
    below would silently pass if the fence syntax drifted."""
    assert len(SNIPPETS) >= 3
    assert any(not s.skipped for s in SNIPPETS)


@pytest.mark.parametrize(
    "snippet",
    [
        pytest.param(
            snippet,
            id=snippet.test_id,
            marks=[pytest.mark.skip(reason=NO_TEST_MARKER)] if snippet.skipped else [],
        )
        for snippet in SNIPPETS
    ],
)
def test_doc_snippet_executes(snippet: Snippet, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # snippets may write files; keep the repo clean
    code = compile(snippet.code, str(snippet.test_id), "exec")
    namespace: dict = {"__name__": "__doc_snippet__"}
    exec(code, namespace)  # noqa: S102 - executing our own documentation
