"""Epoch-fenced live resharding for the cluster ring.

The paper fixes a filter's *internal* partition layout at build time;
the cluster's *external* layout (which node owns which arc of the hash
ring) must instead change while serving traffic.  This package moves
vnode-owned key ranges between nodes with zero acked-write loss:

- :mod:`repro.rebalance.epochs` — versioned, CRC-stamped
  :class:`RingEpoch` topologies, the durable :class:`EpochLog` whose
  append is a plan's commit point, and :func:`compute_moves` to diff
  two epochs into minimal arc moves.
- :mod:`repro.rebalance.migrator` — the node-side engine
  (:class:`RebalanceState`): epoch-fenced write gating
  (``WrongEpochError`` / ``MovedError``), range-filtered WAL streaming,
  durable fences, and idempotent commit with source-side excision.
- :mod:`repro.rebalance.coordinator` — the operator-side
  :class:`Coordinator` that plans join/drain changes, pumps every
  session through PENDING → STREAMING → CATCHUP → FENCED → OWNED, and
  resumes crashed plans from the epoch log.
"""

from repro.rebalance.coordinator import SESSION_STATES, Coordinator
from repro.rebalance.epochs import (
    EpochLog,
    KeyRange,
    KeyRangeSet,
    Move,
    RingEpoch,
    compute_moves,
    hash_key,
)
from repro.rebalance.migrator import (
    RebalanceState,
    decode_mig_header,
    encode_mig_header,
    mig_record_keys,
)

__all__ = [
    "Coordinator",
    "SESSION_STATES",
    "EpochLog",
    "KeyRange",
    "KeyRangeSet",
    "Move",
    "RingEpoch",
    "compute_moves",
    "hash_key",
    "RebalanceState",
    "encode_mig_header",
    "decode_mig_header",
    "mig_record_keys",
]
