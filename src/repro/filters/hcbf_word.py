"""Hierarchical Counting Bloom Filter word (§III.B.1 / §III.B.3).

One HCBF occupies a single ``w``-bit machine word and replaces ``w/4``
fixed 4-bit counters with:

* a first-level membership bit-vector ``v1`` of ``b1`` bits — the only
  part a membership query ever reads, and
* a popcount-indexed unary hierarchy: every **1** bit at level ``j``
  owns exactly one child slot at level ``j+1``, located at index
  ``popcount(level j bits before it)``.  A counter's value is the
  length of the run of 1s along its child path.

Each hash insertion flips exactly one 0→1 somewhere on the path and
appends exactly one new (0) child slot at the next level, so the
hierarchy region consumes exactly ``k × (elements stored)`` bits.  The
*improved* layout (§III.B.3) exploits this to maximise
``b1 = w − k·n_max``, where ``n_max`` bounds the elements per word.

Representation: each level is an arbitrary-precision Python int (bit
``i`` of the int is position ``i``) plus an explicit size.  Popcounts
use ``int.bit_count()`` — the same primitive as the hardware popcount
instruction the paper relies on.
"""

from __future__ import annotations

import math

from repro.errors import (
    ConfigurationError,
    CounterUnderflowError,
    WordOverflowError,
)

__all__ = ["improved_first_level_size", "HCBFWord"]


def improved_first_level_size(word_bits: int, hashes_per_word: int, n_max: int) -> int:
    """Maximised first-level size ``b1 = w − k·n_max`` (§III.B.3).

    ``hashes_per_word`` is ``k`` for MPCBF-1 and ``ceil(k/g)`` for
    MPCBF-g (the paper's ``⌈k/g⌉·n'_max`` term).
    """
    b1 = word_bits - hashes_per_word * n_max
    if b1 < hashes_per_word:
        raise ConfigurationError(
            f"w={word_bits}, k={hashes_per_word}, n_max={n_max} leaves "
            f"b1={b1} < k first-level bits; decrease n_max or k"
        )
    return b1


class HCBFWord:
    """One hierarchical counting word.

    Parameters
    ----------
    word_bits:
        Total width ``w`` of the word.
    first_level_bits:
        Size ``b1`` of the first-level membership vector; the remaining
        ``w − b1`` bits form the hierarchy budget.
    index:
        Position of this word inside its MPCBF (used in error messages).
    """

    __slots__ = ("word_bits", "first_level_bits", "index", "_levels", "_sizes")

    def __init__(self, word_bits: int, first_level_bits: int, *, index: int = 0) -> None:
        if first_level_bits < 1:
            raise ConfigurationError(
                f"first_level_bits must be >= 1, got {first_level_bits}"
            )
        if first_level_bits > word_bits:
            raise ConfigurationError(
                f"first_level_bits={first_level_bits} exceeds word_bits={word_bits}"
            )
        self.word_bits = word_bits
        self.first_level_bits = first_level_bits
        self.index = index
        # _levels[j] is the bitmap of level j+1 in paper numbering;
        # _sizes[j] its current size in bits. Level 0 has fixed size b1.
        self._levels: list[int] = [0]
        self._sizes: list[int] = [first_level_bits]

    # -- introspection ---------------------------------------------------
    @property
    def hierarchy_capacity_bits(self) -> int:
        """Bits available to the hierarchy: ``w − b1``."""
        return self.word_bits - self.first_level_bits

    @property
    def hierarchy_bits_used(self) -> int:
        """Bits currently consumed by levels 2..d."""
        return sum(self._sizes[1:])

    @property
    def bits_free(self) -> int:
        """Remaining hierarchy budget."""
        return self.hierarchy_capacity_bits - self.hierarchy_bits_used

    @property
    def depth(self) -> int:
        """Number of levels currently materialised (≥ 1)."""
        return len(self._levels)

    def level_sizes(self) -> tuple[int, ...]:
        """Current per-level sizes ``(b1, |v2|, …, |vd|)``."""
        return tuple(self._sizes)

    def level_bits(self, level: int) -> int:
        """Raw bitmap of one level (tests and invariant checks)."""
        return self._levels[level]

    @property
    def stored_hashes(self) -> int:
        """Total hash insertions currently stored (= hierarchy bits used)."""
        return self.hierarchy_bits_used

    def first_level_value(self) -> int:
        """The membership vector as an int (bit i = position i)."""
        return self._levels[0]

    # -- internal helpers -------------------------------------------------
    def _get(self, level: int, pos: int) -> int:
        return (self._levels[level] >> pos) & 1

    def _ones_before(self, level: int, pos: int) -> int:
        return (self._levels[level] & ((1 << pos) - 1)).bit_count()

    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < self.first_level_bits:
            raise ValueError(
                f"bit position {pos} out of range [0, {self.first_level_bits})"
            )

    def _insert_zero_slot(self, level: int, slot: int) -> None:
        """Insert a 0 bit at ``slot`` in ``level``, shifting higher bits up."""
        if level == len(self._levels):
            self._levels.append(0)
            self._sizes.append(0)
        bits = self._levels[level]
        low = bits & ((1 << slot) - 1)
        high = bits >> slot
        self._levels[level] = (high << (slot + 1)) | low
        self._sizes[level] += 1

    def _remove_slot(self, level: int, slot: int) -> None:
        """Remove the bit at ``slot`` in ``level``, shifting higher bits down."""
        bits = self._levels[level]
        low = bits & ((1 << slot) - 1)
        high = bits >> (slot + 1)
        self._levels[level] = (high << slot) | low
        self._sizes[level] -= 1
        # Drop trailing empty levels so depth reflects real occupancy.
        while len(self._levels) > 1 and self._sizes[-1] == 0:
            self._levels.pop()
            self._sizes.pop()

    # -- operations --------------------------------------------------------
    def insert_bit(self, pos: int) -> tuple[int, float]:
        """Increment the counter at first-level position ``pos``.

        Returns ``(new_counter_value, traversal_bits)`` where
        ``traversal_bits`` is the extra access bandwidth (in hash/index
        bits, ``Σ log2 |v_j|`` over traversed deeper levels) the paper
        charges updates for.

        Raises
        ------
        WordOverflowError
            If the hierarchy budget ``w − b1`` is exhausted.
        """
        self._check_pos(pos)
        if self.bits_free < 1:
            raise WordOverflowError(self.index, self.hierarchy_capacity_bits)
        level, p = 0, pos
        traversal_bits = 0.0
        while self._get(level, p):
            p = self._ones_before(level, p)
            level += 1
            if self._sizes[level] > 1:
                traversal_bits += math.log2(self._sizes[level])
        self._levels[level] |= 1 << p
        child_slot = self._ones_before(level, p)
        self._insert_zero_slot(level + 1, child_slot)
        return level + 1, traversal_bits

    def delete_bit(self, pos: int) -> tuple[int, float]:
        """Decrement the counter at first-level position ``pos``.

        Returns ``(remaining_counter_value, traversal_bits)``.

        Raises
        ------
        CounterUnderflowError
            If the counter is already zero (deleting a never-inserted
            element).
        """
        self._check_pos(pos)
        if not self._get(0, pos):
            raise CounterUnderflowError(pos)
        level, p = 0, pos
        traversal_bits = 0.0
        while True:
            child = self._ones_before(level, p)
            if level + 1 < len(self._levels) and self._get(level + 1, child):
                level, p = level + 1, child
                if self._sizes[level] > 1:
                    traversal_bits += math.log2(self._sizes[level])
            else:
                break
        # (level, p) is the deepest 1 on the path; its child slot holds 0.
        self._remove_slot(level + 1, child)
        self._levels[level] &= ~(1 << p)
        return level, traversal_bits

    def count(self, pos: int) -> int:
        """Counter value at first-level position ``pos``."""
        self._check_pos(pos)
        value = 0
        level, p = 0, pos
        while level < len(self._levels) and self._get(level, p):
            value += 1
            p = self._ones_before(level, p)
            level += 1
        return value

    def query_bit(self, pos: int) -> bool:
        """Membership test of one first-level bit (the only query read)."""
        self._check_pos(pos)
        return bool(self._get(0, pos))

    # -- validation ---------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation.

        1. Level j+1 has exactly ``popcount(level j)`` slots (every 1
           owns one child, every 0 owns none).
        2. No level bitmap has bits beyond its size.
        3. Hierarchy usage never exceeds the budget.
        4. The deepest level contains no 1s without materialised children
           only if it is the last level (its 1s' children would be the
           next level, created lazily on first flip — enforced by (1)
           applied through the chain).
        """
        for j, (bits, size) in enumerate(zip(self._levels, self._sizes)):
            assert bits >> size == 0, f"level {j} has bits beyond size {size}"
            if j + 1 < len(self._levels):
                assert self._sizes[j + 1] == bits.bit_count(), (
                    f"level {j + 1} size {self._sizes[j + 1]} != "
                    f"popcount(level {j}) = {bits.bit_count()}"
                )
            else:
                assert bits.bit_count() == 0 or j == 0 or True
        if len(self._levels) > 1:
            assert self._levels[-1].bit_count() == 0 or len(self._levels) >= 1
            # The last level's 1s must have zero children, i.e. if any 1
            # exists at the last level the invariant chain would have
            # created a next level; so the last level must be all zeros
            # unless it is level 0.
            assert self._levels[-1].bit_count() == 0, (
                "deepest level must be all child slots (zeros)"
            )
        assert self.hierarchy_bits_used <= self.hierarchy_capacity_bits

    def __repr__(self) -> str:
        return (
            f"<HCBFWord idx={self.index} w={self.word_bits} "
            f"b1={self.first_level_bits} used={self.hierarchy_bits_used}/"
            f"{self.hierarchy_capacity_bits} depth={self.depth}>"
        )
