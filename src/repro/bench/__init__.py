"""Benchmark harness: one driver per table/figure of the paper.

:mod:`repro.bench.experiments` exposes ``fig02()`` … ``table4()``,
each returning an :class:`~repro.bench.reporting.ExperimentReport`
whose rows are the series/columns the paper plots.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets;
``python -m repro.bench`` prints every report.

Experiment scale is controlled by the ``REPRO_SCALE`` environment
variable: ``ci`` (default — minutes, shapes preserved) or ``paper``
(the paper's exact n/m/query counts — slower).
"""

from repro.bench.reporting import ExperimentReport, format_table
from repro.bench.scale import Scale, current_scale
from repro.bench import experiments

__all__ = [
    "ExperimentReport",
    "format_table",
    "Scale",
    "current_scale",
    "experiments",
]
