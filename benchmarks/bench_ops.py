"""Micro-benchmarks: per-variant insert / query / delete throughput.

Not a paper figure — engineering benchmarks guarding the bulk fast
paths (the NumPy mirror gather, ``np.add.at`` counter updates, and the
scalar HCBF hierarchy walk) against regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters import build_suite

_MEMORY = 1 << 21
_N = 20_000
_VARIANTS = ["CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"]


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.integers(1, 2**63, size=_N).astype(np.uint64)


@pytest.fixture(scope="module")
def probe_keys():
    rng = np.random.default_rng(1)
    return rng.integers(1, 2**63, size=_N).astype(np.uint64) | np.uint64(1 << 63)


@pytest.mark.parametrize("variant", _VARIANTS)
def test_bulk_insert(benchmark, variant, keys):
    benchmark.group = "bulk-insert"

    def build_and_fill():
        suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
        suite[variant].insert_many(keys)
        return suite[variant]

    filt = benchmark(build_and_fill)
    assert filt.query_encoded(int(keys[0]))


@pytest.mark.parametrize("variant", _VARIANTS)
def test_bulk_query(benchmark, variant, keys, probe_keys):
    benchmark.group = "bulk-query"
    suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
    filt = suite[variant]
    filt.insert_many(keys)
    result = benchmark(filt.query_many, probe_keys)
    assert len(result) == _N


@pytest.mark.parametrize("variant", ["CBF", "PCBF-1", "MPCBF-1"])
def test_scalar_query(benchmark, variant, keys):
    benchmark.group = "scalar-query"
    suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
    filt = suite[variant]
    filt.insert_many(keys)
    key = int(keys[123])
    assert benchmark(filt.query_encoded, key)


@pytest.mark.parametrize("variant", ["CBF", "PCBF-1", "MPCBF-1", "MPCBF-2"])
def test_bulk_delete(benchmark, variant, keys):
    benchmark.group = "bulk-delete"

    def cycle():
        suite = build_suite([variant], _MEMORY, 3, capacity=_N, seed=0)
        filt = suite[variant]
        filt.insert_many(keys)
        filt.delete_many(keys)
        return filt

    filt = benchmark(cycle)
    assert not filt.query_encoded(int(keys[0]))


def test_hcbf_word_insert_delete(benchmark):
    """Hot loop of the scalar path: one hierarchy insert+delete."""
    from repro.filters.hcbf_word import HCBFWord

    benchmark.group = "hcbf-word"
    word = HCBFWord(64, 40)
    for pos in (1, 5, 9, 13):
        word.insert_bit(pos)

    def cycle():
        word.insert_bit(5)
        word.delete_bit(5)

    benchmark(cycle)
    word.check_invariants()
