"""Ablation: long-run churn stability (beyond the paper's single step).

Wraps :func:`repro.bench.ablations.ablation_churn`; measures the
first-passage saturation effect the Eq. 11 snapshot bound does not
cover.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.ablations import ablation_churn


def test_ablation_churn(benchmark, scale, capsys):
    report = run_once(benchmark, ablation_churn, scale)
    with capsys.disabled():
        print()
        print(report.render())
    rows = {r["structure"]: r for r in report.rows}
    cbf = rows.pop("CBF")
    assert cbf["fpr_final"] <= cbf["fpr_epoch0"] + 0.01  # no rot
    tight = next(r for name, r in rows.items() if "tight" in name)
    safe = next(r for name, r in rows.items() if "safe" in name)
    assert tight["saturated_words"] >= safe["saturated_words"]
