"""Integration: a live daemon scraped over HTTP, logs carrying request ids.

The acceptance bar from the observability design: `curl /metrics`
against a serving daemon returns valid Prometheus text exposition with
request-latency histograms, per-op counters, and AccessStats-derived
word-access counters; /healthz answers; JSON logs show which request
ids a coalesced batch fused.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging

from repro.filters.factory import FilterSpec, build_filter
from repro.observability.logging import configure_json_logging
from repro.observability.prometheus import parse_exposition
from repro.service.client import AsyncFilterClient
from repro.service.server import FilterServer


def make_filter():
    return build_filter(
        FilterSpec(
            variant="MPCBF-1",
            memory_bits=32 * 8192,
            k=3,
            capacity=2000,
            seed=7,
            extra={"word_overflow": "saturate"},
        )
    )


async def http_get(port: int, path: str) -> tuple[int, dict[str, str], bytes]:
    """Minimal HTTP client: one GET, read to EOF (server closes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


class TestMetricsEndpoint:
    def test_scrape_during_live_traffic(self, tmp_path):
        async def main():
            server = FilterServer(
                make_filter(),
                port=0,
                metrics_port=0,
                snapshot_path=str(tmp_path / "obs.snap"),
                max_delay_us=500.0,
            )
            await server.start()

            async def traffic(c: int):
                async with AsyncFilterClient(port=server.port) as client:
                    mine = [b"c%d-%d" % (c, i) for i in range(80)]
                    await client.insert_many(mine)
                    await client.query_many(mine)
                    await client.delete_many(mine[:20])

            await asyncio.gather(*[traffic(c) for c in range(4)])
            async with AsyncFilterClient(port=server.port) as client:
                await client.snapshot()

            status, headers, body = await http_get(server.metrics_port, "/metrics")
            health_status, _, health_body = await http_get(
                server.metrics_port, "/healthz"
            )
            missing_status, _, _ = await http_get(server.metrics_port, "/nope")
            await server.stop()
            return status, headers, body, health_status, health_body, missing_status

        status, headers, body, health_status, health_body, missing_status = (
            asyncio.run(main())
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert int(headers["content-length"]) == len(body)

        families = parse_exposition(body.decode("utf-8"))
        # Per-op request counters (BATCH carries the bulk ops).
        ops = {l["op"]: v for l, v in families["repro_requests_total"]}
        assert ops["BATCH"] == 12.0  # 4 clients x (insert+query+delete)
        assert ops["SNAPSHOT"] == 1.0
        # Request-latency histogram: cumulative, count matches ops.
        batch_count = [
            v
            for l, v in families["repro_request_latency_seconds_count"]
            if l.get("op") == "BATCH"
        ]
        assert batch_count == [12.0]
        # AccessStats-derived word-access counters are non-zero.
        accesses = {
            l["kind"]: v for l, v in families["repro_word_accesses_total"]
        }
        assert accesses["insert"] >= 320.0  # >= 1 access/insert x 4x80
        assert accesses["query"] > 0
        assert accesses["delete"] > 0
        # Span instrumentation fed the exporter.
        span_counts = {
            l["span"]: v
            for l, v in families["repro_span_duration_seconds_count"]
        }
        for expected in ("protocol_decode", "coalesce_wait", "filter_execute", "snapshot_write"):
            assert span_counts.get(expected, 0) > 0, expected
        # Snapshot freshness from the on-demand SNAPSHOT op.
        assert families["repro_snapshots_written_total"][0][1] == 1.0
        assert families["repro_snapshot_age_seconds"][0][1] >= 0.0

        assert health_status == 200
        health = json.loads(health_body)
        assert health["status"] == "ok"
        assert health["filter"] == "MPCBF-1"
        assert missing_status == 404

    def test_healthz_drains_to_503_on_stop(self):
        async def main():
            server = FilterServer(make_filter(), port=0, metrics_port=0)
            await server.start()
            payload_live = server._health()
            await server.stop()
            payload_draining = server._health()
            return payload_live, payload_draining

        live, draining = asyncio.run(main())
        assert live["status"] == "ok"
        assert draining["status"] == "draining"

    def test_no_metrics_port_means_no_endpoint(self):
        async def main():
            server = FilterServer(make_filter(), port=0)
            await server.start()
            assert server.metrics_http is None
            assert server.metrics_port is None
            await server.stop()

        asyncio.run(main())

    def test_method_not_allowed(self):
        async def main():
            server = FilterServer(make_filter(), port=0, metrics_port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.metrics_port
            )
            writer.write(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await server.stop()
            return raw

        raw = asyncio.run(main())
        assert raw.startswith(b"HTTP/1.1 405")


class TestStructuredLogs:
    def test_batch_dispatch_logs_fused_request_ids(self):
        stream = io.StringIO()
        handler = configure_json_logging(stream, level=logging.DEBUG)
        try:

            async def main():
                server = FilterServer(
                    make_filter(), port=0, max_delay_us=2000.0
                )
                await server.start()

                async def one_insert(c: int):
                    async with AsyncFilterClient(port=server.port) as client:
                        await client.insert(b"log-%d" % c)

                await asyncio.gather(*[one_insert(c) for c in range(6)])
                await server.stop()

            asyncio.run(main())
        finally:
            logging.getLogger("repro").removeHandler(handler)

        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        dispatches = [e for e in events if e["event"] == "batch_dispatch"]
        assert dispatches, "expected batch_dispatch events"
        fused_ids = [rid for e in dispatches for rid in e["request_ids"]]
        assert len(fused_ids) == 6  # every insert's id appears exactly once
        assert len(set(fused_ids)) == 6
        # Request events carry the same ids the dispatch fused.
        request_ids = {
            e["request_id"] for e in events if e["event"] == "request"
        }
        assert set(fused_ids) <= request_ids
        # Lifecycle events present.
        assert any(e["event"] == "server_started" for e in events)
        assert any(e["event"] == "server_stopped" for e in events)
