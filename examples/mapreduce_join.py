#!/usr/bin/env python3
"""Bloom-filtered reduce-side join in MapReduce (the paper's §V).

Joins an NBER-shaped citation relation against a patent key set on the
bundled mini MapReduce engine, three ways: unfiltered, CBF-filtered,
and MPCBF-filtered.  The filter is broadcast to map tasks via
DistributedCache and prunes non-joining records *before* the shuffle —
the map-output and execution-time reductions of Table IV.

Run:  python examples/mapreduce_join.py
"""

from __future__ import annotations

from repro import CountingBloomFilter, MPCBF
from repro.mapreduce import LocalMapReduceEngine, reduce_side_join
from repro.workloads import make_patent_dataset


def main() -> None:
    print("generating NBER-shaped citation data...")
    dataset = make_patent_dataset(
        n_keys=5_000, n_citations=100_000, hit_fraction=0.35, seed=11
    )
    print(
        f"  {len(dataset.patents)} patents (join keys), "
        f"{len(dataset.citations)} citations, "
        f"hit ratio {dataset.hit_ratio:.1%}"
    )

    engine = LocalMapReduceEngine(num_map_tasks=6, num_reduce_tasks=3)
    memory_bits = len(dataset.patents) * 10  # tight, like the paper
    num_words = memory_bits // 64

    filters = {
        "none": None,
        "CBF": CountingBloomFilter(memory_bits // 4, 3, seed=1),
        # Insert-only workload: average-case n_max sizing + saturate
        # maximises the first level (see DESIGN.md).
        "MPCBF-1": MPCBF(
            num_words,
            64,
            3,
            n_max=max(1, round(len(dataset.patents) / num_words)),
            seed=1,
            word_overflow="saturate",
        ),
    }

    print(f"\nreduce-side join with {memory_bits // 1000} Kb filters:")
    header = (
        f"{'filter':8} {'fpr':>8} {'map outputs':>12} {'shuffle KB':>11} "
        f"{'modelled s':>11} {'joined':>8}"
    )
    print(header)
    baseline_rows = None
    for name, filt in filters.items():
        report = reduce_side_join(dataset, filt, engine=engine)
        if baseline_rows is None:
            baseline_rows = report.joined_rows
        assert report.joined_rows == baseline_rows, "filtering lost join rows!"
        fpr = f"{report.filter_fpr:.1%}" if filt is not None else "-"
        print(
            f"{name:8} {fpr:>8} {report.map_output_records:12d} "
            f"{report.shuffle_bytes / 1024:11.0f} "
            f"{report.modelled_seconds:11.3f} {report.joined_rows:8d}"
        )

    print(
        "\nevery variant produced the identical join result (Bloom filters"
        "\nnever drop true matches); the filtered jobs shuffled far fewer"
        "\nrecords, and MPCBF pruned more than CBF at the same memory."
    )


if __name__ == "__main__":
    main()
