"""Codec roundtrips and error-code mapping for the migration opcodes."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError, MovedError, WrongEpochError
from repro.rebalance.migrator import decode_mig_header, encode_mig_header
from repro.service.protocol import (
    REBALANCE_OPS,
    RECORD_OPS,
    ErrorCode,
    Opcode,
    ProtocolError,
    decode_migrate_apply_body,
    decode_migrate_commit_body,
    decode_migrate_read_resp,
    decode_migrate_records,
    decode_ring_epoch_set,
    encode_migrate_apply_body,
    encode_migrate_commit_body,
    encode_migrate_read_resp,
    encode_migrate_records,
    encode_ring_epoch_set,
    error_code_for,
)

RECORDS = [
    (7, Opcode.INSERT, [b"alpha", b"beta"]),
    (9, Opcode.DELETE, [b"gamma"]),
    (12, Opcode.MIG_INSERT, [b"header-ish", b"delta"]),
]


class TestCodecs:
    def test_migrate_records_roundtrip(self):
        blob = encode_migrate_records(RECORDS)
        assert decode_migrate_records(blob) == RECORDS

    def test_migrate_records_reject_non_record_ops(self):
        with pytest.raises(ProtocolError):
            encode_migrate_records([(1, Opcode.QUERY, [b"x"])])

    def test_migrate_records_reject_trailing_bytes(self):
        blob = encode_migrate_records(RECORDS) + b"!"
        with pytest.raises(ProtocolError):
            decode_migrate_records(blob)

    def test_apply_body_roundtrip(self):
        blob = encode_migrate_apply_body("join-v1-v2-a-b", RECORDS)
        plan, records = decode_migrate_apply_body(blob)
        assert plan == "join-v1-v2-a-b"
        assert records == RECORDS

    def test_read_resp_roundtrip(self):
        blob = encode_migrate_read_resp(41, 97, RECORDS)
        assert decode_migrate_read_resp(blob) == (41, 97, RECORDS)

    def test_commit_body_roundtrip(self):
        meta = {"plan": "p", "role": "src", "excise_through": 5}
        blob = encode_migrate_commit_body(meta, b"\x01\x02epoch")
        back_meta, back_blob = decode_migrate_commit_body(blob)
        assert back_meta == meta
        assert back_blob == b"\x01\x02epoch"

    def test_ring_epoch_set_roundtrip(self):
        blob = encode_ring_epoch_set("shard-a", b"EPOCHBYTES")
        assert decode_ring_epoch_set(blob) == ("shard-a", b"EPOCHBYTES")

    def test_mig_header_roundtrip(self):
        blob = encode_mig_header(123456, "drain-v3-v4-b-a")
        assert decode_mig_header(blob) == (123456, "drain-v3-v4-b-a")


class TestWireContract:
    def test_mig_ops_are_record_ops(self):
        assert Opcode.MIG_INSERT in RECORD_OPS
        assert Opcode.MIG_DELETE in RECORD_OPS

    def test_rebalance_opcode_set(self):
        assert set(REBALANCE_OPS) == {
            Opcode.RING_EPOCH,
            Opcode.MIGRATE_BEGIN,
            Opcode.MIGRATE_READ,
            Opcode.MIGRATE_APPLY,
            Opcode.MIGRATE_FENCE,
            Opcode.MIGRATE_COMMIT,
        }

    def test_error_codes_preserve_specificity(self):
        # MovedError subclasses WrongEpochError subclasses ClusterError;
        # the wire code must keep the most specific class.
        assert error_code_for(MovedError("m")) == ErrorCode.MOVED
        assert error_code_for(WrongEpochError("w")) == ErrorCode.WRONG_EPOCH
        assert error_code_for(ClusterError("c")) not in (
            ErrorCode.MOVED,
            ErrorCode.WRONG_EPOCH,
        )
