"""Versioned binary wire protocol for the filter-serving daemon.

Framing (all integers little-endian)::

    frame   := u32 payload_len | payload
    payload := u8 version | u8 opcode | body

``payload_len`` counts the version/opcode bytes plus the body, so an
empty-bodied frame has ``payload_len == 2``.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected before the body is read, which
bounds the memory a malformed (or hostile) peer can pin.

Request bodies::

    PING / STATS / SNAPSHOT  (empty)
    INSERT / QUERY / DELETE  key bytes (the whole remaining body)
    BATCH                    u8 sub-op | u32 count | count x (u16 len | key)
    DEADLINE                 u32 budget_us | u8 inner opcode | inner body

A ``DEADLINE`` frame wraps any other request and attaches the caller's
*remaining* time budget in microseconds (client deadline minus elapsed
— a relative quantity, so the two ends' clocks need not agree).  The
server answers with the inner request's normal response, or with a
``DEADLINE_EXCEEDED`` error if the budget ran out before the request
reached the filter (see :mod:`repro.overload`).

Replication bodies (primary → replica, see :mod:`repro.cluster`)::

    REPLICATE      u64 seq | u8 op | u32 count | count x (u16 len | key)
    REPL_STATUS    (empty; replica answers JSON {last_seq, ...})
    REPL_SNAPSHOT  u64 seq | snapshot blob (full-state catch-up)

Rebalance bodies (coordinator → node, see :mod:`repro.rebalance`)::

    RING_EPOCH     (empty = get; answers RING_EPOCH | epoch blob)
                   set: u16 group_len | group | epoch blob
    MIGRATE_BEGIN / MIGRATE_READ / MIGRATE_FENCE  utf-8 JSON
    MIGRATE_APPLY  u16 plan_len | plan | records
    MIGRATE_COMMIT u32 meta_len | utf-8 JSON meta | epoch blob
    records       := u32 count | count x (u64 seq | u8 op |
                     u32 nkeys | nkeys x (u16 len | key))

Response bodies::

    OK      (empty)               insert/delete/ping acknowledgement
    BOOL    u8                    single-query result
    BITMAP  u32 count | bits      batch-query results, LSB-first packed
    JSON    utf-8 JSON            stats / snapshot reports
    ACK     u64 seq               replica's highest applied WAL sequence
    ERROR   u16 code | utf-8 msg  see :class:`ErrorCode`

Every :mod:`repro.errors` failure mode maps to a stable
:class:`ErrorCode` so clients can re-raise the library exception the
server hit — the wire adds no new failure vocabulary of its own.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass

from repro.errors import (
    CapacityError,
    ClusterError,
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
    DeadlineExceededError,
    MovedError,
    OverloadedError,
    ReplicationError,
    ReproError,
    UnsupportedOperationError,
    WordOverflowError,
    WrongEpochError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_KEY_BYTES",
    "MAX_BUDGET_US",
    "Opcode",
    "ErrorCode",
    "RECORD_OPS",
    "REBALANCE_OPS",
    "ProtocolError",
    "RemoteError",
    "Request",
    "encode_frame",
    "decode_payload",
    "parse_request",
    "encode_deadline_body",
    "decode_deadline_body",
    "format_retry_after",
    "parse_retry_after",
    "encode_batch_body",
    "encode_error_body",
    "decode_error_body",
    "encode_replicate_body",
    "decode_replicate_body",
    "encode_ack_body",
    "decode_ack_body",
    "encode_repl_snapshot_body",
    "decode_repl_snapshot_body",
    "encode_migrate_records",
    "decode_migrate_records",
    "encode_ring_epoch_set",
    "decode_ring_epoch_set",
    "encode_migrate_read_resp",
    "decode_migrate_read_resp",
    "encode_migrate_apply_body",
    "decode_migrate_apply_body",
    "encode_migrate_commit_body",
    "decode_migrate_commit_body",
    "pack_bools",
    "unpack_bools",
    "error_code_for",
    "FrameDecoder",
    "read_frame",
]

PROTOCOL_VERSION = 1
#: Upper bound on one frame's payload; bounds per-connection buffering.
MAX_FRAME_BYTES = 16 * 1024 * 1024
#: Keys are length-prefixed with a u16 inside BATCH bodies.
MAX_KEY_BYTES = 0xFFFF

_HEADER = struct.Struct("<I")
_PAYLOAD_PREFIX = struct.Struct("<BB")


class Opcode(enum.IntEnum):
    """Request and response frame types."""

    # requests
    PING = 0x01
    INSERT = 0x02
    QUERY = 0x03
    DELETE = 0x04
    BATCH = 0x05
    STATS = 0x06
    SNAPSHOT = 0x07
    DEADLINE = 0x08
    # replication (primary → replica; see repro.cluster.replication)
    REPLICATE = 0x10
    REPL_STATUS = 0x11
    REPL_SNAPSHOT = 0x12
    # migration record ops (WAL/replication only, never client frames;
    # keys[0] is the migration header, see repro.rebalance.migrator)
    MIG_INSERT = 0x13
    MIG_DELETE = 0x14
    # rebalance control (coordinator → node; see repro.rebalance)
    RING_EPOCH = 0x20
    MIGRATE_BEGIN = 0x21
    MIGRATE_READ = 0x22
    MIGRATE_APPLY = 0x23
    MIGRATE_FENCE = 0x24
    MIGRATE_COMMIT = 0x25
    # responses
    ERROR = 0x7F
    OK = 0x81
    BOOL = 0x82
    BITMAP = 0x83
    JSON = 0x84
    ACK = 0x85


#: Opcodes a BATCH frame may carry as its sub-operation.
BATCH_SUBOPS = (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE)

#: Mutation ops a WAL record (and hence a REPLICATE body) may carry.
#: The MIG_* flavours are migration applies: ``keys[0]`` is a header
#: blob naming the plan and source sequence, ``keys[1:]`` the real keys.
RECORD_OPS = (
    Opcode.INSERT,
    Opcode.DELETE,
    Opcode.MIG_INSERT,
    Opcode.MIG_DELETE,
)

#: Rebalance control opcodes the server routes to its rebalance state.
REBALANCE_OPS = (
    Opcode.RING_EPOCH,
    Opcode.MIGRATE_BEGIN,
    Opcode.MIGRATE_READ,
    Opcode.MIGRATE_APPLY,
    Opcode.MIGRATE_FENCE,
    Opcode.MIGRATE_COMMIT,
)


class ErrorCode(enum.IntEnum):
    """Stable numeric codes for error frames."""

    INTERNAL = 1
    PROTOCOL = 2
    CONFIGURATION = 3
    CAPACITY = 4
    COUNTER_OVERFLOW = 5
    COUNTER_UNDERFLOW = 6
    WORD_OVERFLOW = 7
    UNSUPPORTED = 8
    REPLICATION = 9
    CLUSTER = 10
    WRONG_EPOCH = 11
    MOVED = 12
    OVERLOADED = 13
    DEADLINE_EXCEEDED = 14


#: Most-derived-first so isinstance dispatch picks the tightest code.
_ERROR_CODES: tuple[tuple[type, ErrorCode], ...] = (
    (CounterOverflowError, ErrorCode.COUNTER_OVERFLOW),
    (CounterUnderflowError, ErrorCode.COUNTER_UNDERFLOW),
    (WordOverflowError, ErrorCode.WORD_OVERFLOW),
    (CapacityError, ErrorCode.CAPACITY),
    (ConfigurationError, ErrorCode.CONFIGURATION),
    (UnsupportedOperationError, ErrorCode.UNSUPPORTED),
    (OverloadedError, ErrorCode.OVERLOADED),
    (DeadlineExceededError, ErrorCode.DEADLINE_EXCEEDED),
    (MovedError, ErrorCode.MOVED),
    (WrongEpochError, ErrorCode.WRONG_EPOCH),
    (ReplicationError, ErrorCode.REPLICATION),
    (ClusterError, ErrorCode.CLUSTER),
    (ReproError, ErrorCode.INTERNAL),
)


class ProtocolError(ReproError):
    """A frame violated the wire format (bad version, opcode, length…)."""


class RemoteError(ReproError):
    """Client-side view of a server error frame.

    For ``OVERLOADED`` frames ``retry_after_s`` carries the server's
    parsed backoff hint (``None`` when the message has none); other
    codes always leave it ``None``.
    """

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(f"[{code.name}] {message}")
        self.code = code
        self.remote_message = message
        self.retry_after_s: float | None = None
        if code == ErrorCode.OVERLOADED:
            self.retry_after_s = parse_retry_after(message)[0]


def error_code_for(exc: BaseException) -> ErrorCode:
    """Map an exception to the error code its frame carries."""
    if isinstance(exc, ProtocolError):
        return ErrorCode.PROTOCOL
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return code
    return ErrorCode.INTERNAL


@dataclass
class Request:
    """A parsed request frame: an operation over one or more keys."""

    op: Opcode
    keys: list[bytes]
    #: True when the request arrived as a single-key frame (response is
    #: OK/BOOL) rather than a BATCH frame (response is OK/BITMAP).
    single: bool


# -- encoding -----------------------------------------------------------
def encode_frame(opcode: Opcode, body: bytes = b"") -> bytes:
    """Serialise one frame (header + version + opcode + body)."""
    payload_len = 2 + len(body)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return (
        _HEADER.pack(payload_len)
        + _PAYLOAD_PREFIX.pack(PROTOCOL_VERSION, opcode)
        + body
    )


def _encode_op_keys(op: Opcode, keys: list[bytes]) -> bytes:
    """Pack ``u8 op | u32 count | count x (u16 len | key)``."""
    parts = [struct.pack("<BI", op, len(keys))]
    for key in keys:
        if len(key) > MAX_KEY_BYTES:
            raise ProtocolError(
                f"key of {len(key)} bytes exceeds the {MAX_KEY_BYTES}-byte limit"
            )
        parts.append(struct.pack("<H", len(key)))
        parts.append(key)
    return b"".join(parts)


def _parse_op_keys(
    body: bytes, pos: int, allowed: tuple[Opcode, ...], kind: str
) -> tuple[Opcode, list[bytes], int]:
    """Inverse of :func:`_encode_op_keys`; returns (op, keys, end)."""
    if pos + 5 > len(body):
        raise ProtocolError(f"truncated {kind} header")
    raw_op, count = struct.unpack_from("<BI", body, pos)
    try:
        op = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown {kind} op 0x{raw_op:02x}") from exc
    if op not in allowed:
        raise ProtocolError(f"invalid {kind} op {op.name}")
    pos += 5
    keys: list[bytes] = []
    for _ in range(count):
        if pos + 2 > len(body):
            raise ProtocolError(f"truncated {kind} key length")
        (key_len,) = struct.unpack_from("<H", body, pos)
        pos += 2
        if pos + key_len > len(body):
            raise ProtocolError(f"truncated {kind} key")
        keys.append(body[pos : pos + key_len])
        pos += key_len
    return op, keys, pos


# -- deadlines & overload hints -----------------------------------------
_DEADLINE_PREFIX = struct.Struct("<IB")
#: Largest budget a DEADLINE frame can carry (u32 microseconds ≈ 71.6
#: minutes); longer budgets are clamped rather than rejected — past
#: this horizon the wrapper is indistinguishable from "no deadline".
MAX_BUDGET_US = 0xFFFFFFFF

_RETRY_AFTER_PREFIX = "retry_after_ms="


def encode_deadline_body(budget_us: int, opcode: Opcode, body: bytes) -> bytes:
    """Build a DEADLINE body wrapping ``opcode``/``body`` with a budget.

    ``budget_us`` is the caller's *remaining* budget in microseconds
    (clamped to the u32 range).  Nesting DEADLINE inside DEADLINE is
    rejected: one wrapper per frame, re-wrap with the smaller budget
    instead.
    """
    if budget_us < 0:
        raise ProtocolError(f"deadline budget must be >= 0, got {budget_us}")
    if opcode == Opcode.DEADLINE:
        raise ProtocolError("DEADLINE frames cannot nest")
    return _DEADLINE_PREFIX.pack(min(budget_us, MAX_BUDGET_US), opcode) + body


def decode_deadline_body(body: bytes) -> tuple[int, Opcode, bytes]:
    """Inverse of :func:`encode_deadline_body` → (budget_us, op, body)."""
    if len(body) < _DEADLINE_PREFIX.size:
        raise ProtocolError("truncated deadline body")
    budget_us, raw_op = _DEADLINE_PREFIX.unpack_from(body)
    try:
        opcode = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown deadline inner op 0x{raw_op:02x}") from exc
    if opcode == Opcode.DEADLINE:
        raise ProtocolError("DEADLINE frames cannot nest")
    return budget_us, opcode, body[_DEADLINE_PREFIX.size :]


def format_retry_after(retry_after_s: float | None, message: str) -> str:
    """Prefix an error message with a machine-readable backoff hint.

    The hint rides inside the ERROR frame's message field —
    ``retry_after_ms=<n>; <message>`` — so the body format
    (``u16 code | utf-8 msg``) is unchanged and old clients simply see
    a slightly longer human-readable string.
    """
    if retry_after_s is None:
        return message
    ms = max(1, round(retry_after_s * 1000.0))
    return f"{_RETRY_AFTER_PREFIX}{ms}; {message}"


def parse_retry_after(message: str) -> tuple[float | None, str]:
    """Inverse of :func:`format_retry_after` → (retry_after_s, message).

    Returns ``(None, message)`` unchanged when no hint is present or it
    fails to parse — the hint is advisory, never a hard dependency.
    """
    if not message.startswith(_RETRY_AFTER_PREFIX):
        return None, message
    head, sep, rest = message.partition("; ")
    try:
        ms = int(head[len(_RETRY_AFTER_PREFIX) :])
    except ValueError:
        return None, message
    if ms < 0 or not sep:
        return None, message
    return ms / 1000.0, rest


def encode_batch_body(subop: Opcode, keys: list[bytes]) -> bytes:
    """Build a BATCH body: sub-op, count, then length-prefixed keys."""
    if subop not in BATCH_SUBOPS:
        raise ProtocolError(f"invalid batch sub-op {subop!r}")
    return _encode_op_keys(subop, keys)


def encode_replicate_body(seq: int, subop: Opcode, keys: list[bytes]) -> bytes:
    """Build a REPLICATE body: WAL sequence, then a BATCH-shaped tail.

    The key encoding after the ``u64 seq`` prefix is byte-identical to
    :func:`encode_batch_body`, so replicas reuse the same parser.  Any
    :data:`RECORD_OPS` member is accepted: replication ships migration
    applies (MIG_*) with the same framing as client mutations.
    """
    if seq < 0:
        raise ProtocolError(f"replication sequence must be >= 0, got {seq}")
    if subop not in RECORD_OPS:
        raise ProtocolError(f"invalid replicate op {subop!r}")
    return struct.pack("<Q", seq) + _encode_op_keys(subop, keys)


def decode_replicate_body(body: bytes) -> tuple[int, Opcode, list[bytes]]:
    """Inverse of :func:`encode_replicate_body`."""
    if len(body) < 8:
        raise ProtocolError("truncated replicate body")
    (seq,) = struct.unpack_from("<Q", body)
    op, keys, pos = _parse_op_keys(body, 8, RECORD_OPS, "replicate")
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after replicate keys"
        )
    return seq, op, keys


def encode_ack_body(seq: int) -> bytes:
    """Build an ACK body carrying the replica's highest applied seq."""
    return struct.pack("<Q", seq)


def decode_ack_body(body: bytes) -> int:
    """Inverse of :func:`encode_ack_body`."""
    if len(body) != 8:
        raise ProtocolError(f"ACK body must be 8 bytes, got {len(body)}")
    (seq,) = struct.unpack("<Q", body)
    return seq


def encode_repl_snapshot_body(seq: int, blob: bytes) -> bytes:
    """Build a REPL_SNAPSHOT body: the WAL seq the blob covers + state."""
    return struct.pack("<Q", seq) + blob


def decode_repl_snapshot_body(body: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_repl_snapshot_body`."""
    if len(body) < 8:
        raise ProtocolError("truncated replication snapshot body")
    (seq,) = struct.unpack_from("<Q", body)
    return seq, body[8:]


# -- rebalance bodies (see repro.rebalance) -----------------------------
def encode_migrate_records(
    records: list[tuple[int, Opcode, list[bytes]]],
) -> bytes:
    """Pack migration records: count, then (seq, op, keys) triples."""
    parts = [struct.pack("<I", len(records))]
    for seq, op, keys in records:
        if op not in RECORD_OPS:
            raise ProtocolError(f"invalid migrate record op {op!r}")
        parts.append(struct.pack("<Q", seq))
        parts.append(_encode_op_keys(op, keys))
    return b"".join(parts)


def decode_migrate_records(
    body: bytes, offset: int = 0
) -> list[tuple[int, Opcode, list[bytes]]]:
    """Inverse of :func:`encode_migrate_records`; consumes to the end."""
    if offset + 4 > len(body):
        raise ProtocolError("truncated migrate records header")
    (count,) = struct.unpack_from("<I", body, offset)
    pos = offset + 4
    records: list[tuple[int, Opcode, list[bytes]]] = []
    for _ in range(count):
        if pos + 8 > len(body):
            raise ProtocolError("truncated migrate record sequence")
        (seq,) = struct.unpack_from("<Q", body, pos)
        op, keys, pos = _parse_op_keys(
            body, pos + 8, RECORD_OPS, "migrate record"
        )
        records.append((seq, op, keys))
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing bytes after migrate records"
        )
    return records


def encode_ring_epoch_set(group: str, blob: bytes) -> bytes:
    """Build a RING_EPOCH *set* body: the receiver's group name + epoch."""
    raw = group.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("group name too long for ring-epoch body")
    return struct.pack("<H", len(raw)) + raw + blob


def decode_ring_epoch_set(body: bytes) -> tuple[str, bytes]:
    """Inverse of :func:`encode_ring_epoch_set`."""
    if len(body) < 2:
        raise ProtocolError("truncated ring-epoch body")
    (group_len,) = struct.unpack_from("<H", body)
    if 2 + group_len > len(body):
        raise ProtocolError("truncated ring-epoch group name")
    group = body[2 : 2 + group_len].decode("utf-8")
    return group, body[2 + group_len :]


def encode_migrate_apply_body(
    plan: str, records: list[tuple[int, Opcode, list[bytes]]]
) -> bytes:
    """Build a MIGRATE_APPLY body: plan id + migration records."""
    raw = plan.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("plan id too long for migrate-apply body")
    return struct.pack("<H", len(raw)) + raw + encode_migrate_records(records)


def decode_migrate_apply_body(
    body: bytes,
) -> tuple[str, list[tuple[int, Opcode, list[bytes]]]]:
    """Inverse of :func:`encode_migrate_apply_body`."""
    if len(body) < 2:
        raise ProtocolError("truncated migrate-apply body")
    (plan_len,) = struct.unpack_from("<H", body)
    if 2 + plan_len > len(body):
        raise ProtocolError("truncated migrate-apply plan id")
    plan = body[2 : 2 + plan_len].decode("utf-8")
    return plan, decode_migrate_records(body, 2 + plan_len)


def encode_migrate_read_resp(
    scanned_through: int,
    last_seq: int,
    records: list[tuple[int, Opcode, list[bytes]]],
) -> bytes:
    """Build a MIGRATE_READ response: scan watermarks + matching records."""
    return (
        struct.pack("<QQ", scanned_through, last_seq)
        + encode_migrate_records(records)
    )


def decode_migrate_read_resp(
    body: bytes,
) -> tuple[int, int, list[tuple[int, Opcode, list[bytes]]]]:
    """Inverse of :func:`encode_migrate_read_resp`."""
    if len(body) < 16:
        raise ProtocolError("truncated migrate-read response")
    scanned_through, last_seq = struct.unpack_from("<QQ", body)
    return scanned_through, last_seq, decode_migrate_records(body, 16)


def encode_migrate_commit_body(meta: dict, blob: bytes) -> bytes:
    """Build a MIGRATE_COMMIT body: JSON metadata + the new epoch blob."""
    raw = json.dumps(meta, sort_keys=True).encode("utf-8")
    return struct.pack("<I", len(raw)) + raw + blob


def decode_migrate_commit_body(body: bytes) -> tuple[dict, bytes]:
    """Inverse of :func:`encode_migrate_commit_body`."""
    if len(body) < 4:
        raise ProtocolError("truncated migrate-commit body")
    (meta_len,) = struct.unpack_from("<I", body)
    if 4 + meta_len > len(body):
        raise ProtocolError("truncated migrate-commit metadata")
    try:
        meta = json.loads(body[4 : 4 + meta_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed migrate-commit metadata") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("migrate-commit metadata must be a JSON object")
    return meta, body[4 + meta_len :]


def encode_error_body(code: ErrorCode, message: str) -> bytes:
    return struct.pack("<H", code) + message.encode("utf-8")


def decode_error_body(body: bytes) -> tuple[ErrorCode, str]:
    if len(body) < 2:
        raise ProtocolError("truncated error body")
    (raw,) = struct.unpack_from("<H", body)
    try:
        code = ErrorCode(raw)
    except ValueError:
        code = ErrorCode.INTERNAL
    return code, body[2:].decode("utf-8", "replace")


def pack_bools(values) -> bytes:
    """Pack an iterable of booleans into a BITMAP body (LSB-first)."""
    bits = list(values)
    out = bytearray(struct.pack("<I", len(bits)))
    acc = 0
    for i, value in enumerate(bits):
        if value:
            acc |= 1 << (i & 7)
        if (i & 7) == 7:
            out.append(acc)
            acc = 0
    if len(bits) & 7:
        out.append(acc)
    return bytes(out)


def unpack_bools(body: bytes) -> list[bool]:
    """Inverse of :func:`pack_bools`."""
    if len(body) < 4:
        raise ProtocolError("truncated bitmap body")
    (count,) = struct.unpack_from("<I", body)
    need = 4 + (count + 7) // 8
    if len(body) < need:
        raise ProtocolError(
            f"bitmap body holds {len(body) - 4} bytes, needs {need - 4}"
        )
    return [bool(body[4 + (i >> 3)] >> (i & 7) & 1) for i in range(count)]


# -- decoding -----------------------------------------------------------
def decode_payload(payload: bytes) -> tuple[Opcode, bytes]:
    """Split a frame payload into (opcode, body), validating the prefix."""
    if len(payload) < 2:
        raise ProtocolError(f"payload of {len(payload)} bytes is too short")
    version, raw_op = _PAYLOAD_PREFIX.unpack_from(payload)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    try:
        opcode = Opcode(raw_op)
    except ValueError as exc:
        raise ProtocolError(f"unknown opcode 0x{raw_op:02x}") from exc
    return opcode, payload[2:]


def parse_request(opcode: Opcode, body: bytes) -> Request:
    """Parse a request frame body into a :class:`Request`.

    Control frames (PING/STATS/SNAPSHOT) are not key-carrying requests
    and are rejected here; the server dispatches them before batching.
    """
    if opcode in (Opcode.INSERT, Opcode.QUERY, Opcode.DELETE):
        if len(body) == 0:
            raise ProtocolError(f"{opcode.name} frame carries an empty key")
        if len(body) > MAX_KEY_BYTES:
            raise ProtocolError(
                f"key of {len(body)} bytes exceeds the {MAX_KEY_BYTES}-byte limit"
            )
        return Request(op=opcode, keys=[body], single=True)
    if opcode == Opcode.BATCH:
        if len(body) < 5:
            raise ProtocolError("truncated batch header")
        raw_subop, count = struct.unpack_from("<BI", body)
        try:
            subop = Opcode(raw_subop)
        except ValueError as exc:
            raise ProtocolError(f"unknown batch sub-op 0x{raw_subop:02x}") from exc
        if subop not in BATCH_SUBOPS:
            raise ProtocolError(f"invalid batch sub-op {subop.name}")
        keys: list[bytes] = []
        pos = 5
        for _ in range(count):
            if pos + 2 > len(body):
                raise ProtocolError("truncated batch key length")
            (key_len,) = struct.unpack_from("<H", body, pos)
            pos += 2
            if pos + key_len > len(body):
                raise ProtocolError("truncated batch key")
            keys.append(body[pos : pos + key_len])
            pos += key_len
        if pos != len(body):
            raise ProtocolError(
                f"{len(body) - pos} trailing bytes after batch keys"
            )
        return Request(op=subop, keys=keys, single=False)
    raise ProtocolError(f"opcode {opcode.name} is not a keyed request")


class FrameDecoder:
    """Incremental frame parser for byte streams.

    Feed raw socket bytes with :meth:`feed`; iterate complete payloads
    with :meth:`frames`.  Used by the sync client (``recv`` chunks don't
    align with frames) and by the fuzz tests.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self):
        """Yield (opcode, body) for each complete frame buffered."""
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (payload_len,) = _HEADER.unpack_from(self._buffer)
            if payload_len > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame of {payload_len} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame limit"
                )
            end = _HEADER.size + payload_len
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            yield decode_payload(payload)


async def read_frame(reader) -> tuple[Opcode, bytes] | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (payload_len,) = _HEADER.unpack(header)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    try:
        payload = await reader.readexactly(payload_len)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)
