"""Design-space exploration: Eq. (7) and the accuracy/overhead frontier.

§III.B.4 derives the fundamental MPCBF trade-off: a word of ``w`` bits
holding at most ``n_max`` elements spends ``k·n_max`` bits on the
hierarchy, so the efficiency ratio obeys

    m/n  ≥  w/n_max + k          (Eq. 7, with m in *counter-equivalent*
                                   units of the CBF comparison: the
                                   paper's m/n uses w bits per word and
                                   n_max elements — w/n_max bits per
                                   element — plus k hierarchy bits)

and not every efficiency ratio is reachable (with w=32, k=3 only
values above 29/3 exist).  This module exposes that bound, enumerates
feasible geometries, and packages the "cheapest configuration meeting a
target FPR" search used by ``examples/capacity_planning.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fpr import bf_fpr, mpcbf_fpr
from repro.analysis.heuristics import improved_b1, n_max_heuristic
from repro.analysis.optimal import cbf_optimal_k, mpcbf_optimal_k
from repro.analysis.overflow import any_word_overflow_probability
from repro.errors import ConfigurationError

__all__ = [
    "efficiency_ratio_bound",
    "min_bits_per_element",
    "DesignPoint",
    "feasible_designs",
    "cheapest_design",
    "cbf_bits_for_fpr",
]


def efficiency_ratio_bound(word_bits: int, k: int, n_max: int) -> float:
    """Lower bound on bits-per-element, Eq. (7): ``w/n_max + k``...

    Interpreted in memory bits per stored element: each word stores up
    to ``n_max`` elements in ``w`` bits, i.e. at least ``w/n_max`` bits
    per element, of which ``k`` are hierarchy bits.
    """
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    return word_bits / n_max


def min_bits_per_element(word_bits: int, k: int) -> float:
    """Smallest reachable bits/element for a feasible geometry.

    ``n_max`` is capped by ``b1 ≥ k`` (the first level must hold the
    ``k`` probe bits): ``n_max ≤ (w − k)/k``, hence the paper's example
    that with w=32, k=3 only ratios above 32/((32−3)/3) ≈ 29/3·… exist.
    """
    n_max_cap = (word_bits - k) // k
    if n_max_cap < 1:
        raise ConfigurationError(
            f"w={word_bits}, k={k} admits no feasible geometry"
        )
    return word_bits / n_max_cap


@dataclass(frozen=True)
class DesignPoint:
    """One feasible MPCBF configuration and its predicted behaviour."""

    g: int
    k: int
    bits_per_element: float
    memory_bits: int
    num_words: int
    n_max: int
    first_level_bits: int
    fpr: float
    overflow_probability: float

    @property
    def memory_accesses(self) -> int:
        return self.g

    @property
    def hash_calls(self) -> int:
        return self.k + self.g - 1


def feasible_designs(
    n: int,
    *,
    word_bits: int = 64,
    gs: tuple[int, ...] = (1, 2, 3),
    bits_per_element_grid: tuple[float, ...] = tuple(range(16, 200, 4)),
) -> list[DesignPoint]:
    """Enumerate feasible (g, bits/element) geometries with optimal k."""
    points: list[DesignPoint] = []
    for g in gs:
        for bpe in bits_per_element_grid:
            memory = int(n * bpe)
            num_words = memory // word_bits
            if num_words < 1:
                continue
            try:
                k_opt, fpr = mpcbf_optimal_k(memory, n, word_bits, g=g)
                n_max = n_max_heuristic(n, num_words, g=g)
                b1 = improved_b1(word_bits, k_opt, n_max, g=g)
            except (ConfigurationError, ValueError):
                continue
            points.append(
                DesignPoint(
                    g=g,
                    k=k_opt,
                    bits_per_element=float(bpe),
                    memory_bits=memory,
                    num_words=num_words,
                    n_max=n_max,
                    first_level_bits=b1,
                    fpr=fpr,
                    overflow_probability=any_word_overflow_probability(
                        n, num_words, n_max, g=g
                    ),
                )
            )
    return points


def cheapest_design(
    n: int,
    target_fpr: float,
    *,
    word_bits: int = 64,
    max_accesses: int = 3,
    max_overflow_probability: float = 1.0,
) -> DesignPoint:
    """Cheapest feasible design meeting an FPR (and overflow) budget.

    Raises :class:`~repro.errors.ConfigurationError` when no enumerated
    geometry meets the targets.
    """
    candidates = [
        p
        for p in feasible_designs(n, word_bits=word_bits)
        if p.fpr <= target_fpr
        and p.g <= max_accesses
        and p.overflow_probability <= max_overflow_probability
    ]
    if not candidates:
        raise ConfigurationError(
            f"no MPCBF design meets fpr<={target_fpr} within "
            f"{max_accesses} accesses"
        )
    return min(candidates, key=lambda p: (p.bits_per_element, p.g))


def cbf_bits_for_fpr(
    n: int, target_fpr: float, *, max_bits_per_element: int = 640
) -> tuple[float, int]:
    """Bits/element a standard CBF needs for the same target.

    Returns ``(bits_per_element, optimal_k)``; used to quote the
    memory-or-accesses price of the baseline.
    """
    for bpe in range(8, max_bits_per_element + 1, 4):
        memory = n * bpe
        k = cbf_optimal_k(memory, n)
        if bf_fpr(n, memory // 4, k) <= target_fpr:
            return float(bpe), k
    raise ConfigurationError(
        f"CBF cannot reach fpr<={target_fpr} within "
        f"{max_bits_per_element} bits/element"
    )
