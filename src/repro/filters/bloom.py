"""Standard Bloom filter (Bloom 1970), the Eq. (1) baseline.

An ``m``-bit vector with ``k`` independent hash functions.  Queries
short-circuit on the first zero bit, which is what makes the *measured*
mean access count of negative queries smaller than ``k`` (the effect
behind the sub-``k`` access numbers in Table III for CBF).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import FilterBase
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import HashFamily
from repro.memmodel.accounting import OpKind

__all__ = ["BloomFilter"]


class BloomFilter(FilterBase):
    """Plain ``m``-bit Bloom filter.

    Parameters
    ----------
    num_bits:
        Vector size ``m``.
    k:
        Number of hash functions.
    seed:
        Master hash seed.
    """

    def __init__(
        self,
        num_bits: int,
        k: int,
        *,
        seed: int = 0,
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        self.name = "BF"
        self.num_bits = num_bits
        self.k = k
        self.family = HashFamily(num_bits, k, seed=seed)
        self._bits = np.zeros(num_bits, dtype=bool)
        self._budget = HashBitBudget.flat(num_bits, k)

    @property
    def total_bits(self) -> int:
        return self.num_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (the load factor behind Eq. 1)."""
        return float(self._bits.mean())

    # -- scalar ---------------------------------------------------------
    def insert_encoded(self, encoded_key: int) -> None:
        indices = self.family.indices(encoded_key)
        for idx in indices:
            self._bits[idx] = True
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.k),
            hash_bits=self._budget.total_bits,
            hash_calls=self._budget.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        indices = self.family.indices(encoded_key)
        accesses = 0
        result = True
        for idx in indices:
            accesses += 1
            if not self._bits[idx]:
                result = False
                break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget.total_bits / self.k * accesses,
            hash_calls=self._budget.hash_calls,
        )
        return result

    # -- bulk -----------------------------------------------------------
    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        indices = self.family.indices_array(encoded)
        self._bits[indices.reshape(-1)] = True
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.k * len(encoded)),
            hash_bits=self._budget.total_bits * len(encoded),
            hash_calls=self._budget.hash_calls * len(encoded),
        )

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        indices = self.family.indices_array(encoded)
        bits = self._bits[indices]
        member = bits.all(axis=1)
        # Early-exit accounting: a query touches bits up to and including
        # the first zero (or all k when positive).
        first_zero = np.where(member, self.k - 1, np.argmin(bits, axis=1))
        accesses = first_zero + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget.total_bits / self.k * total_accesses,
            hash_calls=self._budget.hash_calls * len(encoded),
        )
        return member
