"""Packed c-bit counter storage — memory-faithful CBF backing.

The reference filters keep counters in ``int32`` NumPy arrays for
speed and report memory from their *parameters*; this substrate stores
counters the way hardware actually does — packed ``c``-bit fields
inside 64-bit limbs — so a filter built on it occupies (to the limb)
exactly the bits it claims.  Field widths must divide 64 so no counter
straddles a limb, mirroring how SRAM rows are laid out.

Reads are vectorised (gather + shift + mask); writes are
read-modify-write per counter, which is also the honest hardware cost
(one word access per counter update — exactly what the paper charges).
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)

__all__ = ["PackedCounterArray"]

_ALLOWED_WIDTHS = (1, 2, 4, 8, 16, 32)


class PackedCounterArray:
    """``size`` counters of ``width`` bits packed into uint64 limbs.

    Parameters
    ----------
    size:
        Number of counters.
    width:
        Field width in bits; must divide 64 (1, 2, 4, 8, 16, 32).
    """

    def __init__(self, size: int, width: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if width not in _ALLOWED_WIDTHS:
            raise ConfigurationError(
                f"width must be one of {_ALLOWED_WIDTHS}, got {width}"
            )
        self.size = size
        self.width = width
        self.limit = (1 << width) - 1
        self.fields_per_limb = 64 // width
        num_limbs = -(-size // self.fields_per_limb)
        self._limbs = np.zeros(num_limbs, dtype=np.uint64)
        self._mask = np.uint64(self.limit)

    def __len__(self) -> int:
        return self.size

    @property
    def total_bits(self) -> int:
        """Actual storage footprint (whole limbs)."""
        return len(self._limbs) * 64

    def _locate(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.size:
            raise IndexError(f"counter {index} out of range [0, {self.size})")
        return index // self.fields_per_limb, (
            index % self.fields_per_limb
        ) * self.width

    # -- scalar ---------------------------------------------------------
    def get(self, index: int) -> int:
        """Read one counter."""
        limb, shift = self._locate(index)
        return (int(self._limbs[limb]) >> shift) & self.limit

    def set(self, index: int, value: int) -> None:
        """Write one counter (value must fit the field)."""
        if not 0 <= value <= self.limit:
            raise ConfigurationError(
                f"value {value} does not fit a {self.width}-bit field"
            )
        limb, shift = self._locate(index)
        current = int(self._limbs[limb])
        cleared = current & ~(self.limit << shift)
        self._limbs[limb] = np.uint64(cleared | (value << shift))

    def increment(self, index: int) -> int:
        """Counter += 1; raises on overflow; returns the new value."""
        value = self.get(index)
        if value >= self.limit:
            raise CounterOverflowError(index, self.limit)
        self.set(index, value + 1)
        return value + 1

    def decrement(self, index: int) -> int:
        """Counter −= 1; raises on underflow; returns the new value."""
        value = self.get(index)
        if value == 0:
            raise CounterUnderflowError(index)
        self.set(index, value - 1)
        return value - 1

    # -- bulk -----------------------------------------------------------
    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised read of many counters (any shape of indices)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise IndexError("counter index out of range in bulk gather")
        limb = idx // self.fields_per_limb
        shift = ((idx % self.fields_per_limb) * self.width).astype(np.uint64)
        return ((self._limbs[limb] >> shift) & self._mask).astype(np.int64)

    def nonzero_mask(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised ``counter > 0`` test (the CBF query primitive)."""
        return self.gather(indices) > 0

    def to_array(self) -> np.ndarray:
        """Unpacked copy of all counters (tests/analysis)."""
        return self.gather(np.arange(self.size))

    def load_array(self, values: np.ndarray) -> None:
        """Bulk-load counters from an unpacked array (deserialisation)."""
        values = np.asarray(values)
        if values.shape != (self.size,):
            raise ConfigurationError(
                f"expected shape ({self.size},), got {values.shape}"
            )
        if values.size and (values.min() < 0 or values.max() > self.limit):
            raise ConfigurationError("values exceed the field width")
        self._limbs[:] = 0
        for index, value in enumerate(values):
            if value:
                self.set(index, int(value))

    def popcount_nonzero(self) -> int:
        """Number of nonzero counters (fill statistic)."""
        return int((self.to_array() > 0).sum())
