"""MPCBF — Multiple-Partitioned Counting Bloom Filter (§III.B–C).

The paper's contribution.  The membership counter vector is an array of
``l`` improved :class:`~repro.filters.hcbf_word.HCBFWord` words; a key
hashes to ``g`` words (one memory access each) and to ``k`` first-level
bit offsets split across them.  Queries read only the words' first
levels; updates traverse each word's popcount hierarchy.

Sizing: given the expected number of stored elements, ``n_max`` (the
per-word element bound) defaults to the paper's Poisson-inverse
heuristic (Eq. 11) and the first level is maximised to
``b1 = w − ⌈k/g⌉·n_max`` (§III.B.3).  A word that receives more than
``n_max`` elements raises :class:`repro.errors.WordOverflowError`; the
probability of that event is bounded by Eq. 6 / Eq. 10 and validated in
the test suite.

Two state backends share one observable behaviour:

* ``kernel="columnar"`` (default) keeps every word's hierarchy in the
  flat arrays of :class:`~repro.kernels.columnar.ColumnarHCBF`, so
  ``insert_many``/``delete_many``/``count_many`` run as batch NumPy
  kernels (sort by word, apply in rounds) and scalar calls delegate to
  one-key batches.
* ``kernel="scalar"`` keeps a list of :class:`HCBFWord` objects — the
  legible reference implementation and the equivalence oracle for the
  differential suite in ``tests/kernels/``.

Bulk queries run fully vectorised against a packed ``uint64`` mirror of
all first-level vectors, which both backends keep in sync (only
first-level flips matter; hierarchy churn never moves level-1 bits).
``to_scalar()``/``from_scalar()`` convert between backends exactly;
serialisation produces identical bytes either way.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, WordOverflowError
from repro.filters.base import CountingFilterBase
from repro.filters.hcbf_word import HCBFWord, improved_first_level_size
from repro.hashing.bit_budget import HashBitBudget
from repro.hashing.encoders import KeyEncoder
from repro.hashing.families import PartitionedHashFamily
from repro.kernels.columnar import ColumnarHCBF, WordsView, counts_from_levels
from repro.memmodel.accounting import OpKind

__all__ = ["MPCBF"]


class MPCBF(CountingFilterBase):
    """MPCBF-g counting filter.

    Parameters
    ----------
    num_words:
        Number of HCBF words ``l``; total memory is ``l·w`` bits.
    word_bits:
        Word width ``w`` (64 for the paper's main experiments).
    k:
        Total number of first-level hash functions.
    g:
        Memory accesses per operation (words per key).
    capacity:
        Expected number of stored elements ``n``; used by the ``n_max``
        heuristic.  Required unless ``n_max`` is given explicitly.
    n_max:
        Per-word element bound; overrides the heuristic when given.
    word_overflow:
        ``"raise"`` (default) surfaces
        :class:`~repro.errors.WordOverflowError` when a word's hierarchy
        fills up.  ``"saturate"`` freezes the overflowing word's
        hierarchy and keeps a membership-only overlay for it instead:
        queries stay false-negative-free, deletes touching the word
        become recorded no-ops (``skipped_deletes``), and every
        saturated insertion bumps ``overflow_events``.  The Eq. 11
        heuristic keeps the *expected* number of overflowing words
        around one in ``l``, so saturation is rare but not impossible
        on long experiment grids.
    kernel:
        ``"columnar"`` (default) runs bulk updates through the NumPy
        batch kernels; ``"scalar"`` keeps per-word ``HCBFWord`` objects
        (the reference path).  Both are observably equivalent.
    """

    def __init__(
        self,
        num_words: int,
        word_bits: int,
        k: int,
        *,
        g: int = 1,
        capacity: int | None = None,
        n_max: int | None = None,
        first_level_bits: int | None = None,
        seed: int = 0,
        word_overflow: str = "raise",
        kernel: str = "columnar",
        encoder: KeyEncoder | None = None,
    ) -> None:
        super().__init__(encoder=encoder)
        if num_words < 1:
            raise ConfigurationError(f"num_words must be >= 1, got {num_words}")
        if first_level_bits is not None:
            # Basic HCBF (§III.B.1): a caller-fixed b1 instead of the
            # improved maximised layout; n_max follows from the
            # leftover hierarchy budget.
            if not 1 <= first_level_bits < word_bits:
                raise ConfigurationError(
                    f"first_level_bits must be in [1, {word_bits}), "
                    f"got {first_level_bits}"
                )
            n_max = (word_bits - first_level_bits) // max(1, -(-k // g))
            if n_max < 1:
                raise ConfigurationError(
                    f"first_level_bits={first_level_bits} leaves no "
                    f"hierarchy budget for even one element"
                )
        elif n_max is None:
            if capacity is None:
                raise ConfigurationError(
                    "provide either capacity (for the Eq. 11 heuristic) or n_max"
                )
            # Local import: analysis depends on filters' sizing helpers.
            from repro.analysis.heuristics import n_max_heuristic

            n_max = n_max_heuristic(capacity, num_words, g=g)
        if n_max < 1:
            raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
        self.name = f"MPCBF-{g}"
        self.num_words = num_words
        self.word_bits = word_bits
        self.k = k
        self.g = g
        self.n_max = n_max
        self.capacity = capacity
        self.hashes_per_word = -(-k // g)  # ceil(k/g), the paper's ⌈k/g⌉
        if first_level_bits is not None:
            self.first_level_bits = first_level_bits
        else:
            self.first_level_bits = improved_first_level_size(
                word_bits, self.hashes_per_word, n_max
            )
        if k > self.first_level_bits:
            raise ConfigurationError(
                f"k={k} exceeds first-level size b1={self.first_level_bits}"
            )
        self.family = PartitionedHashFamily(
            num_words, self.first_level_bits, k, g=g, seed=seed
        )
        if kernel not in ("columnar", "scalar"):
            raise ConfigurationError(
                f"kernel must be 'columnar' or 'scalar', got {kernel!r}"
            )
        self.kernel = kernel
        self._limbs = -(-self.first_level_bits // 64)
        self._word_cols = self.family.offset_word_columns()
        if kernel == "columnar":
            #: Columnar state engine (None on the scalar backend).
            self.columns: ColumnarHCBF | None = ColumnarHCBF(
                num_words, word_bits, self.first_level_bits
            )
            self._words_list: list[HCBFWord] | None = None
            self._mirror_arr: np.ndarray | None = None
            self._saturated_map: dict[int, int] | None = None
        else:
            self.columns = None
            self._words_list = [
                HCBFWord(word_bits, self.first_level_bits, index=i)
                for i in range(num_words)
            ]
            self._mirror_arr = np.zeros((num_words, self._limbs), dtype=np.uint64)
            self._saturated_map = {}
        self._budget_query = HashBitBudget.partitioned(
            num_words, self.first_level_bits, k, g
        )
        if word_overflow not in ("raise", "saturate"):
            raise ConfigurationError(
                f"word_overflow must be 'raise' or 'saturate', got {word_overflow!r}"
            )
        self.word_overflow = word_overflow
        #: Hash insertions absorbed by saturated words.
        self.overflow_events = 0
        #: Deletes skipped because they touched a saturated word.
        self.skipped_deletes = 0

    @property
    def total_bits(self) -> int:
        return self.num_words * self.word_bits

    @property
    def num_hashes(self) -> int:
        return self.k

    @property
    def words(self) -> Sequence[HCBFWord]:
        """Scalar word objects.

        On the scalar backend this is the live list; on the columnar
        backend it is a lazy sequence view that materialises a fresh
        read-only snapshot per indexed word (mutating one does not
        write back — use the filter API).
        """
        if self.columns is not None:
            return WordsView(self.columns)
        return self._words_list

    @property
    def _mirror(self) -> np.ndarray:
        """Packed first-level limbs, ``(l, limbs)`` uint64 (live array)."""
        if self.columns is not None:
            return self.columns.mirror
        return self._mirror_arr

    @property
    def _mirror1d(self) -> np.ndarray | None:
        """Flat view for the single-limb bulk fast path (shares memory)."""
        if self._limbs != 1:
            return None
        return self._mirror[:, 0]

    @property
    def _saturated(self) -> dict[int, int]:
        """Membership-only overlays for saturated words (index → bitmap).

        Live (mutable) dict on the scalar backend; a fresh snapshot
        derived from the saturation arrays on the columnar backend.
        """
        if self.columns is not None:
            return self.columns.saturated_dict()
        return self._saturated_map

    @_saturated.setter
    def _saturated(self, value: dict[int, int]) -> None:
        if self.columns is not None:
            self.columns.set_saturated(dict(value))
        else:
            self._saturated_map = dict(value)

    @property
    def stored_hash_bits(self) -> int:
        """Total hierarchy bits in use across all words."""
        if self.columns is not None:
            return self.columns.stored_hash_bits
        return sum(word.hierarchy_bits_used for word in self._words_list)

    def _mirror_set(self, word_index: int, bit: int) -> None:
        self._mirror[word_index, bit >> 6] |= np.uint64(1 << (bit & 63))

    def _mirror_clear(self, word_index: int, bit: int) -> None:
        self._mirror[word_index, bit >> 6] &= np.uint64(
            ~(1 << (bit & 63)) & 0xFFFFFFFFFFFFFFFF
        )

    def _saturate_word(self, word_index: int) -> None:
        """Freeze a word's hierarchy; further inserts go to the overlay."""
        self._saturated_map.setdefault(word_index, 0)

    def _overlay_insert(self, word_index: int, offsets: list[int]) -> None:
        overlay = self._saturated_map[word_index]
        for pos in offsets:
            overlay |= 1 << pos
            self._mirror_set(word_index, pos)
            self.overflow_events += 1
        self._saturated_map[word_index] = overlay

    # -- scalar ---------------------------------------------------------
    def _columnar_apply_insert(self, word_indices, groups) -> float:
        """Single-key insert against the columnar arrays.

        Line-for-line mirror of the object-backed ``_apply_insert`` —
        same dry-run demand check, same saturation/overlay behaviour,
        same ``math.log2`` traversal-bit accounting — but ~10× cheaper
        than routing a one-key batch through the bulk kernel (argsort,
        round scheduling, outcome folding all cost more than the key).
        """
        cols = self.columns
        demand: dict[int, int] = {}
        for word_index, offsets in zip(word_indices, groups):
            demand[word_index] = demand.get(word_index, 0) + len(offsets)
        for word_index, need in demand.items():
            if cols.sat_mask[word_index]:
                continue
            if cols.capacity - int(cols.used[word_index]) < need:
                if self.word_overflow == "raise":
                    raise WordOverflowError(word_index, cols.capacity)
                cols.sat_mask[word_index] = True
        extra_bits = 0.0
        for word_index, offsets in zip(word_indices, groups):
            if cols.sat_mask[word_index]:
                for pos in offsets:
                    cols._overlay_set(word_index, pos)
                    self.overflow_events += 1
            else:
                for pos in offsets:
                    extra_bits += cols.insert_one(word_index, pos)
        return extra_bits

    def insert_encoded(self, encoded_key: int) -> None:
        # Two-phase inside _apply_insert: dry-run capacity check first,
        # so a failed insert leaves every word untouched.
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        if self.columns is not None:
            extra_bits = self._columnar_apply_insert(word_indices, groups)
        else:
            extra_bits = self._apply_insert(word_indices, groups)
        self.stats.record(
            OpKind.INSERT,
            word_accesses=float(self.g),
            hash_bits=self._budget_query.total_bits + extra_bits,
            hash_calls=self._budget_query.hash_calls,
        )

    def _columnar_delete_encoded(
        self, word_indices, groups
    ) -> None:
        """Single-key delete against the columnar arrays (see insert)."""
        cols = self.columns
        demand: dict[tuple[int, int], int] = {}
        for word_index, offsets in zip(word_indices, groups):
            if cols.sat_mask[word_index]:
                continue
            for pos in offsets:
                demand[(word_index, pos)] = demand.get((word_index, pos), 0) + 1
        for (word_index, pos), need in demand.items():
            if int(cols.counts[word_index, pos]) < need:
                from repro.errors import CounterUnderflowError

                raise CounterUnderflowError(pos)
        extra_bits = 0.0
        for word_index, offsets in zip(word_indices, groups):
            if cols.sat_mask[word_index]:
                self.skipped_deletes += len(offsets)
                continue
            for pos in offsets:
                extra_bits += cols.delete_one(word_index, pos)
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.g),
            hash_bits=self._budget_query.total_bits + extra_bits,
            hash_calls=self._budget_query.hash_calls,
        )

    def delete_encoded(self, encoded_key: int) -> None:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        if self.columns is not None:
            self._columnar_delete_encoded(word_indices, groups)
            return
        # Validate all counters first so a bad delete leaves no trace.
        # Demand aggregates across *all* groups: with g > 1 the word
        # hashes can collide, landing two groups' offsets in one word.
        demand: dict[tuple[int, int], int] = {}
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated_map:
                continue
            for pos in offsets:
                demand[(word_index, pos)] = demand.get((word_index, pos), 0) + 1
        for (word_index, pos), need in demand.items():
            if self._words_list[word_index].count(pos) < need:
                from repro.errors import CounterUnderflowError

                raise CounterUnderflowError(pos)
        extra_bits = 0.0
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated_map:
                # A frozen word cannot safely decrement: skip, keep the
                # bits set (no false negatives), and record the skip.
                self.skipped_deletes += len(offsets)
                continue
            word = self._words_list[word_index]
            for pos in offsets:
                remaining, bits = word.delete_bit(pos)
                extra_bits += bits
                if remaining == 0:
                    self._mirror_clear(word_index, pos)
        self.stats.record(
            OpKind.DELETE,
            word_accesses=float(self.g),
            hash_bits=self._budget_query.total_bits + extra_bits,
            hash_calls=self._budget_query.hash_calls,
        )

    def query_encoded(self, encoded_key: int) -> bool:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        accesses = 0
        result = True
        if self.columns is not None:
            # The packed mirror holds exactly the first-level membership
            # bits (saturation overlays already folded in), so one limb
            # read per probe replaces the word-object walk.
            mirror = self.columns.mirror
            for word_index, offsets in zip(word_indices, groups):
                accesses += 1
                row = mirror[word_index]
                if any(
                    not (int(row[pos >> 6]) >> (pos & 63)) & 1
                    for pos in offsets
                ):
                    result = False
                    break
        else:
            for word_index, offsets in zip(word_indices, groups):
                accesses += 1
                word = self._words_list[word_index]
                overlay = self._saturated_map.get(word_index, 0)
                if any(
                    not (word.query_bit(pos) or (overlay >> pos) & 1)
                    for pos in offsets
                ):
                    result = False
                    break
        self.stats.record(
            OpKind.QUERY,
            word_accesses=float(accesses),
            hash_bits=self._budget_query.total_bits / self.g * accesses,
            hash_calls=self._budget_query.hash_calls,
        )
        return result

    def count_encoded(self, encoded_key: int) -> int:
        word_indices = self.family.word_indices(encoded_key)
        groups = self.family.grouped_offsets(encoded_key)
        best = None
        if self.columns is not None:
            counts = self.columns.counts
            overlay_arr = self.columns.overlay
            for word_index, offsets in zip(word_indices, groups):
                for pos in offsets:
                    value = int(counts[word_index, pos])
                    if (
                        value == 0
                        and (int(overlay_arr[word_index, pos >> 6]) >> (pos & 63)) & 1
                    ):
                        value = 1  # overlay knows membership, not multiplicity
                    best = value if best is None else min(best, value)
            return int(best or 0)
        for word_index, offsets in zip(word_indices, groups):
            word = self._words_list[word_index]
            overlay = self._saturated_map.get(word_index, 0)
            for pos in offsets:
                value = word.count(pos)
                if value == 0 and (overlay >> pos) & 1:
                    value = 1  # overlay knows membership, not multiplicity
                best = value if best is None else min(best, value)
        return int(best or 0)

    # -- bulk -----------------------------------------------------------
    def _grouped_rows(self, encoded: np.ndarray):
        """One vectorised hash pass for a whole batch of updates.

        Yields ``(word_indices_row, grouped_offsets_row)`` per key —
        the hierarchy mutations stay scalar (they are inherently
        sequential per word), but the k+g−1 mixes per key run in NumPy,
        which dominates the pure-Python cost at batch sizes ≥ ~1000.
        ``tolist()`` converts each matrix to Python ints in one C pass;
        per-element ``int()`` casts used to dominate the batch cost
        before any hierarchy work happened.
        """
        word_idx, offsets = self.family.locate_array(encoded)
        k_per_word = self.family.k_per_word
        word_rows = word_idx.tolist()
        offset_rows = offsets.tolist()
        for row in range(len(encoded)):
            flat = offset_rows[row]
            groups = []
            start = 0
            for count in k_per_word:
                groups.append(flat[start : start + count])
                start += count
            yield word_rows[row], groups

    def _apply_insert(self, word_indices, groups) -> float:
        """Scalar insert body shared by insert_encoded and insert_many."""
        extra_bits = 0.0
        demand: dict[int, int] = {}
        for word_index, offsets in zip(word_indices, groups):
            demand[word_index] = demand.get(word_index, 0) + len(offsets)
        for word_index, need in demand.items():
            if word_index in self._saturated_map:
                continue
            if self._words_list[word_index].bits_free < need:
                if self.word_overflow == "raise":
                    raise WordOverflowError(
                        word_index,
                        self._words_list[word_index].hierarchy_capacity_bits,
                    )
                self._saturate_word(word_index)
        for word_index, offsets in zip(word_indices, groups):
            if word_index in self._saturated_map:
                self._overlay_insert(word_index, offsets)
                continue
            word = self._words_list[word_index]
            for pos in offsets:
                depth, bits = word.insert_bit(pos)
                extra_bits += bits
                if depth == 1:
                    self._mirror_set(word_index, pos)
        return extra_bits

    def insert_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        if self.columns is not None:
            word_idx, offsets = self.family.locate_array(encoded)
            outcome = self.columns.bulk_insert(
                word_idx, offsets, self._word_cols, self.word_overflow
            )
            self.overflow_events += outcome.overflow_events
            if outcome.error is not None:
                # Scalar insert_many raises mid-batch before recording
                # any statistics; earlier keys stay applied.
                raise outcome.error
            self.stats.record(
                OpKind.INSERT,
                count=len(encoded),
                word_accesses=float(self.g * len(encoded)),
                hash_bits=self._budget_query.total_bits * len(encoded)
                + outcome.extra_bits,
                hash_calls=self._budget_query.hash_calls * len(encoded),
            )
            return
        total_extra = 0.0
        for word_indices, groups in self._grouped_rows(encoded):
            total_extra += self._apply_insert(word_indices, groups)
        self.stats.record(
            OpKind.INSERT,
            count=len(encoded),
            word_accesses=float(self.g * len(encoded)),
            hash_bits=self._budget_query.total_bits * len(encoded) + total_extra,
            hash_calls=self._budget_query.hash_calls * len(encoded),
        )

    def delete_many(self, keys: object) -> None:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return
        if self.columns is None:
            for key in encoded:
                self.delete_encoded(int(key))
            return
        word_idx, offsets = self.family.locate_array(encoded)
        outcome = self.columns.bulk_delete(word_idx, offsets, self._word_cols)
        self.skipped_deletes += outcome.skipped_deletes
        if outcome.applied_keys:
            # The scalar path records per successfully deleted key, so
            # the prefix before a failing key is still accounted.
            self.stats.record(
                OpKind.DELETE,
                count=outcome.applied_keys,
                word_accesses=float(self.g * outcome.applied_keys),
                hash_bits=self._budget_query.total_bits * outcome.applied_keys
                + outcome.extra_bits,
                hash_calls=self._budget_query.hash_calls * outcome.applied_keys,
            )
        if outcome.error is not None:
            raise outcome.error

    def query_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=bool)
        word_idx, offsets = self.family.locate_array(encoded)
        word_cols = self._word_cols
        words_per_offset = word_idx[:, word_cols]
        shift = (offsets & 63).astype(np.uint64)
        if self._limbs == 1:
            # b1 <= 64: the common case; one flat gather per offset.
            limbs = self._mirror1d[words_per_offset]
        else:
            limbs = self._mirror[words_per_offset, (offsets >> 6)]
        tested = ((limbs >> shift) & np.uint64(1)).astype(bool)
        member = tested.all(axis=1)
        first_fail = np.where(member, self.k - 1, np.argmin(tested, axis=1))
        accesses = word_cols[first_fail] + 1
        total_accesses = float(accesses.sum())
        self.stats.record(
            OpKind.QUERY,
            count=len(encoded),
            word_accesses=total_accesses,
            hash_bits=self._budget_query.total_bits / self.g * total_accesses,
            hash_calls=self._budget_query.hash_calls * len(encoded),
        )
        return member

    def count_many(self, keys: object) -> np.ndarray:
        encoded = self._encode_bulk(keys)
        if len(encoded) == 0:
            return np.zeros(0, dtype=np.int64)
        if self.columns is None:
            return super().count_many(encoded)
        word_idx, offsets = self.family.locate_array(encoded)
        return self.columns.bulk_count(word_idx, offsets, self._word_cols)

    def merge(self, other: "MPCBF") -> None:
        """Add another MPCBF's counters into this one (multiset union).

        Requires identical geometry and seed.  Per word, every
        first-level counter of ``other`` is re-inserted into this
        filter's hierarchy ``count`` times; saturated words of either
        side merge into this side's membership overlay.  Overflow
        follows this filter's ``word_overflow`` policy.
        """
        if (
            not isinstance(other, MPCBF)
            or other.num_words != self.num_words
            or other.word_bits != self.word_bits
            or other.k != self.k
            or other.g != self.g
            or other.first_level_bits != self.first_level_bits
            or other.family.seed != self.family.seed
        ):
            raise ConfigurationError(
                "merge requires an identically configured MPCBF"
            )
        if self.columns is not None:
            self._merge_columnar(other)
            return
        for index, word in enumerate(other.words):
            mine = self._words_list[index]
            for pos in range(self.first_level_bits):
                count = word.count(pos)
                for _ in range(count):
                    if index in self._saturated_map:
                        self._overlay_insert(index, [pos])
                        continue
                    if mine.bits_free < 1:
                        if self.word_overflow == "raise":
                            raise WordOverflowError(
                                index, mine.hierarchy_capacity_bits
                            )
                        self._saturate_word(index)
                        self._overlay_insert(index, [pos])
                        continue
                    depth, _ = mine.insert_bit(pos)
                    if depth == 1:
                        self._mirror_set(index, pos)
        # Membership-only overlays of the other side fold into ours.
        for index, overlay in other._saturated.items():
            self._saturate_word(index)
            positions = [
                pos
                for pos in range(self.first_level_bits)
                if (overlay >> pos) & 1
            ]
            if positions:
                self._overlay_insert(index, positions)

    def _merge_columnar(self, other: "MPCBF") -> None:
        """Columnar merge: wholesale adds where safe, scalar replay where not.

        Words whose incoming load fits the free budget merge with one
        array add plus a hist/mirror rebuild; saturated or overflowing
        words replay unit-by-unit in the exact scalar order so overlay
        contents, ``overflow_events`` and raise points stay identical.
        """
        col = self.columns
        if other.columns is not None:
            other_counts = other.columns.counts.astype(np.int64)
        else:
            other_counts = np.zeros(
                (self.num_words, self.first_level_bits), dtype=np.int64
            )
            for i, word in enumerate(other._words_list):
                other_counts[i] = counts_from_levels(
                    word._sizes, word._levels, self.first_level_bits
                )
        other_saturated = dict(other._saturated)
        incoming = other_counts.sum(axis=1)
        has_load = incoming > 0
        trouble = has_load & ((incoming > col.capacity - col.used) | col.sat_mask)
        limit = self.num_words
        overflowing = trouble & ~col.sat_mask
        if self.word_overflow == "raise" and overflowing.any():
            # Scalar order: words merge by ascending index; the first
            # over-budget unsaturated word raises, leaving later words
            # untouched.
            limit = int(np.flatnonzero(overflowing).min())
        indices = np.arange(self.num_words)
        easy = np.flatnonzero(has_load & ~trouble & (indices < limit))
        if len(easy):
            col.counts[easy] += other_counts[easy].astype(col.counts.dtype)
            col.used[easy] += incoming[easy]
            col.rebuild_hist_rows(easy)
            col.rebuild_mirror_rows(easy)
        for w in np.flatnonzero(trouble & (indices < limit)).tolist():
            row = other_counts[w]
            for pos in np.flatnonzero(row).tolist():
                for _ in range(int(row[pos])):
                    if col.sat_mask[w]:
                        col._overlay_set(w, pos)
                        self.overflow_events += 1
                    elif col.used[w] >= col.capacity:
                        col.sat_mask[w] = True
                        col._overlay_set(w, pos)
                        self.overflow_events += 1
                    else:
                        col.insert_one(w, pos)
        if limit < self.num_words:
            w = limit
            row = other_counts[w]
            for pos in np.flatnonzero(row).tolist():
                for _ in range(int(row[pos])):
                    if col.used[w] >= col.capacity:
                        raise WordOverflowError(w, col.capacity)
                    col.insert_one(w, pos)
            raise AssertionError("merge trigger word did not overflow")
        for index, overlay in other_saturated.items():
            col.sat_mask[index] = True
            for pos in range(self.first_level_bits):
                if (overlay >> pos) & 1:
                    col._overlay_set(index, pos)
                    self.overflow_events += 1

    # -- kernel conversion ------------------------------------------------
    def dump_level_state(self) -> list[list]:
        """Canonical per-word ``[sizes, hex level bitmaps]`` blob.

        Identical for both kernels holding the same contents — the
        contract :func:`repro.serialize.dump_filter` relies on for
        byte-identical snapshots across backends.
        """
        if self.columns is not None:
            out = []
            for i in range(self.num_words):
                sizes, levels = self.columns.word_level_state(i)
                out.append([sizes, [hex(v) for v in levels]])
            return out
        out = []
        for word in self._words_list:
            sizes = list(word.level_sizes())
            levels = [hex(word.level_bits(i)) for i in range(word.depth)]
            out.append([sizes, levels])
        return out

    def load_level_state(self, blob: list) -> None:
        """Load hierarchy contents produced by :meth:`dump_level_state`."""
        if self.columns is not None:
            for i, (sizes, levels) in enumerate(blob):
                self.columns.set_word_level_state(
                    i, [int(s) for s in sizes], [int(h, 16) for h in levels]
                )
            self.columns.rebuild_derived()
            return
        for word, (sizes, levels) in zip(self._words_list, blob):
            word._sizes = [int(s) for s in sizes]
            word._levels = [int(h, 16) for h in levels]

    def with_kernel(self, kernel: str) -> "MPCBF":
        """Deep copy of this filter on the requested kernel backend."""
        clone = MPCBF(
            self.num_words,
            self.word_bits,
            self.k,
            g=self.g,
            first_level_bits=self.first_level_bits,
            seed=self.family.seed,
            word_overflow=self.word_overflow,
            kernel=kernel,
            encoder=self.encoder,
        )
        clone.capacity = self.capacity
        clone.load_level_state(self.dump_level_state())
        clone._saturated = dict(self._saturated)
        clone._mirror[...] = self._mirror
        clone.overflow_events = self.overflow_events
        clone.skipped_deletes = self.skipped_deletes
        clone.stats.merge(self.stats)
        return clone

    def to_scalar(self) -> "MPCBF":
        """Scalar-kernel deep copy (the oracle form; same serialised bytes)."""
        return self.with_kernel("scalar")

    @classmethod
    def from_scalar(cls, filt: "MPCBF") -> "MPCBF":
        """Columnar-kernel deep copy of (typically) a scalar filter."""
        return filt.with_kernel("columnar")

    # -- validation -------------------------------------------------------
    def check_invariants(self) -> None:
        """Check every word's invariants plus mirror consistency."""
        if self.columns is not None:
            self.columns.check_invariants()
            return
        for i, word in enumerate(self._words_list):
            word.check_invariants()
            value = word.first_level_value() | self._saturated_map.get(i, 0)
            for limb in range(self._limbs):
                expect = (value >> (64 * limb)) & 0xFFFFFFFFFFFFFFFF
                assert int(self._mirror[i, limb]) == expect, (
                    f"mirror desync at word {i} limb {limb}"
                )
