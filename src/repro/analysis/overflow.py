"""Word-overflow probability — Eq. (6) / Eq. (10) and the exact tail.

A word overflows when more than ``n_max`` elements hash into it.  The
number of element slots in one word is ``Binom(g·n, 1/l)``; the paper
bounds the probability that *any* word overflows with a union bound and
the Chernoff-style estimate ``(e·n / (n_max·l))^{n_max} · l``.  Both the
paper's bound and the exact binomial tail (per-word and any-word) are
provided so the Fig. 6 curves can be drawn either way.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.errors import ConfigurationError

__all__ = [
    "word_overflow_probability",
    "word_overflow_bound",
    "any_word_overflow_probability",
]


def word_overflow_probability(
    n: int, num_words: int, n_max: int, *, g: int = 1
) -> float:
    """Exact probability one given word receives more than ``n_max`` slots.

    ``P[Binom(g·n, 1/l) > n_max]`` — the per-word tail behind Eq. (6).
    """
    if num_words < 1:
        raise ConfigurationError(f"num_words must be >= 1, got {num_words}")
    return float(stats.binom.sf(n_max, g * n, 1.0 / num_words))


def any_word_overflow_probability(
    n: int, num_words: int, n_max: int, *, g: int = 1
) -> float:
    """Union-bounded probability that *any* of the ``l`` words overflows.

    Clamped to 1; this is the quantity the paper plots in Fig. 6.
    """
    per_word = word_overflow_probability(n, num_words, n_max, g=g)
    return min(1.0, num_words * per_word)


def word_overflow_bound(
    n: int, num_words: int, n_max: int, *, g: int = 1
) -> float:
    """The paper's closed-form Chernoff bound, Eq. (6)/(10).

    ``P[E ≥ n_max] ≤ C(gn, n_max)(1/l)^{n_max} ≤ (e·g·n/(n_max·l))^{n_max}``.
    Returned clamped to 1.
    """
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    log_bound = n_max * (
        1.0 + math.log(g * n) - math.log(n_max) - math.log(num_words)
    )
    return min(1.0, math.exp(log_bound))
