"""Tests for the repo tooling (API doc generator)."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import gen_api_docs  # noqa: E402


class TestGenApiDocs:
    def test_generates_every_module_section(self):
        text = gen_api_docs.generate()
        for module in gen_api_docs.MODULES:
            assert f"## `{module}`" in text, module

    def test_core_classes_documented(self):
        text = gen_api_docs.generate()
        for cls in ("MPCBF", "HCBFWord", "CountingBloomFilter", "ShardedFilterBank"):
            assert f"#### class `{cls}`" in text, cls

    def test_functions_carry_signatures(self):
        # Annotations render as strings (PEP 563 future import).
        text = gen_api_docs.generate()
        assert "#### `bf_fpr(n: 'int', m: 'int', k: 'int', *, exact: 'bool' = True)" in text

    def test_no_private_members(self):
        text = gen_api_docs.generate()
        assert "`._" not in text

    def test_committed_file_is_current(self):
        committed = Path("docs/api.md")
        assert committed.exists(), "run tools/gen_api_docs.py"
        assert committed.read_text() == gen_api_docs.generate(), (
            "docs/api.md is stale; rerun tools/gen_api_docs.py"
        )

    def test_observability_modules_covered(self):
        assert "repro.observability" in gen_api_docs.MODULES
        assert "repro.service.server" in gen_api_docs.MODULES
        text = gen_api_docs.generate()
        assert "#### `render_metrics" in text
        assert "#### class `ObservabilityHTTPServer`" in text

    def test_check_mode_passes_when_current(self, capsys):
        assert gen_api_docs.main(["--check"]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_check_mode_fails_on_drift(self, monkeypatch, capsys):
        monkeypatch.setattr(gen_api_docs, "generate", lambda: "# drifted\n")
        assert gen_api_docs.main(["--check"]) == 1
        captured = capsys.readouterr()
        assert "stale" in captured.err
        assert "+# drifted" in captured.out  # the diff is shown

    def test_check_mode_fails_when_file_missing(self, tmp_path):
        assert gen_api_docs.check(tmp_path / "api.md") == 1


import compare_results  # noqa: E402


class TestCompareResults:
    def _report(self, **overrides):
        base = {
            "experiment_id": "figX",
            "title": "T",
            "rows": [{"a": 1.0, "name": "CBF"}, {"a": 2.0, "name": "MPCBF"}],
            "paper": "",
            "notes": [],
            "columns": None,
        }
        base.update(overrides)
        return base

    def test_identical_reports_no_drift(self):
        a = self._report()
        assert compare_results.compare_reports(a, a) == []

    def test_numeric_drift_flagged(self):
        a = self._report()
        b = self._report(rows=[{"a": 1.0, "name": "CBF"}, {"a": 9.0, "name": "MPCBF"}])
        drifts = compare_results.compare_reports(a, b, rel=0.5)
        assert len(drifts) == 1
        assert "figX[1].a" in drifts[0]

    def test_small_drift_within_tolerance(self):
        a = self._report()
        b = self._report(rows=[{"a": 1.2, "name": "CBF"}, {"a": 2.0, "name": "MPCBF"}])
        assert compare_results.compare_reports(a, b, rel=0.5) == []

    def test_text_mismatch_flagged(self):
        a = self._report()
        b = self._report(rows=[{"a": 1.0, "name": "PCBF"}, {"a": 2.0, "name": "MPCBF"}])
        drifts = compare_results.compare_reports(a, b)
        assert any("name" in d for d in drifts)

    def test_row_count_change(self):
        a = self._report()
        b = self._report(rows=[{"a": 1.0}])
        assert "row count" in compare_results.compare_reports(a, b)[0]

    def test_directory_comparison(self, tmp_path):
        import json

        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        (old / "figX.json").write_text(json.dumps(self._report()))
        (new / "figX.json").write_text(json.dumps(self._report()))
        (new / "figY.json").write_text(
            json.dumps(self._report(experiment_id="figY"))
        )
        drifts = compare_results.compare_dirs(old, new)
        assert drifts == ["figY: new experiment (no baseline)"]

    def test_main_exit_codes(self, tmp_path, capsys):
        import json

        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        (old / "figX.json").write_text(json.dumps(self._report()))
        (new / "figX.json").write_text(json.dumps(self._report()))
        assert compare_results.main([str(old), str(new)]) == 0
        (new / "figX.json").write_text(
            json.dumps(
                self._report(rows=[{"a": 50.0, "name": "CBF"}, {"a": 2.0, "name": "MPCBF"}])
            )
        )
        assert compare_results.main([str(old), str(new)]) == 1
