#!/usr/bin/env python3
"""Compare two exported results directories and flag drifts.

Regression guard for the experiment harness: after a change, run

    python -m repro.bench --export results_new
    python tools/compare_results.py results results_new [--rel 0.5]

and review any metric that moved more than the relative tolerance.
Rows are matched positionally per experiment (the drivers are
deterministic per scale); numeric cells compare with a relative
tolerance, everything else must match exactly.  Exit code 1 on drift,
so it slots into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare_dirs", "compare_reports", "main"]


def _load(directory: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        reports[data["experiment_id"]] = data
    return reports


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_reports(
    old: dict, new: dict, *, rel: float = 0.5, abs_floor: float = 1e-6
) -> list[str]:
    """Human-readable drift list between two report dicts."""
    drifts: list[str] = []
    eid = old["experiment_id"]
    old_rows, new_rows = old["rows"], new["rows"]
    if len(old_rows) != len(new_rows):
        return [f"{eid}: row count {len(old_rows)} -> {len(new_rows)}"]
    for i, (row_a, row_b) in enumerate(zip(old_rows, new_rows)):
        keys = set(row_a) | set(row_b)
        for key in sorted(keys, key=str):
            a, b = row_a.get(key), row_b.get(key)
            if _is_number(a) and _is_number(b):
                scale = max(abs(a), abs(b), abs_floor)
                if abs(a - b) / scale > rel and abs(a - b) > abs_floor:
                    drifts.append(
                        f"{eid}[{i}].{key}: {a!r} -> {b!r} "
                        f"({abs(a - b) / scale:.0%} drift)"
                    )
            elif a != b:
                drifts.append(f"{eid}[{i}].{key}: {a!r} -> {b!r}")
    return drifts


def compare_dirs(
    old_dir: str | Path, new_dir: str | Path, *, rel: float = 0.5
) -> list[str]:
    """Drifts across two exported directories (missing reports included)."""
    old, new = _load(Path(old_dir)), _load(Path(new_dir))
    drifts: list[str] = []
    for eid in sorted(set(old) | set(new)):
        if eid not in old:
            drifts.append(f"{eid}: new experiment (no baseline)")
        elif eid not in new:
            drifts.append(f"{eid}: missing from new results")
        else:
            drifts.extend(compare_reports(old[eid], new[eid], rel=rel))
    return drifts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline results directory")
    parser.add_argument("new", help="candidate results directory")
    parser.add_argument(
        "--rel",
        type=float,
        default=0.5,
        help="relative tolerance for numeric cells (default 0.5 — FPRs "
        "at CI scale are noisy)",
    )
    args = parser.parse_args(argv)
    drifts = compare_dirs(args.old, args.new, rel=args.rel)
    if not drifts:
        print("no drift beyond tolerance")
        return 0
    print(f"{len(drifts)} drift(s):")
    for line in drifts:
        print(f"  {line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
