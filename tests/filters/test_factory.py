"""Tests for equal-memory filter construction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.filters import (
    BloomFilter,
    CountingBloomFilter,
    DLeftCBF,
    MPCBF,
    OneAccessBloomFilter,
    PartitionedCBF,
    VariableIncrementCBF,
)
from repro.filters.factory import FilterSpec, build_filter, build_suite

MEMORY = 1 << 18


class TestParseVariant:
    @pytest.mark.parametrize(
        "variant,expected",
        [
            ("CBF", ("CBF", 1)),
            ("PCBF-2", ("PCBF", 2)),
            ("MPCBF-3", ("MPCBF", 3)),
            ("BF", ("BF", 1)),
            ("BF-2", ("BF", 2)),
        ],
    )
    def test_parse(self, variant, expected):
        spec = FilterSpec(variant=variant, memory_bits=MEMORY, k=3)
        assert spec.parse_variant() == expected

    def test_bad_suffix(self):
        spec = FilterSpec(variant="PCBF-x", memory_bits=MEMORY, k=3)
        with pytest.raises(ConfigurationError):
            spec.parse_variant()


class TestBuildFilter:
    @pytest.mark.parametrize(
        "variant,cls",
        [
            ("BF", BloomFilter),
            ("BF-1", OneAccessBloomFilter),
            ("BF-2", OneAccessBloomFilter),
            ("CBF", CountingBloomFilter),
            ("PCBF-1", PartitionedCBF),
            ("PCBF-2", PartitionedCBF),
            ("MPCBF-1", MPCBF),
            ("MPCBF-2", MPCBF),
            ("dlCBF", DLeftCBF),
            ("VI-CBF", VariableIncrementCBF),
        ],
    )
    def test_types(self, variant, cls):
        spec = FilterSpec(
            variant=variant, memory_bits=MEMORY, k=3, capacity=2000
        )
        assert isinstance(build_filter(spec), cls)

    @pytest.mark.parametrize(
        "variant", ["BF", "CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"]
    )
    def test_equal_memory(self, variant):
        spec = FilterSpec(
            variant=variant, memory_bits=MEMORY, k=3, capacity=2000
        )
        filt = build_filter(spec)
        # All variants land within one word of the budget.
        assert MEMORY - 64 <= filt.total_bits <= MEMORY

    def test_mpcbf_g(self):
        spec = FilterSpec(variant="MPCBF-2", memory_bits=MEMORY, k=3, capacity=2000)
        filt = build_filter(spec)
        assert filt.g == 2

    def test_extra_kwargs_forwarded(self):
        spec = FilterSpec(
            variant="MPCBF-1",
            memory_bits=MEMORY,
            k=3,
            capacity=2000,
            extra={"word_overflow": "saturate"},
        )
        assert build_filter(spec).word_overflow == "saturate"

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            build_filter(FilterSpec(variant="XBF", memory_bits=MEMORY, k=3))


class TestBuildSuite:
    def test_order_and_names(self):
        variants = ["CBF", "PCBF-1", "MPCBF-1"]
        suite = build_suite(variants, MEMORY, 3, capacity=2000)
        assert list(suite) == variants
        for name, filt in suite.items():
            assert filt.name == name

    def test_shared_encoder(self):
        suite = build_suite(["CBF", "MPCBF-1"], MEMORY, 3, capacity=2000)
        encoders = {id(f.encoder) for f in suite.values()}
        assert len(encoders) == 1

    def test_mpcbf_saturate_default(self):
        suite = build_suite(["MPCBF-1"], MEMORY, 3, capacity=2000)
        assert suite["MPCBF-1"].word_overflow == "saturate"

    def test_same_seed_same_hashes(self):
        a = build_suite(["CBF"], MEMORY, 3, capacity=100, seed=7)["CBF"]
        b = build_suite(["CBF"], MEMORY, 3, capacity=100, seed=7)["CBF"]
        assert a.family.indices(42) == b.family.indices(42)
