"""Tests for the partitioned CBF (PCBF-1 / PCBF-g)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)
from repro.filters.pcbf import PartitionedCBF


def make(g=1, num_words=256, k=3, seed=1, **kw) -> PartitionedCBF:
    return PartitionedCBF(num_words, 64, k, g=g, seed=seed, **kw)


class TestPCBFBasics:
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_cycle(self, g, small_keys):
        pcbf = make(g=g)
        pcbf.insert_many(small_keys)
        assert pcbf.query_many(small_keys).all()
        pcbf.delete_many(small_keys)
        assert not pcbf.query_many(small_keys).any()

    def test_name_reflects_g(self):
        assert make(g=2).name == "PCBF-2"

    def test_total_bits(self):
        assert make(num_words=100).total_bits == 6400

    def test_counters_shape(self):
        pcbf = make(num_words=10)
        assert pcbf.counters.shape == (10, 16)

    def test_count_multiplicity(self):
        pcbf = make()
        for _ in range(3):
            pcbf.insert("dup")
        assert pcbf.count("dup") == 3

    def test_word_bits_must_divide(self):
        with pytest.raises(ConfigurationError):
            PartitionedCBF(10, 65, 3)

    def test_all_counters_in_one_word_for_g1(self):
        pcbf = make(g=1)
        pcbf.insert("solo")
        touched_words = np.nonzero(pcbf.counters.sum(axis=1))[0]
        assert len(touched_words) == 1

    def test_g2_touches_at_most_two_words(self):
        pcbf = make(g=2)
        pcbf.insert("solo")
        touched = np.nonzero(pcbf.counters.sum(axis=1))[0]
        assert 1 <= len(touched) <= 2


class TestPCBFBulkScalarAgreement:
    @pytest.mark.parametrize("g", [1, 2])
    def test_insert(self, g, small_keys):
        a, b = make(g=g, seed=9), make(g=g, seed=9)
        a.insert_many(small_keys)
        for key in small_keys:
            b.insert(key)
        np.testing.assert_array_equal(a.counters, b.counters)

    @pytest.mark.parametrize("g", [1, 2])
    def test_query(self, g, small_keys, negative_keys):
        pcbf = make(g=g, seed=9)
        pcbf.insert_many(small_keys)
        bulk = pcbf.query_many(negative_keys[:400])
        scalar = np.array(
            [pcbf.query_encoded(int(k)) for k in negative_keys[:400]]
        )
        np.testing.assert_array_equal(bulk, scalar)

    def test_delete(self, small_keys):
        a, b = make(seed=9), make(seed=9)
        a.insert_many(small_keys)
        b.insert_many(small_keys)
        a.delete_many(small_keys[:30])
        for key in small_keys[:30]:
            b.delete(key)
        np.testing.assert_array_equal(a.counters, b.counters)


class TestPCBFErrors:
    def test_underflow(self):
        pcbf = make()
        with pytest.raises(CounterUnderflowError):
            pcbf.delete("ghost")

    def test_bulk_underflow_rolls_back(self, small_keys):
        pcbf = make()
        pcbf.insert_many(small_keys)
        before = pcbf.counters.copy()
        with pytest.raises(CounterUnderflowError):
            pcbf.delete_many(["ghost"])
        np.testing.assert_array_equal(pcbf.counters, before)

    def test_overflow_raises(self):
        pcbf = make(k=1)
        for _ in range(15):
            pcbf.insert("same")
        with pytest.raises(CounterOverflowError):
            pcbf.insert("same")

    def test_bulk_overflow_rolls_back(self):
        pcbf = make(k=1)
        key = pcbf.encoder.encode("same")
        with pytest.raises(CounterOverflowError):
            pcbf.insert_many(np.full(16, key, dtype=np.uint64))
        assert pcbf.count("same") == 0


class TestPCBFStats:
    def test_one_access_per_query_g1(self, small_keys):
        pcbf = make(g=1)
        pcbf.insert_many(small_keys)
        pcbf.reset_stats()
        pcbf.query_many(small_keys)
        assert pcbf.stats.query.mean_accesses == pytest.approx(1.0)

    def test_g2_member_queries_cost_two_accesses(self, small_keys):
        pcbf = make(g=2, num_words=4096)
        pcbf.insert_many(small_keys)
        pcbf.reset_stats()
        pcbf.query_many(small_keys)
        assert pcbf.stats.query.mean_accesses == pytest.approx(2.0)

    def test_g2_negative_queries_early_exit(self, negative_keys):
        pcbf = make(g=2)
        pcbf.query_many(negative_keys)
        # Empty filter: first word always rejects.
        assert pcbf.stats.query.mean_accesses == pytest.approx(1.0)

    def test_update_accesses_equal_g(self, small_keys):
        pcbf = make(g=2)
        pcbf.insert_many(small_keys)
        assert pcbf.stats.insert.mean_accesses == pytest.approx(2.0)

    def test_bandwidth_below_cbf(self, small_keys):
        # The headline claim: partitioning cuts the per-query hash-bit
        # bandwidth versus a flat CBF at the same memory.
        from repro.filters.cbf import CountingBloomFilter

        memory = 256 * 64
        pcbf = make(g=1, num_words=256)
        cbf = CountingBloomFilter(memory // 4, 3, seed=1)
        pcbf.insert_many(small_keys)
        cbf.insert_many(small_keys)
        for f in (pcbf, cbf):
            f.reset_stats()
            f.query_many(small_keys)
        assert (
            pcbf.stats.query.mean_bits < 0.7 * cbf.stats.query.mean_bits
        )
