"""Deterministic key encoding: user keys → ``uint64`` hash seeds.

Filters operate on 64-bit encoded keys.  Encoding is split out of the
hash family so that bulk workloads can encode a whole dataset once (a
NumPy array of ``uint64``) and then run many filter operations against
it without re-touching the raw keys — the dominant cost in the paper's
software measurements is hash computation, so the library makes that
cost explicit and one-time.

Scalar encoding uses FNV-1a (64-bit) for byte strings; bulk encoding is
fully vectorised:

* ``encode_str_array`` — fixed-width byte strings (``numpy.bytes_``
  arrays, e.g. the paper's 5-byte synthetic keys) are viewed as a 2-D
  ``uint8`` matrix and folded column-by-column with the FNV-1a update,
  which is exactly the scalar loop transposed (guide idiom: replace the
  per-element loop with a loop over the short axis).
* ``encode_flow_arrays`` — IPv4 flow 2-tuples (src, dst) pack into one
  ``uint64`` directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.hashing.mixers import MASK64, murmur_fmix64, murmur_fmix64_array

__all__ = [
    "FNV_OFFSET",
    "FNV_PRIME",
    "encode_bytes",
    "encode_int",
    "encode_flow",
    "encode_key",
    "encode_str_array",
    "encode_int_array",
    "encode_flow_arrays",
    "KeyEncoder",
]

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def encode_bytes(data: bytes) -> int:
    """Encode a byte string to a 64-bit key with FNV-1a."""
    h = FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & MASK64
    return h


def encode_int(value: int) -> int:
    """Encode an integer key; finalised so nearby ints land far apart."""
    return murmur_fmix64(value & MASK64)


def encode_flow(src: int, dst: int) -> int:
    """Encode an IPv4 flow 2-tuple (source, destination) to 64 bits.

    Both addresses are 32-bit values; packing them into one word and
    finalising is collision-free on the packing step, so distinct flows
    always have distinct encoded keys.
    """
    if not (0 <= src < 2**32 and 0 <= dst < 2**32):
        raise ValueError(f"IPv4 addresses must be 32-bit, got ({src}, {dst})")
    return murmur_fmix64((src << 32) | dst)


def encode_key(key: object) -> int:
    """Encode an arbitrary supported key (bytes, str, int, 2-tuple)."""
    if isinstance(key, bytes):
        return encode_bytes(key)
    if isinstance(key, str):
        return encode_bytes(key.encode("utf-8"))
    if isinstance(key, (int, np.integer)):
        return encode_int(int(key))
    if isinstance(key, tuple) and len(key) == 2:
        return encode_flow(int(key[0]), int(key[1]))
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def encode_str_array(keys: np.ndarray | Sequence[bytes]) -> np.ndarray:
    """Vectorised FNV-1a over an array of equal-length byte strings.

    Parameters
    ----------
    keys:
        A ``numpy`` array of dtype ``S<width>`` (or anything
        convertible to one).  All keys are padded/truncated to the
        array's fixed width, matching NumPy bytes semantics; note that
        NumPy strips trailing NUL bytes, so keys should not rely on
        trailing ``b"\\x00"`` being significant.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of encoded keys, identical to calling
        :func:`encode_bytes` on each (NUL-stripped) key.
    """
    arr = np.asarray(keys, dtype=np.bytes_)
    width = arr.dtype.itemsize
    flat = arr.reshape(-1)
    raw = flat.view(np.uint8).reshape(len(flat), width)
    # Per-key true lengths (NumPy S-dtype is NUL-padded on the right).
    lengths = width - (raw[:, ::-1] != 0).argmax(axis=1)
    lengths[~(raw != 0).any(axis=1)] = 0
    h = np.full(len(flat), FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in range(width):
            active = lengths > col
            if not active.any():
                break
            mixed = (h ^ raw[:, col].astype(np.uint64)) * np.uint64(FNV_PRIME)
            h = np.where(active, mixed, h)
    return h.reshape(arr.shape)


def encode_int_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`encode_int` over an integer array."""
    return murmur_fmix64_array(np.asarray(values).astype(np.uint64))


def encode_flow_arrays(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Vectorised :func:`encode_flow` over parallel address arrays."""
    src = np.asarray(src, dtype=np.uint64)
    dst = np.asarray(dst, dtype=np.uint64)
    if src.shape != dst.shape:
        raise ValueError(f"shape mismatch: {src.shape} vs {dst.shape}")
    with np.errstate(over="ignore"):
        packed = (src << np.uint64(32)) | dst
    return murmur_fmix64_array(packed)


class KeyEncoder:
    """Stateless facade that encodes scalars or bulk arrays of keys.

    A single :class:`KeyEncoder` is shared by all filters in an
    experiment so that every variant sees exactly the same encoded key
    stream (the paper compares variants on identical datasets).
    """

    def encode(self, key: object) -> int:
        """Encode one key; see :func:`encode_key`."""
        return encode_key(key)

    def encode_many(self, keys: object) -> np.ndarray:
        """Encode a bulk collection of keys into a ``uint64`` array.

        Accepts ``uint64`` arrays (returned as-is), integer arrays,
        byte-string arrays, or any iterable of scalar keys (the slow
        generic path).
        """
        if isinstance(keys, np.ndarray):
            if keys.dtype == np.uint64:
                return keys
            if np.issubdtype(keys.dtype, np.integer):
                return encode_int_array(keys)
            if keys.dtype.kind == "S":
                return encode_str_array(keys)
            raise TypeError(f"unsupported array dtype: {keys.dtype}")
        if isinstance(keys, Iterable):
            return np.fromiter(
                (encode_key(k) for k in keys), dtype=np.uint64
            )
        raise TypeError(f"unsupported bulk key container: {type(keys).__name__}")
